//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! MRU vs most-frequent edge selection, the linear limit vs window vs
//! unlimited aggressiveness, the Markov order, and the lead cap.
//!
//! Each variant's full (small-scale) simulation is timed; the printed
//! report lines carry the quality metrics (read time, disk accesses,
//! mispredict ratio) so a bench run doubles as the ablation table. The
//! paper-scale ablation table comes from `experiments ablations`.

use bench::timing::time_case;
use bench::{build_config, build_workload, Scale, WorkloadKind};
use lap_core::{run_simulation, CacheSystem};
use prefetch::{AggressiveLimit, EdgeChoice, PrefetchConfig};

fn variants() -> Vec<(String, PrefetchConfig)> {
    let base = PrefetchConfig::ln_agr_is_ppm(1);
    vec![
        ("edge_mru".into(), base),
        (
            "edge_most_frequent".into(),
            PrefetchConfig {
                edge_choice: EdgeChoice::MostFrequent,
                ..base
            },
        ),
        (
            "limit_linear".into(),
            PrefetchConfig {
                aggressive: Some(AggressiveLimit::One),
                ..base
            },
        ),
        (
            "limit_window16".into(),
            PrefetchConfig {
                aggressive: Some(AggressiveLimit::Window(16)),
                ..base
            },
        ),
        (
            "limit_unlimited".into(),
            PrefetchConfig {
                aggressive: Some(AggressiveLimit::Unlimited),
                ..base
            },
        ),
        ("order_1".into(), PrefetchConfig::ln_agr_is_ppm(1)),
        ("order_3".into(), PrefetchConfig::ln_agr_is_ppm(3)),
        (
            "lead_unbounded".into(),
            PrefetchConfig {
                lead_cap: None,
                ..base
            },
        ),
    ]
}

fn main() {
    let wl = build_workload(WorkloadKind::CharismaPm, Scale::Small, 42);
    for (name, pf) in variants() {
        let cfg = build_config(
            WorkloadKind::CharismaPm,
            Scale::Small,
            CacheSystem::Pafs,
            pf,
            2,
        );
        let report = run_simulation(cfg.clone(), wl.clone());
        println!(
            "{name:<22} read {:>7.3} ms  disk {:>8}  mispred {:>5.1}%",
            report.avg_read_ms,
            report.disk_accesses(),
            report.mispredict_ratio * 100.0
        );
        time_case(&format!("ablations/{name}"), 5, || {
            run_simulation(cfg.clone(), wl.clone())
        });
        println!();
    }
}
