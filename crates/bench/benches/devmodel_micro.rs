//! Micro-benchmarks of the device-model layer: geometry pricing (seek
//! curve + rotational wait + layout hash), the schedulers' pick loops,
//! and the end-to-end cost of swapping the fixed model for the
//! geometry model in a full simulation step.

use std::hint::black_box;

use bench::timing::time_case;
use devmodel::{DiskGeometry, DiskModel, DiskSched, LinkModel};
use simkit::{DeviceOp, JobSpec, ServiceModel, SimTime};

fn read_job(pos: u64) -> JobSpec {
    JobSpec {
        op: DeviceOp::Read,
        pos: Some(pos),
        bytes: 8192,
        blocks: 1,
        rid: 0,
    }
}

/// Deterministic stream of scattered LBAs via the model's own layout.
fn lbas(model: &DiskModel, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| model.lba_of((i % 64) as u32, i.wrapping_mul(37)).unwrap())
        .collect()
}

fn bench_pricing() {
    let geom = DiskGeometry::pm();
    let mut model = DiskModel::geometry(geom, 8192);
    let stream = lbas(&model, 4096);
    time_case("geom/price_4096_reads", 200, || {
        let mut t = SimTime::ZERO;
        for &lba in &stream {
            let c = model.service(t, &read_job(black_box(lba)));
            t += c.total;
        }
        black_box(t)
    });

    let mut fixed = DiskModel::fixed(
        simkit::SimDuration::from_micros(11_319),
        simkit::SimDuration::from_micros(13_319),
        simkit::SimDuration::from_micros(819),
    );
    time_case("fixed/price_4096_reads", 200, || {
        let mut t = SimTime::ZERO;
        for &lba in &stream {
            let c = fixed.service(t, &read_job(black_box(lba)));
            t += c.total;
        }
        black_box(t)
    });
}

fn bench_layout() {
    let geom = DiskGeometry::pm();
    time_case("geom/lba_of", 100_000, || {
        black_box(geom.lba_of(black_box(17), black_box(123_456), 8192))
    });
}

fn bench_schedulers() {
    // A queue of 32 scattered positions — deeper than the simulator
    // ever sees, to expose the pick loop's O(n) scaling.
    let geom = DiskGeometry::pm();
    let model = DiskModel::geometry(geom, 8192);
    let queue: Vec<Option<u64>> = lbas(&model, 32).into_iter().map(Some).collect();
    for sched in DiskSched::ALL {
        let mut s = sched.build();
        time_case(&format!("sched/{}_pick32", sched.name()), 100_000, || {
            black_box(s.pick(black_box(9_999), black_box(&queue)))
        });
    }
}

fn bench_link() {
    let link = LinkModel::flat(simkit::SimDuration::from_micros(15), 200.0e6);
    time_case("link/transfer_time", 100_000, || {
        black_box(link.transfer_time(black_box(8192)))
    });
}

fn main() {
    println!("== devmodel micro-benchmarks ==");
    bench_pricing();
    bench_layout();
    bench_schedulers();
    bench_link();
}
