//! One timing benchmark per table/figure of the paper.
//!
//! Each benchmark runs the figure's full algorithm × cache-size grid at
//! the scaled-down workload size, so `cargo bench` regenerates the
//! *shape* of every artifact quickly. The paper-scale numbers come from
//! the `experiments` binary (`experiments all --out results`); the
//! benchmark here doubles as a regression guard on simulator
//! throughput.
//!
//! Before timing, every benchmark prints its figure table once, so a
//! bench run also shows the regenerated rows.

use bench::timing::time_case;
use bench::{experiment, render_table, run_grid, Scale, EXPERIMENTS};

/// Cache sizes used at bench scale (subset of the paper's sweep).
const BENCH_MBS: [u64; 3] = [1, 4, 16];

fn main() {
    for exp in EXPERIMENTS {
        // Print the regenerated table once per figure.
        let cells = run_grid(exp, Scale::Small, 42, &BENCH_MBS, 4);
        println!("{}", render_table(exp, &cells, &BENCH_MBS));
        time_case(exp.id, 5, || run_grid(exp, Scale::Small, 42, &BENCH_MBS, 4));
        println!();
    }
    // Keep the lookup helper exercised.
    assert!(experiment("fig4").is_some());
}
