//! Micro-benchmarks of the core data structures: the IS_PPM graph,
//! the prefetch engine, the cooperative caches and the event queue.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use coopcache::{BlockId, CooperativeCache, FileId, InsertOrigin, NodeId, PafsCache, XfsCache};
use prefetch::{FilePrefetcher, IsPpm, Oba, PrefetchConfig, Request};
use simkit::{EventQueue, SimTime};

/// A deterministic pseudo-random request stream mixing three strides.
fn request_stream(n: usize) -> Vec<Request> {
    let mut out = Vec::with_capacity(n);
    let mut off: u64 = 0;
    for i in 0..n {
        let (stride, size) = match i % 3 {
            0 => (4, 2),
            1 => (16, 4),
            _ => (1, 1),
        };
        off = (off + stride) % 1_000_000;
        out.push(Request::new(off, size));
    }
    out
}

fn bench_isppm(c: &mut Criterion) {
    let reqs = request_stream(10_000);
    let mut group = c.benchmark_group("isppm");
    for order in [1usize, 3] {
        group.bench_function(format!("observe_order{order}"), |b| {
            b.iter(|| {
                let mut ppm = IsPpm::new(order);
                for &r in &reqs {
                    ppm.observe(black_box(r));
                }
                black_box(ppm.node_count())
            });
        });
    }
    // Prediction on a trained graph.
    let mut ppm = IsPpm::new(1);
    for &r in &reqs {
        ppm.observe(r);
    }
    let last = reqs.last().copied().unwrap();
    group.bench_function("predict_trained", |b| {
        b.iter(|| black_box(ppm.predict_after(black_box(last), 1 << 30)));
    });
    group.finish();
}

fn bench_oba(c: &mut Criterion) {
    c.bench_function("oba_predict", |b| {
        let mut oba = Oba::new();
        oba.observe(Request::new(10, 4));
        b.iter(|| black_box(oba.predict(1 << 30)));
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("ln_agr_isppm_stream", |b| {
        b.iter(|| {
            let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 100_000);
            let mut off = 0;
            for _ in 0..1_000 {
                pf.on_demand(Request::new(off, 4));
                off += 8;
                while let Some(blk) = pf.next_block(|_| false) {
                    black_box(blk);
                    pf.on_prefetch_complete();
                }
            }
            black_box(pf.stats().issued)
        });
    });
    group.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("caches");
    group.bench_function("pafs_access_insert", |b| {
        b.iter(|| {
            let mut cache = PafsCache::new(16, 256);
            for i in 0..10_000u64 {
                let node = NodeId((i % 16) as u32);
                let block = BlockId::new(FileId((i % 7) as u32), i % 2_000);
                if matches!(
                    cache.access(node, block, false).lookup,
                    coopcache::Lookup::Miss
                ) {
                    cache.insert(node, block, InsertOrigin::Demand, false);
                }
            }
            black_box(cache.resident_blocks())
        });
    });
    group.bench_function("xfs_access_insert", |b| {
        b.iter(|| {
            let mut cache = XfsCache::new(16, 256);
            for i in 0..10_000u64 {
                let node = NodeId((i % 16) as u32);
                let block = BlockId::new(FileId((i % 7) as u32), i % 2_000);
                if matches!(
                    cache.access(node, block, false).lookup,
                    coopcache::Lookup::Miss
                ) {
                    cache.insert(node, block, InsertOrigin::Demand, false);
                }
            }
            black_box(cache.resident_blocks())
        });
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..100_000u64 {
                // Scatter times deterministically.
                q.schedule(
                    SimTime::from_nanos(i.wrapping_mul(2654435761) % (1 << 30)),
                    i,
                );
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_isppm,
    bench_oba,
    bench_engine,
    bench_caches,
    bench_event_queue
);
criterion_main!(benches);
