//! Micro-benchmarks of the core data structures: the IS_PPM graph,
//! the prefetch engine, the cooperative caches and the event queue.

use std::hint::black_box;

use bench::timing::time_case;
use coopcache::{BlockId, CooperativeCache, FileId, InsertOrigin, NodeId, PafsCache, XfsCache};
use prefetch::{FilePrefetcher, IsPpm, Oba, PrefetchConfig, Request};
use simkit::{EventQueue, SimTime};

/// A deterministic pseudo-random request stream mixing three strides.
fn request_stream(n: usize) -> Vec<Request> {
    let mut out = Vec::with_capacity(n);
    let mut off: u64 = 0;
    for i in 0..n {
        let (stride, size) = match i % 3 {
            0 => (4, 2),
            1 => (16, 4),
            _ => (1, 1),
        };
        off = (off + stride) % 1_000_000;
        out.push(Request::new(off, size));
    }
    out
}

fn bench_isppm() {
    let reqs = request_stream(10_000);
    for order in [1usize, 3] {
        time_case(&format!("isppm/observe_order{order}"), 20, || {
            let mut ppm = IsPpm::new(order);
            for &r in &reqs {
                ppm.observe(black_box(r));
            }
            black_box(ppm.node_count())
        });
    }
    // Prediction on a trained graph.
    let mut ppm = IsPpm::new(1);
    for &r in &reqs {
        ppm.observe(r);
    }
    let last = reqs.last().copied().unwrap();
    time_case("isppm/predict_trained", 10_000, || {
        black_box(ppm.predict_after(black_box(last), 1 << 30))
    });
}

fn bench_oba() {
    let mut oba = Oba::new();
    oba.observe(Request::new(10, 4));
    time_case("oba_predict", 10_000, || black_box(oba.predict(1 << 30)));
}

fn bench_engine() {
    time_case("engine/ln_agr_isppm_stream", 20, || {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 100_000);
        let mut off = 0;
        for _ in 0..1_000 {
            pf.on_demand(Request::new(off, 4));
            off += 8;
            while let Some(blk) = pf.next_block(|_| false) {
                black_box(blk);
                pf.on_prefetch_complete();
            }
        }
        black_box(pf.stats().issued)
    });
}

fn bench_caches() {
    time_case("caches/pafs_access_insert", 20, || {
        let mut cache = PafsCache::new(16, 256);
        for i in 0..10_000u64 {
            let node = NodeId((i % 16) as u32);
            let block = BlockId::new(FileId((i % 7) as u32), i % 2_000);
            if matches!(
                cache.access(node, block, false).lookup,
                coopcache::Lookup::Miss
            ) {
                cache.insert(node, block, InsertOrigin::Demand, false);
            }
        }
        black_box(cache.resident_blocks())
    });
    time_case("caches/xfs_access_insert", 20, || {
        let mut cache = XfsCache::new(16, 256);
        for i in 0..10_000u64 {
            let node = NodeId((i % 16) as u32);
            let block = BlockId::new(FileId((i % 7) as u32), i % 2_000);
            if matches!(
                cache.access(node, block, false).lookup,
                coopcache::Lookup::Miss
            ) {
                cache.insert(node, block, InsertOrigin::Demand, false);
            }
        }
        black_box(cache.resident_blocks())
    });
}

fn bench_event_queue() {
    time_case("event_queue_100k", 10, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..100_000u64 {
            // Scatter times deterministically.
            q.schedule(
                SimTime::from_nanos(i.wrapping_mul(2654435761) % (1 << 30)),
                i,
            );
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc)
    });
}

fn main() {
    bench_isppm();
    bench_oba();
    bench_engine();
    bench_caches();
    bench_event_queue();
}
