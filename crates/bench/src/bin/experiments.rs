//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments all                    # every figure + table, paper scale
//! experiments fig4 fig8              # specific artifacts
//! experiments all --scale small      # quick, scaled-down sweep
//! experiments table1                 # print the simulation parameters
//! experiments fallback-share         # §2.2's OBA-fallback percentages
//! experiments mispredict             # §5.2's miss-prediction ratios
//! experiments --out results          # also write CSVs
//! experiments all --out results --obs  # plus per-cell unified metrics
//! ```

use std::fs;
use std::path::PathBuf;

use bench::{
    build_config, build_workload, experiment, render_csv, render_table, run_grid, Scale,
    WorkloadKind, CACHE_MBS, EXPERIMENTS,
};
use coopcache::MetaLayout;
use devmodel::DiskSched;
use faultkit::FaultPlan;
use lap_core::{
    run_simulation, run_simulation_profiled, CacheSystem, CheckMode, MachineConfig,
    PrefetchGranularity, Replacement,
};
use lapobs::MetricValue;
use prefetch::{AggressiveLimit, EdgeChoice, PredictorSpec, PrefetchConfig};
use simkit::QueueBackend;
use workzoo::WorkloadSpec;

struct Options {
    ids: Vec<String>,
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    threads: usize,
    obs: bool,
    bench_out: Option<PathBuf>,
    /// Restrict the `predictors` ablation to one registry spec.
    predictor: Option<PredictorSpec>,
    /// Restrict the `zoo`/`mithril-sweep` ablations to one workload.
    workload: Option<WorkloadSpec>,
    /// Number of seeded random fault plans the `chaos` sweep runs.
    plans: usize,
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        scale: Scale::Paper,
        seed: 42,
        out: None,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        obs: false,
        bench_out: None,
        predictor: None,
        workload: None,
        plans: 500,
    };
    let mut workload_raw: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                // CI sanity mode: a fast, deterministic subset at small
                // scale. Any panic (bad table, broken invariant) fails
                // the run.
                opts.scale = Scale::Small;
                opts.ids = vec![
                    "table1".into(),
                    "devmodel".into(),
                    "extent".into(),
                    "faults".into(),
                    "predictors".into(),
                    "zoo".into(),
                ];
            }
            "--workload" => {
                workload_raw = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--workload needs a registry SPEC");
                    eprint!("{}", workzoo::registry_help());
                    std::process::exit(2);
                }));
            }
            "--predictor" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--predictor needs a registry SPEC");
                    eprint!("{}", prefetch::registry_help());
                    std::process::exit(2);
                });
                match PredictorSpec::parse(&spec) {
                    Ok(s) => opts.predictor = Some(s),
                    Err(e) => {
                        // The error's Display carries the full registry
                        // listing (names, syntax, examples).
                        eprint!("bad --predictor: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("--scale needs small|paper, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                opts.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                })
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                })))
            }
            "--threads" | "--workers" => {
                opts.threads = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads/--workers needs an integer");
                    std::process::exit(2);
                })
            }
            "--plans" => {
                opts.plans = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--plans needs an integer");
                    std::process::exit(2);
                })
            }
            "--obs" => opts.obs = true,
            "--bench-out" => {
                opts.bench_out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--bench-out needs a file path");
                    std::process::exit(2);
                })))
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            id => opts.ids.push(id.to_string()),
        }
    }
    if opts.ids.is_empty() && opts.bench_out.is_none() {
        print_help();
        std::process::exit(2);
    }
    if opts.obs && opts.out.is_none() {
        eprintln!("--obs writes per-cell metrics CSVs and needs --out DIR");
        std::process::exit(2);
    }
    // Parse --workload after the loop so a later --scale still applies
    // to a bare charisma/sprite spec.
    if let Some(raw) = workload_raw {
        match WorkloadSpec::parse_cli(&raw, scale_name(opts.scale)) {
            Ok(s) => opts.workload = Some(s),
            Err(e) => {
                // The error's Display carries the full registry listing.
                eprint!("bad --workload: {e}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn print_help() {
    eprintln!(
        "usage: experiments <ids...> [--scale small|paper] [--seed N] [--out DIR] [--threads N] [--obs] [--smoke]"
    );
    eprintln!(
        "  --smoke  CI sanity mode: runs table1 + devmodel + extent + faults + predictors at small scale"
    );
    eprintln!("  --workers N       alias for --threads: worker-pool size for the parallel");
    eprintln!("                    sweeps (figure grids, devmodel/extent ablations, perf);");
    eprintln!("                    results are byte-identical for any worker count");
    eprintln!("  --bench-out FILE  write a machine-readable BENCH.json snapshot of the");
    eprintln!("                    seed scenarios (diff with `lapreport bench-diff`)");
    eprintln!("  --predictor SPEC  restrict the predictors ablation to one registry spec");
    eprintln!("  --workload SPEC   restrict the zoo/mithril-sweep ablations to one workload");
    eprintln!("                    (registry spec, e.g. web:64,0.8,256 or strace:FILE)");
    eprintln!("  --plans N         seeded random fault plans for the chaos sweep (default 500)");
    eprintln!(
        "ids: all, table1, fallback-share, mispredict, ablations, cooperation, robustness, devmodel, extent, faults, predictors, zoo, mithril-sweep, chaos, perf, or any of:"
    );
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
}

fn main() {
    let opts = parse_args();
    if let Some(dir) = &opts.out {
        fs::create_dir_all(dir).expect("create output directory");
    }

    let mut ids: Vec<String> = Vec::new();
    for id in &opts.ids {
        if id == "all" {
            ids.extend(EXPERIMENTS.iter().map(|e| e.id.to_string()));
            ids.push("fallback-share".into());
            ids.push("mispredict".into());
            ids.push("ablations".into());
            ids.push("cooperation".into());
            ids.push("robustness".into());
            ids.push("devmodel".into());
            ids.push("extent".into());
            ids.push("faults".into());
            ids.push("predictors".into());
            ids.push("zoo".into());
            ids.push("mithril-sweep".into());
            ids.push("perf".into());
        } else {
            ids.push(id.clone());
        }
    }

    for id in ids {
        match id.as_str() {
            "table1" => print_table1(),
            "fallback-share" => fallback_share(&opts),
            "mispredict" => mispredict(&opts),
            "ablations" => ablations(&opts),
            "cooperation" => cooperation(&opts),
            "robustness" => robustness(&opts),
            "devmodel" => devmodel_ablation(&opts),
            "extent" => extent_ablation(&opts),
            "faults" => faults_ablation(&opts),
            "predictors" => predictors_ablation(&opts),
            "zoo" => zoo_ablation(&opts),
            "mithril-sweep" => mithril_sweep(&opts),
            "chaos" => chaos(&opts),
            "perf" => perf_profile(&opts),
            id => {
                let Some(exp) = experiment(id) else {
                    eprintln!("unknown experiment {id:?}");
                    std::process::exit(2);
                };
                let t0 = std::time::Instant::now();
                let cells = run_grid(exp, opts.scale, opts.seed, &CACHE_MBS, opts.threads);
                println!("{}", render_table(exp, &cells, &CACHE_MBS));
                println!(
                    "({} runs, {:.1}s wall, seed {}, scale {:?})\n",
                    cells.len(),
                    t0.elapsed().as_secs_f64(),
                    opts.seed,
                    opts.scale
                );
                if let Some(dir) = &opts.out {
                    let path = dir.join(format!("{id}.csv"));
                    fs::write(&path, render_csv(exp, &cells)).expect("write CSV");
                    println!("wrote {}", path.display());
                    let svg = dir.join(format!("{id}.svg"));
                    fs::write(&svg, bench::plot::render_svg(exp, &cells, &CACHE_MBS))
                        .expect("write SVG");
                    println!("wrote {}", svg.display());
                    if opts.obs {
                        let path = dir.join(format!("{id}.metrics.csv"));
                        fs::write(&path, obs_csv(&cells)).expect("write metrics CSV");
                        println!("wrote {}", path.display());
                    }
                }
            }
        }
    }

    if let Some(path) = &opts.bench_out {
        bench_json(&opts, path);
    }
}

/// The benchmark seed scenarios: one cell per workload × system ×
/// predictor that the regression snapshot tracks (mirrors the seed
/// scenarios in `tests/devmodel.rs`).
fn bench_scenarios() -> [(&'static str, WorkloadKind, CacheSystem, PrefetchConfig, u64); 4] {
    [
        (
            "charisma/pafs/ln_agr_is_ppm:1/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        ),
        (
            "charisma/pafs/np/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::np(),
            4,
        ),
        (
            "charisma/pafs/oba/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::oba(),
            4,
        ),
        (
            "sprite/xfs/ln_agr_is_ppm:1/2MB",
            WorkloadKind::SpriteNow,
            CacheSystem::Xfs,
            PrefetchConfig::ln_agr_is_ppm(1),
            2,
        ),
    ]
}

/// Write a machine-readable benchmark snapshot (schema 2): one
/// scenario object per line (so `lapreport bench-diff` can scan it
/// without a JSON parser). Simulated results and the integer `perf`
/// counters are deterministic and gated exactly; everything
/// wall-clock-derived (`wall_ms`, `reads_per_sec`, `events_per_sec`)
/// lives inside `perf` and is warn-only in the differ.
fn bench_json(opts: &Options, path: &PathBuf) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n\"schema\": 2,\n\"scenarios\": [\n");
    for (i, (name, kind, system, pf, mb)) in bench_scenarios().into_iter().enumerate() {
        let wl = build_workload(kind, opts.scale, opts.seed);
        let cfg = build_config(kind, opts.scale, system, pf, mb);
        let (r, p) = run_simulation_profiled(cfg, wl);
        let _ = writeln!(
            out,
            "{{\"name\":\"{name}\",\"avg_read_ms\":{},\"reads\":{},\"disk_accesses\":{},\"perf\":{}}}{}",
            r.avg_read_ms,
            r.reads,
            r.disk_accesses(),
            perf_json(&p),
            if i + 1 < 4 { "," } else { "" }
        );
    }
    out.push_str("]\n}\n");
    fs::write(path, &out).expect("write bench snapshot");
    println!("wrote {}", path.display());
}

/// The `perf` object of one BENCH.json scenario line. Integer
/// counters first (compared exactly by `lapreport bench-diff`), then
/// deterministic ratios (ratio-gated), then wall-clock data
/// (warn-only).
fn perf_json(p: &lap_core::SimProfile) -> String {
    let c = &p.counters;
    let mut s = format!(
        "{{\"events\":{},\"queue_pushes\":{},\"peak_queue_depth\":{},\"station_dispatches\":{},\
         \"pred_lookups\":{},\"pred_updates\":{},\"cache_probes\":{},\
         \"events_per_read\":{},\"mean_queue_depth\":{}",
        c.events,
        c.queue_pushes,
        c.peak_queue_depth,
        c.station_dispatches,
        c.pred_lookups,
        c.pred_updates,
        c.cache_probes,
        c.events_per_read(p.reads),
        c.mean_queue_depth(),
    );
    if let Some(apr) = p.allocs_per_read() {
        s.push_str(&format!(",\"allocs_per_read\":{apr}"));
    }
    s.push_str(&format!(
        ",\"wall_ms\":{},\"reads_per_sec\":{:.0},\"events_per_sec\":{:.0}}}",
        p.wall.total().as_millis(),
        p.reads_per_sec(),
        p.events_per_sec(),
    ));
    s
}

/// `experiments perf`: self-profiling sweep over the four BENCH.json
/// seed scenarios plus one zoo workload at scaled-up size, so the hot
/// path is actually hot and the per-subsystem counter shares mean
/// something.
fn perf_profile(opts: &Options) {
    println!(
        "perf — simulator self-profile: seed scenarios + one scaled-up zoo workload \
         (seed {}, scale {:?}, {} worker(s); counters deterministic, wall informational \
         — overlapped runs inflate per-run wall time)",
        opts.seed, opts.scale, opts.threads
    );
    println!(
        "{:<28} {:>8} {:>9} {:>8} {:>5} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "scenario",
        "reads",
        "events",
        "ev/read",
        "peak",
        "mean-q",
        "dispatch",
        "pred-ops",
        "probes",
        "wall ms",
        "reads/s",
        "events/s"
    );
    let row = |name: &str, r: &lap_core::SimReport, p: &lap_core::SimProfile| {
        let c = &p.counters;
        assert!(
            c.events > 0 && c.queue_pushes >= c.events && r.reads > 0,
            "degenerate perf cell: {name}"
        );
        println!(
            "{:<28} {:>8} {:>9} {:>8.2} {:>5} {:>6.2} {:>9} {:>9} {:>9} {:>8} {:>9.0} {:>10.0}{}",
            name,
            r.reads,
            c.events,
            c.events_per_read(r.reads),
            c.peak_queue_depth,
            c.mean_queue_depth(),
            c.station_dispatches,
            c.pred_lookups + c.pred_updates,
            c.cache_probes,
            p.wall.total().as_millis(),
            p.reads_per_sec(),
            p.events_per_sec(),
            match p.allocs_per_read() {
                Some(apr) => format!("  ({apr:.1} allocs/read)"),
                None => String::new(),
            }
        );
    };
    // Build every profile job first (workload generation is cheap),
    // then fan the simulations out over the worker pool. Results come
    // back in job order, so the counter columns are byte-identical for
    // any `--workers` value; only the wall columns move.
    let mut jobs = Vec::new();
    for (name, kind, system, pf, mb) in bench_scenarios() {
        jobs.push((
            name.to_string(),
            build_config(kind, opts.scale, system, pf, mb),
            build_workload(kind, opts.scale, opts.seed),
        ));
    }
    // One zoo workload well past the seed scenarios' size: a web
    // session mix big enough to overflow the aggregate cache.
    let spec = WorkloadSpec::parse("web:64,0.8,512").expect("zoo perf spec parses");
    let wl = spec.build(opts.seed).expect("zoo perf workload builds");
    let mut cfg = lap_core::SimConfig::now(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
    cfg.fit_to_workload(&wl);
    jobs.push((format!("{}/pafs/ln_agr_is_ppm:1/1MB", wl.name), cfg, wl));
    let results = bench::par_map(&jobs, opts.threads, |(_, cfg, wl)| {
        run_simulation_profiled(cfg.clone(), wl.clone())
    });
    for ((name, _, _), (r, p)) in jobs.iter().zip(&results) {
        row(name, r, p);
    }
    println!();
}

/// Flatten every cell's unified metrics registry into one long-format
/// CSV (`algorithm,cache_mb,metric,value`).
fn obs_csv(cells: &[bench::Cell]) -> String {
    use std::fmt::Write;
    let mut out = String::from("algorithm,cache_mb,metric,value\n");
    for c in cells {
        for line in c.report.obs.to_csv().lines().skip(1) {
            let _ = writeln!(out, "{},{},{line}", c.algorithm, c.cache_mb);
        }
    }
    out
}

/// Table 1: the simulation parameters, verbatim.
fn print_table1() {
    println!("table1 — Simulation parameters");
    let pm = MachineConfig::pm();
    let now = MachineConfig::now();
    let rows: Vec<(&str, String, String)> = vec![
        ("Nodes", pm.nodes.to_string(), now.nodes.to_string()),
        (
            "Buffer Size",
            format!("{} KB", pm.block_size / 1024),
            format!("{} KB", now.block_size / 1024),
        ),
        (
            "Memory Bandwidth",
            format!("{:.0} MB/s", pm.memory_bandwidth / 1e6),
            format!("{:.0} MB/s", now.memory_bandwidth / 1e6),
        ),
        (
            "Network Bandwidth",
            format!("{:.1} MB/s", pm.network_bandwidth / 1e6),
            format!("{:.1} MB/s", now.network_bandwidth / 1e6),
        ),
        (
            "Local-Port Startup",
            format!("{} us", pm.local_startup.as_micros()),
            format!("{} us", now.local_startup.as_micros()),
        ),
        (
            "Remote-Port Startup",
            format!("{} us", pm.remote_startup.as_micros()),
            format!("{} us", now.remote_startup.as_micros()),
        ),
        (
            "Local Memory copy Startup",
            format!("{} us", pm.local_copy_startup.as_micros()),
            format!("{} us", now.local_copy_startup.as_micros()),
        ),
        (
            "Remote Memory copy Startup",
            format!("{} us", pm.remote_copy_startup.as_micros()),
            format!("{} us", now.remote_copy_startup.as_micros()),
        ),
        (
            "Number of Disks",
            pm.disks.to_string(),
            now.disks.to_string(),
        ),
        (
            "Disk-Block Size",
            format!("{} KB", pm.block_size / 1024),
            format!("{} KB", now.block_size / 1024),
        ),
        (
            "Disk Bandwidth",
            format!("{:.0} MB/s", pm.disk_bandwidth / 1e6),
            format!("{:.0} MB/s", now.disk_bandwidth / 1e6),
        ),
        (
            "Disk Read Seek",
            format!("{:.1} ms", pm.disk_read_seek.as_millis_f64()),
            format!("{:.1} ms", now.disk_read_seek.as_millis_f64()),
        ),
        (
            "Disk Write Seek",
            format!("{:.1} ms", pm.disk_write_seek.as_millis_f64()),
            format!("{:.1} ms", now.disk_write_seek.as_millis_f64()),
        ),
    ];
    println!("{:<28} {:>12} {:>12}", "", "PM", "NOW");
    for (name, pm_v, now_v) in rows {
        println!("{name:<28} {pm_v:>12} {now_v:>12}");
    }
    println!();
}

/// §2.2: share of prefetched blocks issued by the OBA fallback inside
/// the IS_PPM configurations — "<1% when the files were large
/// (CHARISMA) and around 25% when the files were small (Sprite)".
fn fallback_share(opts: &Options) {
    println!("fallback-share — blocks prefetched via OBA fallback inside IS_PPM (\u{a7}2.2)");
    for (kind, label) in [
        (WorkloadKind::CharismaPm, "CHARISMA"),
        (WorkloadKind::SpriteNow, "Sprite"),
    ] {
        let wl = build_workload(kind, opts.scale, opts.seed);
        let cfg = build_config(
            kind,
            opts.scale,
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        );
        let r = run_simulation(cfg, wl);
        println!(
            "  {label:<10} {:>6.2}%  (paper: {} )",
            r.prefetch.fallback_share() * 100.0,
            if kind == WorkloadKind::CharismaPm {
                "<1%"
            } else {
                "~25%"
            }
        );
    }
    println!();
}

/// Seed robustness: re-run Figure 4's key cells across several
/// workload seeds and report mean ± standard deviation — the shape
/// claims should not hinge on one synthetic trace.
fn robustness(opts: &Options) {
    use bench::{run_grid, CACHE_MBS};
    const SEEDS: [u64; 5] = [1, 2, 3, 42, 1999];
    let exp = experiment("fig4").unwrap();
    println!(
        "robustness — fig4 across seeds {:?} (mean ± sd of avg read ms, scale {:?})",
        SEEDS, opts.scale
    );
    // Collect per-seed grids.
    let grids: Vec<Vec<bench::Cell>> = SEEDS
        .iter()
        .map(|&seed| run_grid(exp, opts.scale, seed, &CACHE_MBS, opts.threads))
        .collect();

    print!("{:<18}", "algorithm");
    for mb in CACHE_MBS {
        print!(" {mb:>15}MB");
    }
    println!();
    let mut algos: Vec<String> = Vec::new();
    for c in &grids[0] {
        if !algos.contains(&c.algorithm) {
            algos.push(c.algorithm.clone());
        }
    }
    for algo in &algos {
        print!("{algo:<18}");
        for mb in CACHE_MBS {
            let vals: Vec<f64> = grids
                .iter()
                .filter_map(|g| {
                    g.iter()
                        .find(|c| &c.algorithm == algo && c.cache_mb == mb)
                        .map(|c| c.report.avg_read_ms)
                })
                .collect();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            print!(" {:>9.3}±{:<7.3}", mean, var.sqrt());
        }
        println!();
    }
    println!();
}

/// Extension experiment: how much of the performance comes from the
/// *cooperation* itself? Sweep cache sizes for the two cooperative
/// systems and the non-cooperative per-node baseline, with and without
/// prefetching.
fn cooperation(opts: &Options) {
    let kind = WorkloadKind::CharismaPm;
    let wl = build_workload(kind, opts.scale, opts.seed);
    println!(
        "cooperation — CHARISMA, read time in ms (seed {}, scale {:?})",
        opts.seed, opts.scale
    );
    for pf in [PrefetchConfig::np(), PrefetchConfig::ln_agr_is_ppm(1)] {
        println!("\n[{}]", pf.paper_name());
        print!("{:<22}", "system");
        for mb in bench::CACHE_MBS {
            print!(" {:>8}MB", mb);
        }
        println!();
        for system in [CacheSystem::Pafs, CacheSystem::Xfs, CacheSystem::LocalOnly] {
            print!("{:<22}", system.name());
            for mb in bench::CACHE_MBS {
                let cfg = build_config(kind, opts.scale, system, pf, mb);
                let r = run_simulation(cfg, wl.clone());
                print!(" {:>9.3}", r.avg_read_ms);
            }
            println!();
        }
    }
    println!();
}

/// Ablations of the design choices the paper argues for (and the one
/// engineering guard this reproduction adds):
///
/// * MRU vs most-frequent edge selection in IS_PPM (§2.2 argues MRU);
/// * the linear limit vs a k-block window vs unlimited aggressiveness
///   (§3.2 argues for the linear limit);
/// * the Markov order j (§5.2: "the order of the Markov predictor does
///   not make a significant difference");
/// * the aggressive-walk lead cap (this reproduction's read-ahead
///   window; `None` is the paper-pure unbounded walk).
fn ablations(opts: &Options) {
    let kind = WorkloadKind::CharismaPm;
    let wl = build_workload(kind, opts.scale, opts.seed);
    let run = |pf: PrefetchConfig, mb: u64| {
        let cfg = build_config(kind, opts.scale, CacheSystem::Pafs, pf, mb);
        run_simulation(cfg, wl.clone())
    };
    let show = |name: &str, r: &lap_core::SimReport| {
        println!(
            "  {name:<28} read {:>7.3} ms   disk {:>9}   mispred {:>5.1}%",
            r.avg_read_ms,
            r.disk_accesses(),
            r.mispredict_ratio * 100.0
        );
    };

    println!(
        "ablations — CHARISMA on PAFS at 4 MB (seed {}, scale {:?})",
        opts.seed, opts.scale
    );

    println!("\n[edge selection in IS_PPM — the paper argues most-recent beats most-frequent]");
    for (name, choice) in [
        ("MRU (paper)", EdgeChoice::MostRecent),
        ("most-frequent", EdgeChoice::MostFrequent),
    ] {
        let pf = PrefetchConfig {
            edge_choice: choice,
            ..PrefetchConfig::ln_agr_is_ppm(1)
        };
        show(name, &run(pf, 4));
    }

    println!("\n[aggressiveness limit — the paper argues for the linear (one-block) limit]");
    for (name, limit) in [
        ("linear (paper)", AggressiveLimit::One),
        ("window 4", AggressiveLimit::Window(4)),
        ("window 16", AggressiveLimit::Window(16)),
        ("unlimited", AggressiveLimit::Unlimited),
    ] {
        let pf = PrefetchConfig {
            aggressive: Some(limit),
            ..PrefetchConfig::ln_agr_is_ppm(1)
        };
        show(name, &run(pf, 4));
    }

    println!("\n[Markov order j — the paper finds it barely matters]");
    for order in [1usize, 2, 3, 4] {
        let pf = PrefetchConfig::ln_agr_is_ppm(order);
        show(&format!("IS_PPM:{order}"), &run(pf, 4));
    }

    println!("\n[walk lead cap — this reproduction's read-ahead window; None = paper-pure]");
    for (name, cap) in [
        ("cap 256", Some(256)),
        ("cap 1024 (default)", Some(1024)),
        ("cap 4096", Some(4096)),
        ("unbounded (paper)", None),
    ] {
        let pf = PrefetchConfig {
            lead_cap: cap,
            ..PrefetchConfig::ln_agr_is_ppm(1)
        };
        show(name, &run(pf, 4));
    }

    println!("\n[order back-off — extension: escape to lower orders instead of straight to OBA]");
    for (name, pf) in [
        ("IS_PPM:3 (paper)", PrefetchConfig::ln_agr_is_ppm(3)),
        (
            "IS_PPM*:3 (back-off)",
            PrefetchConfig::ln_agr_is_ppm_backoff(3),
        ),
    ] {
        show(name, &run(pf, 4));
    }

    println!("\n[prefetch disk priority — the paper's \"never delay other operations\" rule]");
    for (name, prio) in [
        ("lowest priority (paper)", true),
        ("demand priority", false),
    ] {
        let mut cfg = build_config(
            kind,
            opts.scale,
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        );
        cfg.prefetch_priority = prio;
        show(name, &run_simulation(cfg, wl.clone()));
    }

    println!("\n[replacement policy — both systems assume LRU]");
    for (name, policy) in [
        ("global LRU (paper)", Replacement::Lru),
        ("global FIFO", Replacement::Fifo),
    ] {
        let mut cfg = build_config(
            kind,
            opts.scale,
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        );
        cfg.replacement = policy;
        show(name, &run_simulation(cfg, wl.clone()));
    }

    println!("\n[cooperation — cooperative caches vs independent per-node caches]");
    for (name, system) in [
        ("PAFS (cooperative)", CacheSystem::Pafs),
        ("xFS (cooperative)", CacheSystem::Xfs),
        ("local-only (none)", CacheSystem::LocalOnly),
    ] {
        let cfg = build_config(
            kind,
            opts.scale,
            system,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        );
        show(name, &run_simulation(cfg, wl.clone()));
    }
    println!();
}

/// Device-model ablation: NP / OBA / IS_PPM (linear and unlimited
/// aggressive) × disk scheduler, on the calibrated geometry preset.
/// The first column is the fixed Table-1 service-time model; under
/// FIFO the geometry column must sit within a couple percent of it
/// (the calibration contract), while SSTF/C-LOOK shift read times —
/// most visibly for the prefetch-heavy configurations whose queued
/// requests give the scheduler something to reorder.
fn devmodel_ablation(opts: &Options) {
    let kind = WorkloadKind::CharismaPm;
    let wl = std::sync::Arc::new(build_workload(kind, opts.scale, opts.seed));
    println!(
        "devmodel — CHARISMA on PAFS at 4 MB: disk model × scheduler, read time in ms \
         (seed {}, scale {:?})",
        opts.seed, opts.scale
    );
    let algos: [(&str, PrefetchConfig); 4] = [
        ("NP", PrefetchConfig::np()),
        ("OBA", PrefetchConfig::oba()),
        (
            "Agr_IS_PPM:1",
            PrefetchConfig {
                aggressive: Some(AggressiveLimit::Unlimited),
                ..PrefetchConfig::ln_agr_is_ppm(1)
            },
        ),
        ("Ln_Agr_IS_PPM:1", PrefetchConfig::ln_agr_is_ppm(1)),
    ];
    print!("{:<18} {:>9}", "algorithm", "fixed");
    for sched in DiskSched::ALL {
        print!(" {:>9}", format!("geom/{}", sched.name()));
    }
    println!();
    // One job per table cell (`None` is the fixed-model column); the
    // sweep fans out and returns cells in job order, so the printed
    // table is byte-identical for any worker count.
    let jobs: Vec<(&str, PrefetchConfig, Option<DiskSched>)> = algos
        .iter()
        .flat_map(|&(name, pf)| {
            std::iter::once((name, pf, None))
                .chain(DiskSched::ALL.iter().map(move |&s| (name, pf, Some(s))))
        })
        .collect();
    let reports = bench::par_map(&jobs, opts.threads, |&(_, pf, sched)| {
        let mut cfg = build_config(kind, opts.scale, CacheSystem::Pafs, pf, 4);
        if let Some(s) = sched {
            cfg.machine = cfg.machine.with_geometry();
            cfg.machine.disk_sched = s;
        }
        lap_core::run_simulation_shared(cfg, std::sync::Arc::clone(&wl))
    });
    let per_row = 1 + DiskSched::ALL.len();
    for (i, ((name, _, sched), r)) in jobs.iter().zip(&reports).enumerate() {
        match sched {
            None => print!("{name:<18} {:>9.3}", r.avg_read_ms),
            Some(s) => {
                print!(" {:>9.3}", r.avg_read_ms);
                // Smoke-level sanity: the simulation must have done
                // real work and produced a finite, positive read time.
                assert!(
                    r.avg_read_ms.is_finite() && r.avg_read_ms > 0.0 && r.reads > 0,
                    "degenerate devmodel cell: {name} geom/{}",
                    s.name()
                );
            }
        }
        if i % per_row == per_row - 1 {
            println!();
        }
    }
    println!();
}

/// Extent-granularity ablation: the seven paper configurations on the
/// `pm_extent` geometry at `extent_blocks ∈ {1, 4, 8, 16}`, comparing
/// block-granular vs extent-granular prefetch issue *on the same
/// geometry* (the only apples-to-apples pair: extent size changes both
/// the layout and the striping, so columns with different sizes are
/// different disks — see docs/CALIBRATION.md). Non-aggressive
/// configurations ignore the granularity switch, and at one-block
/// extents the batcher degenerates to per-block issue, so those rows
/// double as a bit-identity sanity gate.
fn extent_ablation(opts: &Options) {
    let kind = WorkloadKind::CharismaPm;
    let wl = std::sync::Arc::new(build_workload(kind, opts.scale, opts.seed));
    println!(
        "extent — CHARISMA on PAFS at 4 MB: prefetch granularity × extent size, geometry \
         disks (seed {}, scale {:?})",
        opts.seed, opts.scale
    );
    println!(
        "{:<22} {:>4} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "algorithm", "ext", "blk ms", "ext ms", "delta%", "covered%", "blk/iss"
    );
    let covered_rate = |r: &lap_core::SimReport| {
        let covered = match r.obs.get("span.outcome_covered_by_prefetch") {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        covered as f64 / r.reads.max(1) as f64
    };
    let mut csv = String::from(
        "algorithm,extent_blocks,block_read_ms,extent_read_ms,delta_pct,extent_covered_rate,blocks_per_issue\n",
    );
    // One job per (algorithm, extent size): both granularities of a
    // pair stay in one job so the comparison logic below reads them
    // together; the sweep returns pairs in job order, so the table and
    // CSV are byte-identical for any worker count.
    let jobs: Vec<(PrefetchConfig, u64)> = PrefetchConfig::paper_suite()
        .iter()
        .flat_map(|&pf| [1u64, 4, 8, 16].into_iter().map(move |n| (pf, n)))
        .collect();
    let pairs = bench::par_map(&jobs, opts.threads, |&(pf, n)| {
        let run_with = |gran: PrefetchGranularity| {
            let mut cfg = build_config(kind, opts.scale, CacheSystem::Pafs, pf, 4);
            cfg.machine = cfg.machine.with_geometry_extent(n);
            cfg.machine.prefetch_granularity = gran;
            lap_core::run_simulation_shared(cfg, std::sync::Arc::clone(&wl))
        };
        (
            run_with(PrefetchGranularity::Block),
            run_with(PrefetchGranularity::Extent),
        )
    });
    {
        for (&(pf, n), (blk, ext)) in jobs.iter().zip(&pairs) {
            assert!(
                blk.avg_read_ms.is_finite() && blk.avg_read_ms > 0.0 && blk.reads > 0,
                "degenerate extent cell: {} n={n}",
                pf.paper_name()
            );
            if n == 1 || !pf.is_aggressive() {
                // One-block extents (or a non-aggressive engine) must
                // reduce extent mode to exactly the per-block simulator.
                assert_eq!(
                    (blk.avg_read_ms, blk.reads, blk.disk_accesses()),
                    (ext.avg_read_ms, ext.reads, ext.disk_accesses()),
                    "extent mode must degenerate to block mode: {} n={n}",
                    pf.paper_name()
                );
            }
            let delta = (ext.avg_read_ms - blk.avg_read_ms) / blk.avg_read_ms * 100.0;
            println!(
                "{:<22} {:>4} {:>9.3} {:>9.3} {:>+8.2} {:>9.2} {:>8.2}",
                pf.paper_name(),
                n,
                blk.avg_read_ms,
                ext.avg_read_ms,
                delta,
                covered_rate(ext) * 100.0,
                ext.prefetch.blocks_per_issue(),
            );
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{n},{:.6},{:.6},{:.4},{:.6},{:.4}",
                pf.paper_name(),
                blk.avg_read_ms,
                ext.avg_read_ms,
                delta,
                covered_rate(ext),
                ext.prefetch.blocks_per_issue(),
            );
        }
    }
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join("extent.csv");
        fs::write(&path, csv).expect("write extent CSV");
        println!("wrote {}", path.display());
    }
}

/// Fault-injection ablation: the seven paper configurations under
/// four deterministic fault plans (none / light transient errors /
/// heavy bursts + outages + degraded-mode windows / heavy with
/// crash-style node outages that wipe the rejoining node's cache).
/// The wipe/heavy delta reported at the end is the read-time cost of
/// re-warming the wiped buffers. Checks the robustness invariants the
/// fault layer promises:
///
/// * no demand read is lost or double-counted — total completed reads
///   and writes (warm + warm-up) are identical across plans for every
///   configuration;
/// * every cell stays finite and does real work;
/// * under the heavy plan's error bursts the aggressive walkers stand
///   down (`fault.prefetch_suppressed > 0`) while demand reads keep
///   completing — the paper's "never delay other operations" rule,
///   extended to fault handling.
fn faults_ablation(opts: &Options) {
    let kind = WorkloadKind::CharismaPm;
    let wl = build_workload(kind, opts.scale, opts.seed);
    let plans: [(&str, Option<&str>); 4] = [
        ("none", None),
        (
            "light",
            Some("seed=7,disk-error=0.01,disk-retries=4,backoff-ms=2,net-loss=0.005,net-delay=0.02:1"),
        ),
        (
            "heavy",
            Some(
                "seed=7,disk-error=0.02,disk-retries=5,backoff-ms=5,burst=10:2,\
                 outage=30:3,node-outage=45:5,net-loss=0.02,net-delay=0.05:2",
            ),
        ),
        // The heavy plan with node outages turned into *crashes*: a
        // rejoining node comes back with an empty cache
        // (node-outage-wipe). The wipe/heavy read-time delta is the
        // cost of recovering the wiped buffers.
        (
            "wipe",
            Some(
                "seed=7,disk-error=0.02,disk-retries=5,backoff-ms=5,burst=10:2,\
                 outage=30:3,node-outage-wipe=45:5,net-loss=0.02,net-delay=0.05:2",
            ),
        ),
    ];
    println!(
        "faults — CHARISMA on PAFS at 4 MB under deterministic fault plans (seed {}, scale {:?})",
        opts.seed, opts.scale
    );
    println!(
        "{:<22} {:<6} {:>9} {:>7} {:>8} {:>9} {:>8} {:>10}",
        "algorithm", "plan", "read ms", "reads", "injected", "failovers", "pf-supp", "degraded-s"
    );
    let suppressed = |r: &lap_core::SimReport| match r.obs.get("fault.prefetch_suppressed") {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let mut csv = String::from(
        "algorithm,plan,read_ms,reads,writes,faults_injected,failovers,prefetch_suppressed,degraded_s\n",
    );
    let mut recovery: Vec<(String, f64, f64)> = Vec::new();
    for pf in PrefetchConfig::paper_suite() {
        let mut baseline: Option<(u64, u64)> = None;
        let mut heavy_ms = 0.0;
        for (plan_name, spec) in plans {
            let mut cfg = build_config(kind, opts.scale, CacheSystem::Pafs, pf, 4);
            cfg.fault_plan = spec.map(|s| {
                FaultPlan::parse(&s.replace(char::is_whitespace, ""))
                    .expect("ablation fault plan parses")
            });
            let r = run_simulation(cfg, wl.clone());
            assert!(
                r.avg_read_ms.is_finite() && r.avg_read_ms > 0.0 && r.reads > 0,
                "degenerate faults cell: {} plan={plan_name}",
                pf.paper_name()
            );
            // Conservation must compare warm + warm-up totals: fault
            // delays shift when later requests *start*, so a request
            // near the warm-up boundary can migrate between the two
            // buckets across plans even though none is lost.
            let totals = (r.reads + r.warmup_reads, r.writes + r.warmup_writes);
            match baseline {
                None => baseline = Some(totals),
                Some(base) => assert_eq!(
                    base,
                    totals,
                    "fault injection lost or double-counted requests: {} plan={plan_name}",
                    pf.paper_name()
                ),
            }
            if plan_name == "heavy" && pf.is_aggressive() {
                assert!(
                    suppressed(&r) > 0,
                    "{}: aggressive walk never stood down during heavy error bursts",
                    pf.paper_name()
                );
            }
            if plan_name == "none" {
                assert_eq!(
                    (r.faults_injected, r.failovers, r.degraded_s),
                    (0, 0, 0.0),
                    "{}: fault counters nonzero without a plan",
                    pf.paper_name()
                );
            }
            if plan_name == "heavy" {
                heavy_ms = r.avg_read_ms;
            }
            if plan_name == "wipe" {
                assert!(
                    r.degraded_s > 0.0,
                    "{}: wipe plan never degraded a node",
                    pf.paper_name()
                );
                recovery.push((pf.paper_name(), heavy_ms, r.avg_read_ms));
            }
            println!(
                "{:<22} {:<6} {:>9.3} {:>7} {:>8} {:>9} {:>8} {:>10.3}",
                pf.paper_name(),
                plan_name,
                r.avg_read_ms,
                r.reads,
                r.faults_injected,
                r.failovers,
                suppressed(&r),
                r.degraded_s
            );
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{plan_name},{:.6},{},{},{},{},{},{:.6}",
                pf.paper_name(),
                r.avg_read_ms,
                r.reads,
                r.writes,
                r.faults_injected,
                r.failovers,
                suppressed(&r),
                r.degraded_s
            );
        }
    }
    println!();
    println!("recovery cost of cold rejoin (wipe vs heavy, same fault schedule):");
    for (name, heavy_ms, wipe_ms) in &recovery {
        println!(
            "{:<22} heavy {:>9.3} ms   wipe {:>9.3} ms   delta {:>+8.3} ms",
            name,
            heavy_ms,
            wipe_ms,
            wipe_ms - heavy_ms
        );
    }
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join("faults.csv");
        fs::write(&path, csv).expect("write faults CSV");
        println!("wrote {}", path.display());
    }
}

/// Predictor-zoo ablation: every registry predictor under every
/// aggressiveness mode (none / Ln_Agr:1..3 / unlimited) on both
/// workloads, scored with the span model's coverage, accuracy, and
/// timeliness plus the `pred.*` table-size and emit counters. The NP
/// baseline anchors each workload. Degeneracy checks:
///
/// * every cell is finite and serves real reads;
/// * NP never covers a read and never emits a prediction;
/// * the MITHRIL miner actually mines associations on both workloads;
/// * at least one aggressive MITHRIL cell covers reads.
fn predictors_ablation(opts: &Options) {
    let workloads: [(&str, WorkloadKind, CacheSystem, u64); 2] = [
        (
            "charisma/pafs/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            4,
        ),
        (
            "sprite/xfs/2MB",
            WorkloadKind::SpriteNow,
            CacheSystem::Xfs,
            2,
        ),
    ];
    let all_specs = [
        "oba",
        "is_ppm:1",
        "is_ppm:3",
        "markov:1",
        "markov:2",
        "mithril",
        "mithril+oba",
    ];
    let specs: Vec<PredictorSpec> = match &opts.predictor {
        Some(s) => vec![*s],
        None => all_specs
            .iter()
            .map(|s| PredictorSpec::parse(s).expect("ablation spec parses"))
            .collect(),
    };
    let modes: [(&str, Option<AggressiveLimit>); 5] = [
        ("simple", None),
        ("Ln_Agr:1", Some(AggressiveLimit::One)),
        ("Ln_Agr:2", Some(AggressiveLimit::Window(2))),
        ("Ln_Agr:3", Some(AggressiveLimit::Window(3))),
        ("Agr", Some(AggressiveLimit::Unlimited)),
    ];
    println!(
        "predictors — registry predictors × aggressiveness × workload, span-model scoring \
         (seed {}, scale {:?})",
        opts.seed, opts.scale
    );
    println!(
        "{:<18} {:<14} {:<9} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "workload",
        "predictor",
        "mode",
        "read ms",
        "cov%",
        "acc%",
        "tml%",
        "table",
        "emits",
        "mined"
    );
    let counter = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let gauge = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Gauge(v)) => *v,
        _ => 0.0,
    };
    let mut csv = String::from(
        "workload,predictor,mode,read_ms,coverage,accuracy,timeliness,table_size,emits,mined\n",
    );
    let mut saw_mithril = false;
    let mut mithril_covered = false;
    for (wl_name, kind, system, mb) in workloads {
        let wl = build_workload(kind, opts.scale, opts.seed);
        let mut rows: Vec<(String, String, PrefetchConfig)> =
            vec![("np".into(), "-".into(), PrefetchConfig::np())];
        for spec in &specs {
            for (mode_name, aggressive) in modes {
                rows.push((
                    spec.canonical(),
                    mode_name.into(),
                    PrefetchConfig::with_predictor(spec.kind, aggressive),
                ));
            }
        }
        for (pred_name, mode_name, pf) in rows {
            let cfg = build_config(kind, opts.scale, system, pf, mb);
            let r = run_simulation(cfg, wl.clone());
            assert!(
                r.avg_read_ms.is_finite() && r.avg_read_ms > 0.0 && r.reads > 0,
                "degenerate predictors cell: {wl_name} {pred_name} {mode_name}"
            );
            let covered = counter(&r, "span.outcome_covered_by_prefetch") as f64;
            let late = counter(&r, "span.outcome_late_prefetch") as f64;
            let used = (counter(&r, "cache.prefetch_used")
                + counter(&r, "prefetch.absorbed_in_flight")) as f64;
            let wasted = counter(&r, "cache.prefetch_wasted") as f64;
            let coverage = (covered + late) / r.reads.max(1) as f64;
            let accuracy = if used + wasted == 0.0 {
                0.0
            } else {
                used / (used + wasted)
            };
            let timeliness = if covered + late == 0.0 {
                0.0
            } else {
                covered / (covered + late)
            };
            let table = gauge(&r, "pred.table_size");
            let emits = counter(&r, "pred.emits");
            let mined = counter(&r, "pred.mined");
            if pred_name == "np" {
                assert_eq!(
                    (coverage, emits),
                    (0.0, 0),
                    "NP covered reads or emitted predictions on {wl_name}"
                );
            }
            if pred_name.starts_with("mithril") {
                saw_mithril = true;
                assert!(
                    mined > 0,
                    "MITHRIL mined no associations: {wl_name} {mode_name}"
                );
                if mode_name != "simple" && coverage > 0.0 {
                    mithril_covered = true;
                }
            }
            println!(
                "{:<18} {:<14} {:<9} {:>8.3} {:>6.2} {:>6.2} {:>6.2} {:>7.0} {:>7} {:>6}",
                wl_name,
                pred_name,
                mode_name,
                r.avg_read_ms,
                coverage * 100.0,
                accuracy * 100.0,
                timeliness * 100.0,
                table,
                emits,
                mined
            );
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{wl_name},{pred_name},{mode_name},{:.6},{:.6},{:.6},{:.6},{:.0},{emits},{mined}",
                r.avg_read_ms, coverage, accuracy, timeliness, table
            );
        }
    }
    if saw_mithril {
        assert!(
            mithril_covered,
            "no aggressive MITHRIL cell covered a single read on either workload"
        );
    }
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join("predictors.csv");
        fs::write(&path, csv).expect("write predictors CSV");
        println!("wrote {}", path.display());
    }
}

/// The default workload-zoo grid: the three synthetic generators at
/// their cache-overflow presets, each run with 1 MB of cache per node
/// so the working set genuinely exceeds the aggregate cooperative
/// cache (web ≈ 20 MB over 8 MB aggregate; db ≈ 33 MB and mltrain =
/// 16 MB over 4 MB). `--workload SPEC` narrows the grid to one entry.
fn zoo_grid(opts: &Options) -> Vec<(WorkloadSpec, u64)> {
    match &opts.workload {
        Some(s) => vec![(s.clone(), 1)],
        None => ["web:64,0.8,256", "db:0.3,4096", "mltrain:4,2048"]
            .iter()
            .map(|s| (WorkloadSpec::parse(s).expect("zoo grid spec parses"), 1))
            .collect(),
    }
}

/// Workload-zoo ablation: the paper's seven configurations plus the
/// unlimited-aggressive IS_PPM and the history-replay predictors
/// (markov, MITHRIL) on the modern synthetic workloads, scored with
/// the span model. The point of the zoo: the stock CHARISMA/Sprite
/// pair never re-reads evicted data, so history-replay predictors are
/// degenerate there (PR 6's open finding); the zoo's overflow
/// workloads make them bite, and re-ask the paper's central question —
/// does the linear limit still beat unlimited aggressiveness? — per
/// workload (the `verdict` lines).
fn zoo_ablation(opts: &Options) {
    println!(
        "zoo — workload zoo × predictors on PAFS/NOW at 1 MB per node, span-model scoring \
         (seed {}, workload sizes fixed by spec)",
        opts.seed
    );
    println!(
        "{:<22} {:<20} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "workload", "algorithm", "read ms", "cov%", "acc%", "tml%", "table", "emits", "mined"
    );
    let counter = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let gauge = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Gauge(v)) => *v,
        _ => 0.0,
    };
    let mut csv = String::from(
        "workload,algorithm,read_ms,coverage,accuracy,timeliness,table_size,emits,mined\n",
    );
    let mut replay_covered = false;
    let mut verdicts: Vec<String> = Vec::new();
    for (spec, mb) in zoo_grid(opts) {
        let wl = spec.build(opts.seed).unwrap_or_else(|e| {
            eprintln!("bad --workload: {e}");
            std::process::exit(2);
        });
        // The paper suite, the unlimited-aggressive IS_PPM twin of
        // Ln_Agr_IS_PPM:1 (the verdict pair), and the history-replay
        // predictors under both aggressiveness regimes.
        let mut rows: Vec<PrefetchConfig> = PrefetchConfig::paper_suite().to_vec();
        rows.push(PrefetchConfig {
            aggressive: Some(AggressiveLimit::Unlimited),
            ..PrefetchConfig::ln_agr_is_ppm(1)
        });
        for pred in ["markov:1", "mithril"] {
            let ps = PredictorSpec::parse(pred).expect("zoo predictor spec parses");
            for limit in [AggressiveLimit::One, AggressiveLimit::Unlimited] {
                rows.push(PrefetchConfig::with_predictor(ps.kind, Some(limit)));
            }
        }
        let (mut ln_ms, mut agr_ms) = (None, None);
        for pf in rows {
            let name = pf.paper_name();
            let mut cfg = lap_core::SimConfig::now(CacheSystem::Pafs, pf, mb);
            cfg.fit_to_workload(&wl);
            let r = run_simulation(cfg, wl.clone());
            assert!(
                r.avg_read_ms.is_finite() && r.avg_read_ms > 0.0 && r.reads > 0,
                "degenerate zoo cell: {} {name}",
                wl.name
            );
            let covered = counter(&r, "span.outcome_covered_by_prefetch") as f64;
            let late = counter(&r, "span.outcome_late_prefetch") as f64;
            let used = (counter(&r, "cache.prefetch_used")
                + counter(&r, "prefetch.absorbed_in_flight")) as f64;
            let wasted = counter(&r, "cache.prefetch_wasted") as f64;
            let coverage = (covered + late) / r.reads.max(1) as f64;
            let accuracy = if used + wasted == 0.0 {
                0.0
            } else {
                used / (used + wasted)
            };
            let timeliness = if covered + late == 0.0 {
                0.0
            } else {
                covered / (covered + late)
            };
            if name == "Ln_Agr_IS_PPM:1" {
                ln_ms = Some(r.avg_read_ms);
            } else if name == "Agr_IS_PPM:1" {
                agr_ms = Some(r.avg_read_ms);
            }
            if (name.contains("MARKOV") || name.contains("MITHRIL")) && coverage > 0.0 {
                replay_covered = true;
            }
            println!(
                "{:<22} {:<20} {:>8.3} {:>6.2} {:>6.2} {:>6.2} {:>7.0} {:>7} {:>6}",
                wl.name,
                name,
                r.avg_read_ms,
                coverage * 100.0,
                accuracy * 100.0,
                timeliness * 100.0,
                gauge(&r, "pred.table_size"),
                counter(&r, "pred.emits"),
                counter(&r, "pred.mined")
            );
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{name},{:.6},{:.6},{:.6},{:.6},{:.0},{},{}",
                wl.name,
                r.avg_read_ms,
                coverage,
                accuracy,
                timeliness,
                gauge(&r, "pred.table_size"),
                counter(&r, "pred.emits"),
                counter(&r, "pred.mined")
            );
        }
        // The paper's central claim, re-asked per workload: does the
        // linear (one-block-per-file) limit still beat the unlimited
        // aggressive walk once the working set overflows the cache?
        let (ln, agr) = (
            ln_ms.expect("zoo rows include Ln_Agr_IS_PPM:1"),
            agr_ms.expect("zoo rows include Agr_IS_PPM:1"),
        );
        verdicts.push(format!(
            "verdict {}: Ln_Agr_IS_PPM:1 {ln:.3} ms vs Agr_IS_PPM:1 {agr:.3} ms — {}",
            wl.name,
            if ln <= agr {
                "linear limit wins (paper ordering preserved)"
            } else {
                "unlimited aggressiveness wins (paper ordering flips)"
            }
        ));
    }
    for v in &verdicts {
        println!("{v}");
    }
    if opts.workload.is_none() {
        // On the default grid the zoo must deliver what it exists for:
        // a workload where a history-replay predictor actually covers
        // reads (impossible on stock CHARISMA/Sprite).
        assert!(
            replay_covered,
            "no history-replay predictor covered a single read on any zoo workload"
        );
    }
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join("zoo.csv");
        fs::write(&path, csv).expect("write zoo CSV");
        println!("wrote {}", path.display());
    }
}

/// MITHRIL parameter sweep on the zoo workloads: association-window W
/// × support threshold S under the linear limit. Small W misses
/// repeats separated by interleaved traffic; large W plus low S mines
/// noise (visible as accuracy loss). Results feed
/// docs/CALIBRATION.md's choice of the registry defaults.
fn mithril_sweep(opts: &Options) {
    println!(
        "mithril-sweep — MITHRIL W×S on the zoo workloads, Ln_Agr:1 on PAFS/NOW at 1 MB \
         per node (seed {})",
        opts.seed
    );
    println!(
        "{:<22} {:>4} {:>3} {:>8} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "workload", "W", "S", "read ms", "cov%", "acc%", "table", "emits", "mined"
    );
    let counter = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let gauge = |r: &lap_core::SimReport, key: &str| match r.obs.get(key) {
        Some(MetricValue::Gauge(v)) => *v,
        _ => 0.0,
    };
    let mut csv =
        String::from("workload,window,support,read_ms,coverage,accuracy,table_size,emits,mined\n");
    for (spec, mb) in zoo_grid(opts) {
        let wl = spec.build(opts.seed).unwrap_or_else(|e| {
            eprintln!("bad --workload: {e}");
            std::process::exit(2);
        });
        for w in [4usize, 16, 64] {
            for s in [1usize, 2, 4] {
                let ps =
                    PredictorSpec::parse(&format!("mithril:{w},{s}")).expect("sweep spec parses");
                let pf = PrefetchConfig::with_predictor(ps.kind, Some(AggressiveLimit::One));
                let mut cfg = lap_core::SimConfig::now(CacheSystem::Pafs, pf, mb);
                cfg.fit_to_workload(&wl);
                let r = run_simulation(cfg, wl.clone());
                assert!(
                    r.avg_read_ms.is_finite() && r.avg_read_ms > 0.0 && r.reads > 0,
                    "degenerate sweep cell: {} W={w} S={s}",
                    wl.name
                );
                let covered = counter(&r, "span.outcome_covered_by_prefetch") as f64;
                let late = counter(&r, "span.outcome_late_prefetch") as f64;
                let used = (counter(&r, "cache.prefetch_used")
                    + counter(&r, "prefetch.absorbed_in_flight")) as f64;
                let wasted = counter(&r, "cache.prefetch_wasted") as f64;
                let coverage = (covered + late) / r.reads.max(1) as f64;
                let accuracy = if used + wasted == 0.0 {
                    0.0
                } else {
                    used / (used + wasted)
                };
                println!(
                    "{:<22} {:>4} {:>3} {:>8.3} {:>6.2} {:>6.2} {:>7.0} {:>7} {:>6}",
                    wl.name,
                    w,
                    s,
                    r.avg_read_ms,
                    coverage * 100.0,
                    accuracy * 100.0,
                    gauge(&r, "pred.table_size"),
                    counter(&r, "pred.emits"),
                    counter(&r, "pred.mined")
                );
                use std::fmt::Write as _;
                let _ = writeln!(
                    csv,
                    "{},{w},{s},{:.6},{:.6},{:.6},{:.0},{},{}",
                    wl.name,
                    r.avg_read_ms,
                    coverage,
                    accuracy,
                    gauge(&r, "pred.table_size"),
                    counter(&r, "pred.emits"),
                    counter(&r, "pred.mined")
                );
            }
        }
    }
    println!();
    if let Some(dir) = &opts.out {
        let path = dir.join("mithril_sweep.csv");
        fs::write(&path, csv).expect("write mithril-sweep CSV");
        println!("wrote {}", path.display());
    }
}

/// One (plan × system) outcome of the chaos sweep.
struct ChaosCell {
    system: &'static str,
    /// `"ok"`, `"violation"` (an invariant-oracle panic) or
    /// `"mismatch"` (layout/backend variants disagreed).
    status: &'static str,
    /// Panic message / mismatch description, empty when ok.
    detail: String,
    read_ms: f64,
    reads: u64,
    injected: u64,
    failovers: u64,
}

/// One seeded random fault plan's outcomes across both systems.
struct ChaosRow {
    plan: usize,
    seed: u64,
    spec: String,
    cells: Vec<ChaosCell>,
}

/// `experiments chaos`: the seeded chaos sweep (DESIGN.md §15). Each
/// plan index derives a random-but-valid fault plan spec from
/// `FaultPlan::random_spec(seed + index)`, and every plan runs on both
/// cooperative systems × both cache-metadata layouts × both
/// event-queue backends with the invariant oracle forced **on**. A
/// plan passes when all four layout/backend variants finish without an
/// oracle violation and produce bit-identical `SimReport`s.
///
/// Always runs at small scale on the stock CHARISMA/Sprite pair — the
/// point is plan count, not workload size; workload, algorithm and
/// cache size rotate with the plan index so the sweep crosses fault
/// plans with simulator states, not just with each other. Plans fan
/// out over `bench::par_map`, so stdout and the `--out` CSV are
/// byte-identical for any `--workers` value.
fn chaos(opts: &Options) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    let systems = [CacheSystem::Pafs, CacheSystem::Xfs];
    let variants: [(MetaLayout, QueueBackend); 4] = [
        (MetaLayout::Classic, QueueBackend::Heap),
        (MetaLayout::Classic, QueueBackend::Calendar),
        (MetaLayout::Dense, QueueBackend::Heap),
        (MetaLayout::Dense, QueueBackend::Calendar),
    ];
    let algos = [
        PrefetchConfig::ln_agr_is_ppm(1),
        PrefetchConfig::ln_agr_oba(),
        PrefetchConfig::ln_agr_is_ppm(3),
        PrefetchConfig::np(),
    ];
    let kinds = [WorkloadKind::CharismaPm, WorkloadKind::SpriteNow];
    let mbs = [1u64, 2, 4];
    let workloads: Vec<Arc<ioworkload::Workload>> = kinds
        .iter()
        .map(|&k| Arc::new(build_workload(k, Scale::Small, opts.seed)))
        .collect();

    // No worker count in the header: chaos output must stay
    // byte-identical for any --workers (CI diffs runs).
    println!(
        "chaos — {} seeded random fault plans × {{PAFS, xFS}} × {{classic, dense}} × \
         {{heap, calendar}}, invariant oracle on (seed base {}, small scale)",
        opts.plans, opts.seed
    );
    let panic_msg = |e: Box<dyn std::any::Any + Send>| -> String {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into())
    };
    let jobs: Vec<usize> = (0..opts.plans).collect();
    let rows: Vec<ChaosRow> = bench::par_map(&jobs, opts.threads, |&i| {
        let plan_seed = opts.seed.wrapping_add(i as u64);
        let spec = FaultPlan::random_spec(plan_seed);
        let plan = FaultPlan::parse(&spec).expect("random_spec emits valid specs");
        let kind = kinds[i % kinds.len()];
        let wl = &workloads[i % kinds.len()];
        let pf = algos[i % algos.len()];
        let mb = mbs[i % mbs.len()];
        let mut cells = Vec::with_capacity(systems.len());
        for system in systems {
            let mut reports = Vec::with_capacity(variants.len());
            let mut cell = ChaosCell {
                system: system.name(),
                status: "ok",
                detail: String::new(),
                read_ms: 0.0,
                reads: 0,
                injected: 0,
                failovers: 0,
            };
            for (layout, backend) in variants {
                let mut cfg = build_config(kind, Scale::Small, system, pf, mb);
                cfg.fault_plan = Some(plan);
                cfg.meta_layout = layout;
                cfg.event_queue = backend;
                cfg.check = CheckMode::On;
                let wl = Arc::clone(wl);
                match catch_unwind(AssertUnwindSafe(|| {
                    lap_core::run_simulation_shared(cfg, wl)
                })) {
                    Ok(r) => reports.push((layout, backend, r)),
                    Err(e) => {
                        cell.status = "violation";
                        cell.detail = format!(
                            "{}/{:?}/{:?}: {}",
                            system.name(),
                            layout,
                            backend,
                            panic_msg(e)
                        );
                        break;
                    }
                }
            }
            if cell.status == "ok" {
                let (_, _, first) = &reports[0];
                if let Some((layout, backend, _)) = reports.iter().find(|(_, _, r)| r != first) {
                    cell.status = "mismatch";
                    cell.detail = format!(
                        "{}/{:?}/{:?} differs from {:?}/{:?}",
                        system.name(),
                        layout,
                        backend,
                        variants[0].0,
                        variants[0].1
                    );
                } else {
                    cell.read_ms = first.avg_read_ms;
                    cell.reads = first.reads;
                    cell.injected = first.faults_injected;
                    cell.failovers = first.failovers;
                }
            }
            cells.push(cell);
        }
        ChaosRow {
            plan: i,
            seed: plan_seed,
            spec,
            cells,
        }
    });

    let mut csv =
        String::from("plan,seed,system,status,read_ms,reads,faults_injected,failovers,spec\n");
    let (mut violations, mut mismatches, mut injected_total) = (0u64, 0u64, 0u64);
    for row in &rows {
        for c in &row.cells {
            match c.status {
                "violation" => violations += 1,
                "mismatch" => mismatches += 1,
                _ => {}
            }
            injected_total += c.injected;
            if c.status != "ok" {
                println!(
                    "  plan {:>4} seed {:>8} {:<5} {}: {}\n    spec: {}",
                    row.plan, row.seed, c.system, c.status, c.detail, row.spec
                );
            }
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{},{},{},{:.6},{},{},{},{}",
                row.plan,
                row.seed,
                c.system,
                c.status,
                c.read_ms,
                c.reads,
                c.injected,
                c.failovers,
                row.spec
            );
        }
    }
    let runs = rows.len() * systems.len() * variants.len();
    println!(
        "  plans {:>5}   runs {:>6}   faults injected {:>8}   violations {}   mismatches {}",
        rows.len(),
        runs,
        injected_total,
        violations,
        mismatches
    );
    if let Some(dir) = &opts.out {
        let path = dir.join("chaos.csv");
        fs::write(&path, csv).expect("write chaos CSV");
        println!("wrote {}", path.display());
    }
    if violations + mismatches > 0 {
        eprintln!(
            "chaos: {violations} invariant violation(s), {mismatches} layout/backend mismatch(es)"
        );
        std::process::exit(1);
    }
    println!("  all invariants green; classic/dense and heap/calendar bit-identical per plan\n");
}

/// §5.2: miss-prediction ratios on Sprite at 4 MB — "Ln_Agr_OBA has a
/// miss-prediction ratio of 32% while Ln_Agr_IS_PPM only miss-predicts
/// 15% of the prefetched blocks".
fn mispredict(opts: &Options) {
    println!("mispredict — Sprite on PAFS at 4 MB (\u{a7}5.2)");
    let wl = build_workload(WorkloadKind::SpriteNow, opts.scale, opts.seed);
    for (pf, paper) in [
        (PrefetchConfig::ln_agr_oba(), "32%"),
        (PrefetchConfig::ln_agr_is_ppm(1), "15%"),
        (PrefetchConfig::ln_agr_is_ppm(3), "~15%"),
    ] {
        let cfg = build_config(
            WorkloadKind::SpriteNow,
            opts.scale,
            CacheSystem::Pafs,
            pf,
            4,
        );
        let r = run_simulation(cfg, wl.clone());
        println!(
            "  {:<18} {:>6.2}%  (paper: {paper})",
            pf.paper_name(),
            r.mispredict_ratio * 100.0
        );
    }
    println!();
}
