//! Experiment harness shared by the `experiments` binary and the
//! timing benchmarks: the figure/table definitions of the paper's
//! evaluation (§5) and a parallel sweep runner.

pub mod plot;
pub mod sweep;
pub mod timing;

pub use sweep::par_map;

use std::sync::Arc;

use ioworkload::charisma::CharismaParams;
use ioworkload::sprite::SpriteParams;
use ioworkload::Workload;
use lap_core::{run_simulation_shared, CacheSystem, SimConfig, SimReport};
use prefetch::PrefetchConfig;
use simkit::SimDuration;

/// The cache sizes of every figure, in MB per node.
pub const CACHE_MBS: [u64; 5] = [1, 2, 4, 8, 16];

/// Which of the two workload/architecture pairs an experiment uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// CHARISMA-like traces on the parallel machine (PM).
    CharismaPm,
    /// Sprite-like traces on the network of workstations (NOW).
    SpriteNow,
}

/// Experiment scale: paper-like or scaled down for quick runs/benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Table 1 machines, full synthetic traces. Minutes per figure.
    Paper,
    /// Small machines and traces. Seconds per figure.
    Small,
}

/// What a figure plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Average read time in ms (Figures 4–7).
    AvgReadMs,
    /// Total disk accesses (Figures 8–11).
    DiskAccesses,
    /// Mean disk writes per written block (Table 2).
    WritesPerBlock,
}

/// One of the paper's evaluation artifacts.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Paper identifier (`fig4` … `fig11`, `table2`).
    pub id: &'static str,
    /// Human description.
    pub title: &'static str,
    /// Workload/architecture pair.
    pub workload: WorkloadKind,
    /// Cooperative-cache system.
    pub system: CacheSystem,
    /// Plotted metric.
    pub metric: Metric,
    /// Restrict to the aggressive algorithms + NP (Figures 8–11 and
    /// Table 2 only plot those).
    pub aggressive_only: bool,
}

/// Every table/figure of §5, in paper order.
pub const EXPERIMENTS: [Experiment; 9] = [
    Experiment {
        id: "fig4",
        title: "Average read time, CHARISMA on PAFS",
        workload: WorkloadKind::CharismaPm,
        system: CacheSystem::Pafs,
        metric: Metric::AvgReadMs,
        aggressive_only: false,
    },
    Experiment {
        id: "fig5",
        title: "Average read time, CHARISMA on xFS",
        workload: WorkloadKind::CharismaPm,
        system: CacheSystem::Xfs,
        metric: Metric::AvgReadMs,
        aggressive_only: false,
    },
    Experiment {
        id: "fig6",
        title: "Average read time, Sprite on PAFS",
        workload: WorkloadKind::SpriteNow,
        system: CacheSystem::Pafs,
        metric: Metric::AvgReadMs,
        aggressive_only: false,
    },
    Experiment {
        id: "fig7",
        title: "Average read time, Sprite on xFS",
        workload: WorkloadKind::SpriteNow,
        system: CacheSystem::Xfs,
        metric: Metric::AvgReadMs,
        aggressive_only: false,
    },
    Experiment {
        id: "fig8",
        title: "Disk accesses, CHARISMA on PAFS",
        workload: WorkloadKind::CharismaPm,
        system: CacheSystem::Pafs,
        metric: Metric::DiskAccesses,
        aggressive_only: true,
    },
    Experiment {
        id: "fig9",
        title: "Disk accesses, CHARISMA on xFS",
        workload: WorkloadKind::CharismaPm,
        system: CacheSystem::Xfs,
        metric: Metric::DiskAccesses,
        aggressive_only: true,
    },
    Experiment {
        id: "fig10",
        title: "Disk accesses, Sprite on PAFS",
        workload: WorkloadKind::SpriteNow,
        system: CacheSystem::Pafs,
        metric: Metric::DiskAccesses,
        aggressive_only: true,
    },
    Experiment {
        id: "fig11",
        title: "Disk accesses, Sprite on xFS",
        workload: WorkloadKind::SpriteNow,
        system: CacheSystem::Xfs,
        metric: Metric::DiskAccesses,
        aggressive_only: true,
    },
    Experiment {
        id: "table2",
        title: "Writes per block, CHARISMA on PAFS",
        workload: WorkloadKind::CharismaPm,
        system: CacheSystem::Pafs,
        metric: Metric::WritesPerBlock,
        aggressive_only: true,
    },
];

/// Find an experiment by id.
pub fn experiment(id: &str) -> Option<Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.id == id)
}

/// Build the workload for a kind/scale/seed. Deterministic.
pub fn build_workload(kind: WorkloadKind, scale: Scale, seed: u64) -> Workload {
    match (kind, scale) {
        (WorkloadKind::CharismaPm, Scale::Paper) => CharismaParams::paper().generate(seed),
        (WorkloadKind::CharismaPm, Scale::Small) => CharismaParams::small().generate(seed),
        (WorkloadKind::SpriteNow, Scale::Paper) => SpriteParams::paper().generate(seed),
        (WorkloadKind::SpriteNow, Scale::Small) => SpriteParams::small().generate(seed),
    }
}

/// Build the simulation config for an experiment cell.
pub fn build_config(
    kind: WorkloadKind,
    scale: Scale,
    system: CacheSystem,
    pf: PrefetchConfig,
    cache_mb: u64,
) -> SimConfig {
    let mut cfg = match kind {
        WorkloadKind::CharismaPm => SimConfig::pm(system, pf, cache_mb),
        WorkloadKind::SpriteNow => SimConfig::now(system, pf, cache_mb),
    };
    match scale {
        Scale::Paper => {
            // Exclude the cold first stretch, like the paper's warm-up
            // trace hours (CHARISMA runs simulate hours, Sprite runs
            // minutes).
            cfg.warmup = match kind {
                WorkloadKind::CharismaPm => SimDuration::from_secs(1200),
                WorkloadKind::SpriteNow => SimDuration::from_secs(60),
            };
        }
        Scale::Small => {
            cfg.machine.nodes = match kind {
                WorkloadKind::CharismaPm => CharismaParams::small().nodes,
                WorkloadKind::SpriteNow => SpriteParams::small().nodes,
            };
            cfg.machine.disks = 4;
        }
    }
    cfg
}

/// The algorithm roster of a figure.
pub fn algorithms(aggressive_only: bool) -> Vec<PrefetchConfig> {
    if aggressive_only {
        vec![
            PrefetchConfig::np(),
            PrefetchConfig::ln_agr_oba(),
            PrefetchConfig::ln_agr_is_ppm(1),
            PrefetchConfig::ln_agr_is_ppm(3),
        ]
    } else {
        PrefetchConfig::paper_suite().to_vec()
    }
}

/// One cell of a figure: an algorithm at a cache size.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Paper name of the algorithm.
    pub algorithm: String,
    /// "Local cache" size in MB per node.
    pub cache_mb: u64,
    /// Full simulation report.
    pub report: SimReport,
}

/// Run a full figure grid (algorithms × cache sizes), fanning the
/// independent simulations out over `threads` workers via
/// [`par_map`]. Cells come back in roster order (algorithm, then
/// cache size) regardless of worker count.
pub fn run_grid(
    exp: Experiment,
    scale: Scale,
    seed: u64,
    cache_mbs: &[u64],
    threads: usize,
) -> Vec<Cell> {
    let workload = Arc::new(build_workload(exp.workload, scale, seed));
    let jobs: Vec<(PrefetchConfig, u64)> = algorithms(exp.aggressive_only)
        .iter()
        .flat_map(|&a| cache_mbs.iter().map(move |&mb| (a, mb)))
        .collect();
    par_map(&jobs, threads, |&(pf, mb)| {
        let cfg = build_config(exp.workload, scale, exp.system, pf, mb);
        Cell {
            algorithm: pf.paper_name(),
            cache_mb: mb,
            report: run_simulation_shared(cfg, Arc::clone(&workload)),
        }
    })
}

/// Extract the plotted metric from a cell.
pub fn metric_value(metric: Metric, report: &SimReport) -> f64 {
    match metric {
        Metric::AvgReadMs => report.avg_read_ms,
        Metric::DiskAccesses => report.disk_accesses() as f64,
        Metric::WritesPerBlock => report.writes_per_block,
    }
}

/// Render a figure as the paper would print it: one row per algorithm,
/// one column per cache size.
pub fn render_table(exp: Experiment, cells: &[Cell], cache_mbs: &[u64]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{} — {}", exp.id, exp.title).unwrap();
    write!(out, "{:<18}", "algorithm").unwrap();
    for mb in cache_mbs {
        write!(out, " {mb:>11}MB").unwrap();
    }
    writeln!(out).unwrap();
    let mut algos: Vec<&str> = Vec::new();
    for c in cells {
        if !algos.contains(&c.algorithm.as_str()) {
            algos.push(&c.algorithm);
        }
    }
    for algo in algos {
        write!(out, "{algo:<18}").unwrap();
        for mb in cache_mbs {
            let cell = cells
                .iter()
                .find(|c| c.algorithm == algo && c.cache_mb == *mb);
            match cell {
                Some(c) => {
                    let v = metric_value(exp.metric, &c.report);
                    match exp.metric {
                        Metric::AvgReadMs => write!(out, " {v:>12.3}").unwrap(),
                        Metric::DiskAccesses => write!(out, " {v:>12.0}").unwrap(),
                        Metric::WritesPerBlock => write!(out, " {v:>12.2}").unwrap(),
                    }
                }
                None => write!(out, " {:>12}", "-").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    out
}

/// Render a figure grid as CSV (one line per cell, with the full set of
/// secondary metrics for EXPERIMENTS.md).
pub fn render_csv(exp: Experiment, cells: &[Cell]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "experiment,algorithm,cache_mb,avg_read_ms,disk_reads_demand,disk_reads_prefetch,disk_writes,disk_accesses,writes_per_block,hit_ratio,mispredict_ratio,prefetch_issued,fallback_share,sim_seconds"
    )
    .unwrap();
    for c in cells {
        let r = &c.report;
        writeln!(
            out,
            "{},{},{},{:.6},{},{},{},{},{:.4},{:.6},{:.6},{},{:.6},{:.1}",
            exp.id,
            c.algorithm,
            c.cache_mb,
            r.avg_read_ms,
            r.disk_reads_demand,
            r.disk_reads_prefetch,
            r.disk_writes,
            r.disk_accesses(),
            r.writes_per_block,
            r.cache.hit_ratio(),
            r.mispredict_ratio,
            r.prefetch.issued,
            r.prefetch.fallback_share(),
            r.sim_seconds,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_lookup() {
        assert!(experiment("fig4").is_some());
        assert!(experiment("table2").is_some());
        assert!(experiment("fig99").is_none());
        assert_eq!(EXPERIMENTS.len(), 9);
    }

    #[test]
    fn small_grid_runs_and_renders() {
        let exp = experiment("fig4").unwrap();
        let cells = run_grid(exp, Scale::Small, 7, &[1, 2], 4);
        assert_eq!(cells.len(), 7 * 2);
        let table = render_table(exp, &cells, &[1, 2]);
        assert!(table.contains("Ln_Agr_IS_PPM:1"));
        let csv = render_csv(exp, &cells);
        assert_eq!(csv.lines().count(), 1 + 14);
    }

    #[test]
    fn aggressive_only_roster() {
        assert_eq!(algorithms(true).len(), 4);
        assert_eq!(algorithms(false).len(), 7);
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let exp = experiment("fig10").unwrap();
        let a = run_grid(exp, Scale::Small, 3, &[1], 1);
        let b = run_grid(exp, Scale::Small, 3, &[1], 4);
        let va: Vec<f64> = a.iter().map(|c| c.report.avg_read_ms).collect();
        let vb: Vec<f64> = b.iter().map(|c| c.report.avg_read_ms).collect();
        assert_eq!(va, vb);
    }
}
