//! Minimal dependency-free SVG line charts, one per figure — the same
//! visual form as the paper's Figures 4–11 (metric vs. "local cache"
//! size, one line per algorithm).

use crate::{metric_value, Cell, Experiment, Metric};

/// Chart geometry.
const W: f64 = 760.0;
const H: f64 = 520.0;
const MARGIN_L: f64 = 90.0;
const MARGIN_R: f64 = 220.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 70.0;

/// A visually distinct, print-safe palette (one entry per algorithm
/// line, cycled).
const COLORS: [&str; 7] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
];

fn fmt_value(metric: Metric, v: f64) -> String {
    match metric {
        Metric::AvgReadMs => format!("{v:.2}"),
        Metric::DiskAccesses => {
            if v >= 1e6 {
                format!("{:.1}M", v / 1e6)
            } else if v >= 1e3 {
                format!("{:.0}k", v / 1e3)
            } else {
                format!("{v:.0}")
            }
        }
        Metric::WritesPerBlock => format!("{v:.1}"),
    }
}

/// Render one experiment grid as a self-contained SVG document.
///
/// The x axis is the cache size (log scale, like the paper's 1–16 MB
/// doubling sweep); the y axis starts at zero, like the paper's plots.
pub fn render_svg(exp: Experiment, cells: &[Cell], cache_mbs: &[u64]) -> String {
    use std::fmt::Write;

    // Collect algorithms in first-appearance order.
    let mut algos: Vec<&str> = Vec::new();
    for c in cells {
        if !algos.contains(&c.algorithm.as_str()) {
            algos.push(&c.algorithm);
        }
    }

    let value_of = |algo: &str, mb: u64| -> Option<f64> {
        cells
            .iter()
            .find(|c| c.algorithm == algo && c.cache_mb == mb)
            .map(|c| metric_value(exp.metric, &c.report))
    };

    let y_max = cells
        .iter()
        .map(|c| metric_value(exp.metric, &c.report))
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * 1.08;

    let plot_w = W - MARGIN_L - MARGIN_R;
    let plot_h = H - MARGIN_T - MARGIN_B;
    let x_of = |mb: u64| -> f64 {
        // log2 positions: 1,2,4,8,16 equally spaced.
        let lo = (cache_mbs[0] as f64).log2();
        let hi = (cache_mbs[cache_mbs.len() - 1] as f64)
            .log2()
            .max(lo + 1e-9);
        MARGIN_L + ((mb as f64).log2() - lo) / (hi - lo) * plot_w
    };
    let y_of = |v: f64| -> f64 { MARGIN_T + plot_h - (v / y_max) * plot_h };

    let mut s = String::new();
    writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    )
    .unwrap();
    writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#).unwrap();

    // Title.
    writeln!(
        s,
        r#"<text x="{}" y="28" font-size="16" text-anchor="middle">{} — {}</text>"#,
        MARGIN_L + plot_w / 2.0,
        exp.id,
        xml_escape(exp.title)
    )
    .unwrap();

    // Axes.
    writeln!(
        s,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    )
    .unwrap();
    writeln!(
        s,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    )
    .unwrap();

    // X ticks.
    for &mb in cache_mbs {
        let x = x_of(mb);
        let y = MARGIN_T + plot_h;
        writeln!(
            s,
            r#"<line x1="{x}" y1="{y}" x2="{x}" y2="{}" stroke="black"/>"#,
            y + 5.0
        )
        .unwrap();
        writeln!(
            s,
            r#"<text x="{x}" y="{}" font-size="12" text-anchor="middle">{mb}</text>"#,
            y + 20.0
        )
        .unwrap();
    }
    writeln!(
        s,
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">"Local cache" size (MB per node)</text>"#,
        MARGIN_L + plot_w / 2.0,
        H - 22.0
    )
    .unwrap();

    // Y ticks (5 gridlines).
    for i in 0..=5 {
        let v = y_max / 5.0 * i as f64;
        let y = y_of(v);
        writeln!(
            s,
            r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            MARGIN_L + plot_w
        )
        .unwrap();
        writeln!(
            s,
            r#"<text x="{}" y="{}" font-size="12" text-anchor="end">{}</text>"#,
            MARGIN_L - 8.0,
            y + 4.0,
            fmt_value(exp.metric, v)
        )
        .unwrap();
    }
    let y_label = match exp.metric {
        Metric::AvgReadMs => "Average read time (ms)",
        Metric::DiskAccesses => "Disk accesses",
        Metric::WritesPerBlock => "Disk writes per written block",
    };
    writeln!(
        s,
        r#"<text x="20" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 20 {})">{y_label}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    )
    .unwrap();

    // Series.
    for (i, algo) in algos.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let points: Vec<(f64, f64)> = cache_mbs
            .iter()
            .filter_map(|&mb| value_of(algo, mb).map(|v| (x_of(mb), y_of(v))))
            .collect();
        if points.is_empty() {
            continue;
        }
        let path: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        )
        .unwrap();
        for (x, y) in &points {
            writeln!(
                s,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="3.2" fill="{color}"/>"#
            )
            .unwrap();
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + i as f64 * 20.0;
        let lx = MARGIN_L + plot_w + 18.0;
        writeln!(
            s,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 22.0
        )
        .unwrap();
        writeln!(
            s,
            r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            xml_escape(algo)
        )
        .unwrap();
    }

    s.push_str("</svg>\n");
    s
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{experiment, run_grid, Scale};

    #[test]
    fn svg_is_well_formed_and_contains_every_series() {
        let exp = experiment("fig4").unwrap();
        let cells = run_grid(exp, Scale::Small, 7, &[1, 4], 4);
        let svg = render_svg(exp, &cells, &[1, 4]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline per algorithm (7 for read-time figures).
        assert_eq!(svg.matches("<polyline").count(), 7);
        assert!(svg.contains("Ln_Agr_IS_PPM:1"));
        assert!(svg.contains("Average read time"));
        // Balanced open/close tags for the container.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn disk_figures_use_the_accesses_axis_label() {
        let exp = experiment("fig10").unwrap();
        let cells = run_grid(exp, Scale::Small, 7, &[1, 4], 4);
        let svg = render_svg(exp, &cells, &[1, 4]);
        assert!(svg.contains("Disk accesses"));
        assert_eq!(svg.matches("<polyline").count(), 4);
    }

    #[test]
    fn value_formatting_scales_units() {
        assert_eq!(fmt_value(Metric::DiskAccesses, 2_500_000.0), "2.5M");
        assert_eq!(fmt_value(Metric::DiskAccesses, 42_000.0), "42k");
        assert_eq!(fmt_value(Metric::DiskAccesses, 900.0), "900");
        assert_eq!(fmt_value(Metric::AvgReadMs, 1.234), "1.23");
        assert_eq!(fmt_value(Metric::WritesPerBlock, 7.62), "7.6");
    }

    #[test]
    fn escape_handles_markup() {
        assert_eq!(xml_escape("a<b & c>d"), "a&lt;b &amp; c&gt;d");
    }
}
