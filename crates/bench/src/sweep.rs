//! Deterministic parallel sweep runner.
//!
//! Every experiment grid is a list of independent simulations, so the
//! sweep layer is one primitive: [`par_map`], a `std::thread::scope`
//! worker pool over a job slice. Workers claim job *indices* from a
//! shared atomic counter and write each result into the slot of its
//! job, so the output order — and therefore every byte a caller
//! prints from it — is the job order, independent of worker count and
//! OS scheduling. The CI gate byte-diffs a 1-worker against an
//! N-worker ablation run to keep that contract honest.
//!
//! Simulations themselves are single-threaded and deterministic;
//! parallelism here only overlaps *independent* runs, which is why no
//! result can depend on how the pool interleaved them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `jobs` on `workers` threads, preserving job order.
///
/// `workers` is clamped to `1..=jobs.len()`; with one worker this
/// degenerates to a plain serial loop (same results by construction).
/// Panics in `f` propagate out of the scope, failing the sweep loudly
/// rather than dropping cells.
pub fn par_map<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    // One slot per job: slot i only ever belongs to the worker that
    // claimed index i, so the Mutex is uncontended — it exists to make
    // the slot writable through the shared borrow the scope needs.
    let slots: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = f(&jobs[i]);
                *slots[i].lock().expect("sweep slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed job produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            assert_eq!(par_map(&jobs, workers, |&j| j * j), expect);
        }
    }

    #[test]
    fn empty_jobs_and_zero_workers_are_fine() {
        assert_eq!(par_map::<u64, u64, _>(&[], 0, |&j| j), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], 0, |&j| j + 1), vec![8]);
    }
}
