//! Minimal wall-clock timing harness for the `harness = false`
//! benchmarks. The repo builds offline with no external dependencies,
//! so instead of Criterion the benches time closures directly with
//! [`std::time::Instant`] and print a one-line summary per case.

use std::time::{Duration, Instant};

/// Time `f` over `iters` iterations (after one untimed warm-up run)
/// and print `name`, the per-iteration mean and the minimum. Returns
/// the mean so callers can assert on it if they want.
pub fn time_case<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Duration {
    let iters = iters.max(1);
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters;
    println!(
        "{name:<28} {:>12} mean  {:>12} min  ({iters} iters)",
        format_duration(mean),
        format_duration(min)
    );
    mean
}

/// Render a duration with a unit that keeps 3–4 significant digits.
fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_case_runs_and_returns_mean() {
        let mut calls = 0u32;
        let mean = time_case("noop", 3, || calls += 1);
        assert_eq!(calls, 4, "one warm-up plus three timed iterations");
        assert!(mean < Duration::from_secs(1));
    }

    #[test]
    fn durations_format_with_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(format_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(format_duration(Duration::from_secs(50)), "50.00 s");
    }
}
