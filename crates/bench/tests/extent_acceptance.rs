//! Pins the extent ablation's headline result in the exact shape the
//! `experiments extent` command runs (small scale, seed 42, 4 disks,
//! CHARISMA on the PM with PAFS and 4 MB caches): with 4-block
//! extents, extent-granular issue beats per-block issue for
//! Ln_Agr_IS_PPM:3, and degenerates exactly to per-block issue for a
//! non-aggressive algorithm.

use std::sync::Arc;

use bench::{build_config, build_workload, Scale, WorkloadKind};
use lap_core::{run_simulation_shared, CacheSystem, PrefetchGranularity};
use prefetch::PrefetchConfig;

fn run(pf: PrefetchConfig, extent_blocks: u64, gran: PrefetchGranularity) -> lap_core::SimReport {
    let wl = Arc::new(build_workload(WorkloadKind::CharismaPm, Scale::Small, 42));
    let mut cfg = build_config(
        WorkloadKind::CharismaPm,
        Scale::Small,
        CacheSystem::Pafs,
        pf,
        4,
    );
    cfg.machine = cfg.machine.with_geometry_extent(extent_blocks);
    cfg.machine.prefetch_granularity = gran;
    run_simulation_shared(cfg, wl)
}

#[test]
fn extent_mode_beats_block_mode_in_the_ablation_shape() {
    let pf = PrefetchConfig::ln_agr_is_ppm(3);
    let blk = run(pf, 4, PrefetchGranularity::Block);
    let ext = run(pf, 4, PrefetchGranularity::Extent);
    assert!(
        ext.avg_read_ms < blk.avg_read_ms,
        "Ln_Agr_IS_PPM:3 at extent_blocks=4: extent mode ({:.3} ms) did not beat block \
         mode ({:.3} ms)",
        ext.avg_read_ms,
        blk.avg_read_ms
    );
    assert!(ext.prefetch.blocks_per_issue() > 1.0);
}

#[test]
fn extent_mode_is_inert_for_non_aggressive_algorithms() {
    // OBA prefetches but is not aggressive, so the extent granularity
    // switch must change nothing at all.
    let pf = PrefetchConfig::oba();
    let blk = run(pf, 4, PrefetchGranularity::Block);
    let ext = run(pf, 4, PrefetchGranularity::Extent);
    assert_eq!(
        (blk.avg_read_ms.to_bits(), blk.reads, blk.disk_accesses()),
        (ext.avg_read_ms.to_bits(), ext.reads, ext.disk_accesses()),
    );
    assert_eq!(ext.prefetch.extent_batches, 0);
}
