//! Acceptance tests for the predictor zoo.
//!
//! 1. **Registry equivalence**: building the paper's configurations
//!    through the `PredictorSpec` registry is *bit-identical* to the
//!    pre-registry constructors on every BENCH.json seed scenario —
//!    the predictor extraction must be invisible to the simulator.
//! 2. **The miner earns its keep**: a hand-built paired-jump workload
//!    on which IS_PPM:1's interval contexts are ambiguous (the MRU
//!    edge alternately picks the wrong jump) but MITHRIL's block-keyed
//!    association table is exact — the miner covers reads IS_PPM
//!    misses.
//! 3. The `experiments --predictor` flag rejects bad specs with the
//!    registry listing on stderr and a non-zero exit.

use std::process::Command;
use std::sync::Arc;

use bench::{build_config, build_workload, Scale, WorkloadKind};
use ioworkload::{FileId, FileMeta, NodeId, Op, ProcId, ProcessTrace, Workload};
use lap_core::{run_simulation, run_simulation_shared, CacheSystem, SimConfig, SimReport};
use lapobs::MetricValue;
use prefetch::{AggressiveLimit, PredictorSpec, PrefetchConfig};
use simkit::SimDuration;

fn counter(r: &SimReport, key: &str) -> u64 {
    match r.obs.get(key) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// One BENCH.json seed scenario: (name, workload, system, spec,
/// aggressive limit, cache MB, snapshot read ms, reads, disk accesses).
type Scenario = (
    &'static str,
    WorkloadKind,
    CacheSystem,
    &'static str,
    Option<AggressiveLimit>,
    u64,
    f64,
    u64,
    u64,
);

/// The BENCH.json seed scenarios, with the registry spelling of each
/// predictor and the snapshot values (small scale, seed 42) the
/// registry-built configuration must reproduce bit-for-bit.
#[test]
fn registry_built_configs_match_bench_snapshot_bit_for_bit() {
    let scenarios: [Scenario; 4] = [
        (
            "charisma/pafs/ln_agr_is_ppm:1/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            "is_ppm:1",
            Some(AggressiveLimit::One),
            4,
            3.723444186666665,
            825,
            997,
        ),
        (
            "charisma/pafs/np/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            "np",
            None,
            4,
            6.631016819393927,
            825,
            849,
        ),
        (
            "charisma/pafs/oba/4MB",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            "oba",
            None,
            4,
            6.371558498181823,
            825,
            852,
        ),
        (
            "sprite/xfs/ln_agr_is_ppm:1/2MB",
            WorkloadKind::SpriteNow,
            CacheSystem::Xfs,
            "is_ppm:1",
            Some(AggressiveLimit::One),
            2,
            1.5799515698113176,
            1060,
            916,
        ),
    ];
    for (name, kind, system, spec, aggressive, mb, read_ms, reads, disk) in scenarios {
        let parsed = PredictorSpec::parse(spec).expect("seed spec parses");
        let pf = PrefetchConfig::with_predictor(parsed.kind, aggressive);
        let wl = build_workload(kind, Scale::Small, 42);
        let cfg = build_config(kind, Scale::Small, system, pf, mb);
        let r = run_simulation(cfg, wl);
        assert_eq!(
            (r.avg_read_ms.to_bits(), r.reads, r.disk_accesses()),
            (read_ms.to_bits(), reads, disk),
            "{name}: registry-built config diverged from BENCH.json \
             (got {} ms / {} reads / {} disk)",
            r.avg_read_ms,
            r.reads,
            r.disk_accesses()
        );
    }
}

const BLOCK: u64 = 8192;

/// A paired-jump loop: each iteration reads blocks `j, j+1, 48+j,
/// 49+j` for even `j`, then wraps. The interval stream is `+1, +47,
/// +1, -47, ...`, so IS_PPM:1's `(+1, 1)` context alternately leads to
/// `+47` and `-47` — the MRU edge is wrong on every cross-group jump.
/// Block-keyed predictors see nothing ambiguous: each block has one
/// dominant successor set.
fn paired_jump_workload(iterations: usize) -> Workload {
    let mut ops = Vec::new();
    for _ in 0..iterations {
        for j in (0..24u64).step_by(2) {
            for b in [j, j + 1, 48 + j, 49 + j] {
                ops.push(Op::Read {
                    file: FileId(0),
                    offset: b * BLOCK,
                    len: BLOCK,
                });
                // Compute between reads gives prefetches time to land.
                ops.push(Op::Compute(SimDuration::from_millis(2)));
            }
        }
    }
    let wl = Workload {
        name: "paired-jump".into(),
        block_size: BLOCK,
        nodes: 1,
        files: vec![FileMeta {
            id: FileId(0),
            size: 72 * BLOCK,
        }],
        processes: vec![ProcessTrace {
            proc: ProcId(0),
            node: NodeId(0),
            ops,
        }],
    };
    wl.validate();
    wl
}

fn run_paired_jump(spec: &str) -> SimReport {
    let parsed = PredictorSpec::parse(spec).expect("spec parses");
    let pf = PrefetchConfig::with_predictor(parsed.kind, Some(AggressiveLimit::One));
    let mut cfg = SimConfig::pm(CacheSystem::LocalOnly, pf, 1);
    cfg.machine.nodes = 1;
    cfg.machine.disks = 1;
    // 16 cached blocks against a 48-block cyclic working set: every
    // re-read block has been evicted, so prefetching is the only way
    // to cover a read.
    cfg.cache_bytes_per_node = 16 * BLOCK;
    run_simulation_shared(cfg, Arc::new(paired_jump_workload(25)))
}

#[test]
fn mithril_covers_reads_isppm_misses_on_paired_jumps() {
    let isppm = run_paired_jump("is_ppm:1");
    let mithril = run_paired_jump("mithril");

    let covered = |r: &SimReport| {
        counter(r, "span.outcome_covered_by_prefetch") + counter(r, "span.outcome_late_prefetch")
    };
    // Shown with --nocapture; the EXPERIMENTS.md paired-jump numbers
    // are regenerated from this line.
    eprintln!(
        "paired-jump: mithril {:.3} ms, {}/{} covered (mined {}) | is_ppm:1 {:.3} ms, {}/{} covered",
        mithril.avg_read_ms,
        covered(&mithril),
        mithril.reads,
        counter(&mithril, "pred.mined"),
        isppm.avg_read_ms,
        covered(&isppm),
        isppm.reads,
    );
    assert!(
        counter(&mithril, "pred.mined") > 0,
        "the miner never mined an association"
    );
    assert!(
        covered(&mithril) > covered(&isppm),
        "MITHRIL covered {} reads, IS_PPM:1 covered {} — the miner \
         should win on block-keyed paired jumps",
        covered(&mithril),
        covered(&isppm)
    );
    assert!(
        mithril.avg_read_ms < isppm.avg_read_ms,
        "MITHRIL {:.3} ms vs IS_PPM:1 {:.3} ms",
        mithril.avg_read_ms,
        isppm.avg_read_ms
    );
}

#[test]
fn experiments_rejects_bad_predictor_spec_with_registry_listing() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["predictors", "--predictor", "wizardry:9"])
        .output()
        .expect("run experiments");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown predictor spec"), "stderr: {err}");
    for name in ["np", "oba", "is_ppm", "is_ppm_backoff", "markov", "mithril"] {
        assert!(err.contains(name), "registry listing misses {name}: {err}");
    }
    assert!(
        err.contains("mithril:32,3+oba"),
        "listing should show an example spec: {err}"
    );
}

#[test]
fn experiments_accepts_registry_spec_filter() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["predictors", "--scale", "small", "--predictor", "is_ppm:1"])
        .output()
        .expect("run experiments");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("is_ppm:1"), "stdout: {stdout}");
    assert!(
        !stdout.contains("markov"),
        "--predictor should filter the grid: {stdout}"
    );
}
