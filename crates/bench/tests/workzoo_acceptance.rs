//! Acceptance gates for the workload zoo.
//!
//! Three contracts:
//!
//! 1. **Bit-identity** — routing the seed workloads through the
//!    `WorkloadSpec` registry must reproduce the direct-generation
//!    results exactly (`f64::to_bits`), for all four BENCH.json seed
//!    scenarios. The registry is plumbing, not a new model.
//! 2. **The zoo bites** — on a cache-overflow zoo workload a
//!    history-replay predictor (the MITHRIL miner) must cover real
//!    reads *and* beat the no-prefetch baseline. On the stock
//!    CHARISMA/Sprite pair this is impossible (nothing hot ever
//!    leaves the cache), which is why the zoo exists.
//! 3. **The verdict is data, not narrative** — the Ln_Agr-vs-Agr
//!    ordering on the zoo is pinned: it *flips* on the overflow
//!    web/mltrain workloads and is *preserved* on db.

use bench::{build_config, build_workload, Scale, WorkloadKind};
use lap_core::{run_simulation, CacheSystem, SimConfig, SimReport};
use lapobs::MetricValue;
use prefetch::{AggressiveLimit, PredictorSpec, PrefetchConfig};
use workzoo::WorkloadSpec;

fn counter(r: &SimReport, key: &str) -> u64 {
    match r.obs.get(key) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// Run a zoo spec at 1 MB per node on PAFS/NOW (the zoo ablation's
/// machine), fitted to the workload.
fn run_zoo(spec: &str, pf: PrefetchConfig, seed: u64) -> SimReport {
    let wl = WorkloadSpec::parse(spec)
        .expect("zoo spec parses")
        .build(seed)
        .expect("zoo spec builds");
    let mut cfg = SimConfig::now(CacheSystem::Pafs, pf, 1);
    cfg.fit_to_workload(&wl);
    run_simulation(cfg, wl)
}

/// Contract 1: the four BENCH.json seed scenarios, built through the
/// registry, are bit-identical to direct generation — workload text,
/// read time (`to_bits`), read count, and disk accesses.
#[test]
fn registry_path_is_bit_identical_on_the_bench_scenarios() {
    let scenarios: [(&str, WorkloadKind, CacheSystem, PrefetchConfig, u64); 4] = [
        (
            "charisma",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm(1),
            4,
        ),
        (
            "charisma",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::np(),
            4,
        ),
        (
            "charisma",
            WorkloadKind::CharismaPm,
            CacheSystem::Pafs,
            PrefetchConfig::oba(),
            4,
        ),
        (
            "sprite",
            WorkloadKind::SpriteNow,
            CacheSystem::Xfs,
            PrefetchConfig::ln_agr_is_ppm(1),
            2,
        ),
    ];
    for (spec, kind, system, pf, mb) in scenarios {
        let direct = build_workload(kind, Scale::Small, 42);
        let via_registry = WorkloadSpec::parse_cli(spec, "small")
            .expect("builtin spec parses")
            .build(42)
            .expect("builtin spec builds");
        assert_eq!(
            direct.to_text(),
            via_registry.to_text(),
            "{spec}: registry-built workload differs from direct generation"
        );
        let cfg = build_config(kind, Scale::Small, system, pf, mb);
        let a = run_simulation(cfg.clone(), direct);
        let b = run_simulation(cfg, via_registry);
        assert_eq!(
            a.avg_read_ms.to_bits(),
            b.avg_read_ms.to_bits(),
            "{spec}/{}: read time not bit-identical via the registry",
            pf.paper_name()
        );
        assert_eq!((a.reads, a.disk_accesses()), (b.reads, b.disk_accesses()));
    }
}

/// Contract 2: on the mltrain overflow workload (16 MB dataset over a
/// 4 MB aggregate cache, epoch-replayed shuffled order) the MITHRIL
/// miner under the aggressive driver covers reads and beats NP.
#[test]
fn mithril_covers_and_beats_np_on_the_overflow_zoo() {
    const SPEC: &str = "mltrain:4,2048";
    let np = run_zoo(SPEC, PrefetchConfig::np(), 42);
    let mith = PredictorSpec::parse("mithril").expect("mithril spec");
    let agr = run_zoo(
        SPEC,
        PrefetchConfig::with_predictor(mith.kind, Some(AggressiveLimit::Unlimited)),
        42,
    );
    assert!(
        counter(&agr, "pred.mined") > 0,
        "MITHRIL mined nothing on {SPEC}"
    );
    let covered = counter(&agr, "span.outcome_covered_by_prefetch");
    assert!(
        covered > 0,
        "MITHRIL covered zero reads on {SPEC} — the zoo is degenerate again"
    );
    assert!(
        agr.avg_read_ms < np.avg_read_ms,
        "MITHRIL ({:.3} ms) did not beat NP ({:.3} ms) on {SPEC}",
        agr.avg_read_ms,
        np.avg_read_ms
    );
}

/// Contract 3: the linear-limit verdict, asserted per workload. All
/// simulations are deterministic, so these are exact orderings, not
/// statistical claims:
///
/// * `web` and `mltrain` **flip** the paper's ordering — once the
///   working set overflows the aggregate cache and file-to-file jumps
///   (web) or shuffled replays (mltrain) carry the traffic, unlimited
///   aggressiveness beats the one-block-per-file limit;
/// * `db` **preserves** it — long scans over a table far larger than
///   the cache are exactly the regime the paper's limit was built
///   for, and the unlimited walk's wasted blocks cost real disk time.
#[test]
fn linear_limit_verdict_is_pinned_per_zoo_workload() {
    let pair = |spec: &str| {
        let ln = run_zoo(spec, PrefetchConfig::ln_agr_is_ppm(1), 42);
        let agr = run_zoo(
            spec,
            PrefetchConfig {
                aggressive: Some(AggressiveLimit::Unlimited),
                ..PrefetchConfig::ln_agr_is_ppm(1)
            },
            42,
        );
        (ln.avg_read_ms, agr.avg_read_ms)
    };

    let (ln, agr) = pair("web:64,0.8,256");
    assert!(
        agr < ln,
        "web: expected a flip, got Ln {ln:.3} vs Agr {agr:.3}"
    );

    let (ln, agr) = pair("mltrain:4,2048");
    assert!(
        agr < ln,
        "mltrain: expected a flip, got Ln {ln:.3} vs Agr {agr:.3}"
    );

    let (ln, agr) = pair("db:0.3,4096");
    assert!(
        ln < agr,
        "db: expected paper ordering, got Ln {ln:.3} vs Agr {agr:.3}"
    );
}

/// Satellite 1: a bad `--workload` must exit non-zero and print the
/// full registry menu on stderr.
#[test]
fn experiments_rejects_unknown_workload_with_the_menu() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["zoo", "--workload", "netflix:9000"])
        .output()
        .expect("run experiments");
    assert!(!out.status.success(), "bad --workload must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for name in [
        "charisma", "sprite", "web", "db", "mltrain", "strace", "blktrace",
    ] {
        assert!(
            stderr.contains(name),
            "registry menu missing {name:?} in:\n{stderr}"
        );
    }
    assert!(
        stderr.contains("netflix:9000"),
        "menu should echo the bad spec"
    );
}
