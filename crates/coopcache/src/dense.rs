//! Dense cache-metadata structures (DESIGN.md §14).
//!
//! The classic layout ([`LruPool`]: `HashMap` + `BTreeSet`, and the
//! xFS holder registry: `HashMap<BlockId, BTreeSet<u32>>`) pays a
//! SipHash plus tree rebalance per probe — the dominant simulator cost
//! on the seed scenarios (~60% of the subsystem counters). This module
//! replaces both with open-addressed tables and an intrusive LRU list:
//!
//! * [`DensePool`] — a slab of block slots addressed through a
//!   power-of-two, linear-probed index table (backward-shift deletion,
//!   no tombstones), with recency as an intrusive doubly-linked list
//!   through the slots. Every operation the classic pool offers, same
//!   observable behaviour (victim order, sweep output, returned
//!   metadata), O(1) amortized instead of O(log n).
//! * [`HolderTable`] — the xFS block→holders registry on the same
//!   open-addressed scheme, holder sets kept as sorted `Vec<u32>` so
//!   "first up holder" and invalidation order match the `BTreeSet`
//!   iteration order of the classic layout exactly.
//!
//! Both layouts stay selectable ([`MetaLayout`]); the classic one is
//! the reference implementation the equivalence tests drive against.

use std::collections::{BTreeSet, HashMap};

use ioworkload::{BlockId, NodeId};

use crate::lru::{LruPool, Meta, Replacement};

/// Which metadata layout the cooperative caches use. Results are
/// bit-identical either way; only simulator speed differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetaLayout {
    /// `HashMap` + `BTreeSet` — the reference implementation.
    Classic,
    /// Open-addressed tables + intrusive LRU list (DESIGN.md §14).
    Dense,
}

impl MetaLayout {
    /// Stable lowercase name (CLI/config spelling).
    pub fn name(self) -> &'static str {
        match self {
            MetaLayout::Classic => "classic",
            MetaLayout::Dense => "dense",
        }
    }

    /// Parse the CLI/config spelling produced by [`name`].
    ///
    /// [`name`]: MetaLayout::name
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "classic" => Some(MetaLayout::Classic),
            "dense" => Some(MetaLayout::Dense),
            _ => None,
        }
    }
}

/// Sentinel for "no slot" in the index table and the intrusive list.
const NIL: u32 = u32::MAX;

/// Per-file presence bitmaps — the "`Vec`-backed presence map keyed by
/// block index" side of the dense layout. One bit per block, outer
/// index the (dense, workload-assigned) file id, maintained alongside
/// the owning table's membership. Its payoff is the *range* residency
/// query [`run_len`](Self::run_len): the prefetch walk's rescan of
/// already-resident data becomes a word scan instead of one
/// point probe per block.
pub(crate) struct PresenceMap {
    files: Vec<Vec<u64>>,
}

impl PresenceMap {
    pub(crate) fn new() -> Self {
        PresenceMap { files: Vec::new() }
    }

    /// Mark `block` present (idempotent).
    #[inline]
    pub(crate) fn set(&mut self, block: BlockId) {
        let f = block.file.0 as usize;
        if f >= self.files.len() {
            self.files.resize_with(f + 1, Vec::new);
        }
        let bits = &mut self.files[f];
        let w = (block.index / 64) as usize;
        if w >= bits.len() {
            bits.resize(w + 1, 0);
        }
        bits[w] |= 1u64 << (block.index % 64);
    }

    /// Mark `block` absent (idempotent).
    #[inline]
    pub(crate) fn clear(&mut self, block: BlockId) {
        if let Some(bits) = self.files.get_mut(block.file.0 as usize) {
            if let Some(word) = bits.get_mut((block.index / 64) as usize) {
                *word &= !(1u64 << (block.index % 64));
            }
        }
    }

    /// Number of consecutive present blocks starting at `block`
    /// (ascending index, same file), capped at `max` — one word scan,
    /// not `max` point lookups.
    pub(crate) fn run_len(&self, block: BlockId, max: u32) -> u32 {
        let Some(bits) = self.files.get(block.file.0 as usize) else {
            return 0;
        };
        let mut n = 0u32;
        let mut idx = block.index;
        while n < max {
            let word = match bits.get((idx / 64) as usize) {
                Some(&w) => w,
                None => 0,
            };
            let bit = (idx % 64) as u32;
            let avail = 64 - bit;
            // Consecutive ones from `bit` upward within this word.
            let ones = (!(word >> bit)).trailing_zeros().min(avail);
            let take = ones.min(max - n);
            n += take;
            idx += u64::from(take);
            if ones < avail {
                break; // a zero bit inside the word ends the run
            }
        }
        n
    }
}

/// Mix a block id into a table hash (splitmix64 finalizer — cheap,
/// deterministic, and well-distributed for the dense file/index pairs
/// the workloads produce).
#[inline]
fn hash_block(b: BlockId) -> u64 {
    let mut x = ((b.file.0 as u64) << 40) ^ b.index;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One index-table entry: the low 32 hash bits of the key (tag) packed
/// with the slab slot it points at. Keeping the tag *inline* is what
/// makes large tables fast: a probe step compares one in-cacheline
/// word and only dereferences the (DRAM-cold) slab on a tag match —
/// without it, every step of every chain pays a random slab read just
/// to compare keys. Storing the *low* bits (the ones the bucket index
/// is drawn from) also lets backward-shift deletion and rehashing
/// recompute an entry's home bucket as `tag & mask` with no slab
/// access, for any power-of-two table up to 2^32.
#[derive(Clone, Copy, PartialEq, Eq)]
struct TableEntry(u64);

impl TableEntry {
    const EMPTY: TableEntry = TableEntry(u64::MAX);

    #[inline]
    fn new(hash: u64, slot: u32) -> Self {
        debug_assert_ne!(slot, NIL);
        TableEntry((hash << 32) | u64::from(slot))
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.0 as u32 == NIL
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    /// Low 32 bits of the key's hash.
    #[inline]
    fn tag(self) -> u64 {
        self.0 >> 32
    }

    /// Home bucket in a table of `mask + 1` (≤ 2^32) buckets.
    #[inline]
    fn home(self, mask: usize) -> usize {
        self.tag() as usize & mask
    }
}

/// One resident block in the slab: key, metadata, and the intrusive
/// recency list links (`prev` is toward LRU, `next` toward MRU).
struct Slot {
    block: BlockId,
    meta: Meta,
    prev: u32,
    next: u32,
}

/// An LRU-ordered pool of block copies with O(1) amortized operations
/// — the dense replacement for [`LruPool`], same observable semantics.
pub(crate) struct DensePool {
    /// Open-addressed index: hash tag + slab slot per bucket (or
    /// [`TableEntry::EMPTY`]). Length is a power of two, load factor
    /// kept ≤ 1/2.
    table: Vec<TableEntry>,
    /// Mask = table.len() - 1.
    mask: usize,
    slots: Vec<Slot>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Live entries.
    len: usize,
    /// LRU end of the recency list (first victim).
    head: u32,
    /// MRU end of the recency list.
    tail: u32,
    policy: Replacement,
    /// Presence bitmaps mirroring the table's membership exactly, for
    /// the range residency query [`resident_run`](Self::resident_run).
    presence: PresenceMap,
}

impl DensePool {
    pub(crate) fn with_policy(policy: Replacement) -> Self {
        let cap = 64usize;
        DensePool {
            table: vec![TableEntry::EMPTY; cap],
            mask: cap - 1,
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            head: NIL,
            tail: NIL,
            policy,
            presence: PresenceMap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Index into `table` holding `block`'s slot, if resident.
    #[inline]
    fn find(&self, block: BlockId) -> Option<usize> {
        let h = hash_block(block);
        let tag = h & 0xFFFF_FFFF;
        let mut i = h as usize & self.mask;
        loop {
            let e = self.table[i];
            if e.is_empty() {
                return None;
            }
            if e.tag() == tag && self.slots[e.slot() as usize].block == block {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    pub(crate) fn contains(&self, block: BlockId) -> bool {
        self.find(block).is_some()
    }

    /// Consecutive resident blocks starting at `block`, capped at
    /// `max` — answered from the presence bitmaps in O(max/64) words.
    pub(crate) fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        self.presence.run_len(block, max)
    }

    pub(crate) fn get(&self, block: BlockId) -> Option<&Meta> {
        self.find(block)
            .map(|i| &self.slots[self.table[i].slot() as usize].meta)
    }

    /// Unlink slot `s` from the recency list.
    fn unlink(&mut self, s: u32) {
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Append slot `s` at the MRU end.
    fn push_mru(&mut self, s: u32) {
        self.slots[s as usize].prev = self.tail;
        self.slots[s as usize].next = NIL;
        if self.tail == NIL {
            self.head = s;
        } else {
            self.slots[self.tail as usize].next = s;
        }
        self.tail = s;
    }

    /// See [`LruPool::touch`].
    pub(crate) fn touch(&mut self, block: BlockId, write: bool) -> Option<Meta> {
        self.touch_inner(block, write, true)
    }

    /// See [`LruPool::refresh`].
    pub(crate) fn refresh(&mut self, block: BlockId, dirty: bool, mark_used: bool) -> Option<Meta> {
        self.touch_inner(block, dirty, mark_used)
    }

    fn touch_inner(&mut self, block: BlockId, write: bool, mark_used: bool) -> Option<Meta> {
        let i = self.find(block)?;
        let s = self.table[i].slot();
        let meta = &mut self.slots[s as usize].meta;
        let before = *meta;
        if mark_used {
            meta.used = true;
            // A referenced block earns fresh recirculation chances
            // (Dahlin's N-chance counts forwards since last reference).
            meta.recirc = 0;
        }
        if write {
            meta.dirty = true;
        }
        if self.policy == Replacement::Lru {
            self.unlink(s);
            self.push_mru(s);
        }
        Some(before)
    }

    /// Insert (or overwrite) a block copy at MRU position — same
    /// contract as [`LruPool::insert`]: an overwrite re-MRUs even
    /// under FIFO, because the classic pool reassigns the sequence
    /// number on every insert.
    pub(crate) fn insert(&mut self, block: BlockId, meta: Meta) {
        if let Some(i) = self.find(block) {
            let s = self.table[i].slot();
            self.slots[s as usize].meta = meta;
            self.unlink(s);
            self.push_mru(s);
            return;
        }
        if (self.len + 1) * 2 > self.table.len() {
            self.grow();
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Slot {
                    block,
                    meta,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    block,
                    meta,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        // Claim the first empty probe position.
        let h = hash_block(block);
        let mut i = h as usize & self.mask;
        while !self.table[i].is_empty() {
            i = (i + 1) & self.mask;
        }
        self.table[i] = TableEntry::new(h, s);
        self.len += 1;
        self.presence.set(block);
        self.push_mru(s);
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        assert!(cap <= 1 << 32, "tag bits cover tables up to 2^32");
        self.mask = cap - 1;
        self.table = vec![TableEntry::EMPTY; cap];
        // Rehash every live slot (walk the recency list so freed slab
        // entries are skipped without extra bookkeeping).
        let mut s = self.head;
        while s != NIL {
            let h = hash_block(self.slots[s as usize].block);
            let mut i = h as usize & self.mask;
            while !self.table[i].is_empty() {
                i = (i + 1) & self.mask;
            }
            self.table[i] = TableEntry::new(h, s);
            s = self.slots[s as usize].next;
        }
    }

    /// Delete the entry at table index `i`, backward-shifting the
    /// probe chain so no tombstones are needed.
    fn delete_at(&mut self, i: usize) {
        let s = self.table[i].slot();
        self.presence.clear(self.slots[s as usize].block);
        self.unlink(s);
        // Neutralize the flags the whole-pool scans look at, so
        // `sweep_dirty` / `count_unused_prefetched` can walk the slab
        // sequentially without a liveness check.
        self.slots[s as usize].meta.dirty = false;
        self.slots[s as usize].meta.prefetched = false;
        self.free.push(s);
        self.len -= 1;
        // Backward-shift: re-place every follower of the probe chain.
        // Home buckets come from the inline tags — no slab reads here.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        while !self.table[j].is_empty() {
            let home = self.table[j].home(self.mask);
            // Move table[j] into the hole unless its home position lies
            // (cyclically) after the hole — then it must stay put.
            let stays = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !stays {
                self.table[hole] = self.table[j];
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.table[hole] = TableEntry::EMPTY;
    }

    /// See [`LruPool::remove`].
    pub(crate) fn remove(&mut self, block: BlockId) -> Option<Meta> {
        let i = self.find(block)?;
        let meta = self.slots[self.table[i].slot() as usize].meta;
        self.delete_at(i);
        Some(meta)
    }

    /// See [`LruPool::pop_lru`].
    pub(crate) fn pop_lru(&mut self) -> Option<(BlockId, Meta)> {
        if self.head == NIL {
            return None;
        }
        let slot = &self.slots[self.head as usize];
        let (block, meta) = (slot.block, slot.meta);
        let i = self.find(block).expect("list/table in sync");
        self.delete_at(i);
        Some((block, meta))
    }

    /// See [`LruPool::sweep_dirty`]. Walks the slab *sequentially* —
    /// not the recency list, whose pointer-chase order would cost one
    /// dependent DRAM miss per slot. Freed slots have `dirty` cleared
    /// at free time ([`delete_at`](Self::delete_at)), and the output
    /// is sorted anyway, so visit order is irrelevant.
    pub(crate) fn sweep_dirty(&mut self) -> Vec<BlockId> {
        let mut dirty = Vec::new();
        for slot in &mut self.slots {
            if slot.meta.dirty {
                slot.meta.dirty = false;
                dirty.push(slot.block);
            }
        }
        dirty.sort_unstable(); // deterministic order
        dirty
    }

    /// Visit every resident copy. Walks the recency list (not the
    /// slab) so freed slots are skipped without a liveness flag.
    pub(crate) fn for_each(&self, f: &mut dyn FnMut(BlockId, &Meta)) {
        let mut s = self.head;
        while s != NIL {
            let slot = &self.slots[s as usize];
            f(slot.block, &slot.meta);
            s = slot.next;
        }
    }

    /// See [`LruPool::count_unused_prefetched`]. Sequential slab walk;
    /// freed slots have `prefetched` cleared at free time.
    pub(crate) fn count_unused_prefetched(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.meta.prefetched && !s.meta.used)
            .count() as u64
    }
}

/// A block pool on either metadata layout — what [`PafsCache`] and
/// [`XfsCache`] actually hold. Delegation is a plain enum match so the
/// dense hot path stays free of virtual dispatch.
///
/// [`PafsCache`]: crate::PafsCache
/// [`XfsCache`]: crate::XfsCache
pub(crate) enum BlockPool {
    Classic(LruPool),
    Dense(DensePool),
}

impl BlockPool {
    pub(crate) fn with_policy(layout: MetaLayout, policy: Replacement) -> Self {
        match layout {
            MetaLayout::Classic => BlockPool::Classic(LruPool::with_policy(policy)),
            MetaLayout::Dense => BlockPool::Dense(DensePool::with_policy(policy)),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            BlockPool::Classic(p) => p.len(),
            BlockPool::Dense(p) => p.len(),
        }
    }

    pub(crate) fn contains(&self, block: BlockId) -> bool {
        match self {
            BlockPool::Classic(p) => p.contains(block),
            BlockPool::Dense(p) => p.contains(block),
        }
    }

    /// Consecutive resident blocks starting at `block`, capped at
    /// `max`. The classic layout answers by point-probing block by
    /// block (the behavioural reference); the dense layout scans its
    /// presence bitmaps.
    pub(crate) fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        match self {
            BlockPool::Classic(p) => {
                let mut n = 0;
                while n < max && p.contains(BlockId::new(block.file, block.index + u64::from(n))) {
                    n += 1;
                }
                n
            }
            BlockPool::Dense(p) => p.resident_run(block, max),
        }
    }

    pub(crate) fn get(&self, block: BlockId) -> Option<&Meta> {
        match self {
            BlockPool::Classic(p) => p.get(block),
            BlockPool::Dense(p) => p.get(block),
        }
    }

    pub(crate) fn touch(&mut self, block: BlockId, write: bool) -> Option<Meta> {
        match self {
            BlockPool::Classic(p) => p.touch(block, write),
            BlockPool::Dense(p) => p.touch(block, write),
        }
    }

    pub(crate) fn refresh(&mut self, block: BlockId, dirty: bool, mark_used: bool) -> Option<Meta> {
        match self {
            BlockPool::Classic(p) => p.refresh(block, dirty, mark_used),
            BlockPool::Dense(p) => p.refresh(block, dirty, mark_used),
        }
    }

    pub(crate) fn insert(&mut self, block: BlockId, meta: Meta) {
        match self {
            BlockPool::Classic(p) => p.insert(block, meta),
            BlockPool::Dense(p) => p.insert(block, meta),
        }
    }

    pub(crate) fn remove(&mut self, block: BlockId) -> Option<Meta> {
        match self {
            BlockPool::Classic(p) => p.remove(block),
            BlockPool::Dense(p) => p.remove(block),
        }
    }

    pub(crate) fn pop_lru(&mut self) -> Option<(BlockId, Meta)> {
        match self {
            BlockPool::Classic(p) => p.pop_lru(),
            BlockPool::Dense(p) => p.pop_lru(),
        }
    }

    pub(crate) fn sweep_dirty(&mut self) -> Vec<BlockId> {
        match self {
            BlockPool::Classic(p) => p.sweep_dirty(),
            BlockPool::Dense(p) => p.sweep_dirty(),
        }
    }

    pub(crate) fn count_unused_prefetched(&self) -> u64 {
        match self {
            BlockPool::Classic(p) => p.count_unused_prefetched(),
            BlockPool::Dense(p) => p.count_unused_prefetched(),
        }
    }

    /// Visit every resident copy (arbitrary order).
    pub(crate) fn for_each(&self, f: &mut dyn FnMut(BlockId, &Meta)) {
        match self {
            BlockPool::Classic(p) => p.for_each(f),
            BlockPool::Dense(p) => p.for_each(f),
        }
    }
}

/// The xFS block→holders registry on either layout. The dense side
/// keeps each holder set as a sorted `Vec<u32>`, so holder iteration
/// order (which decides "first up holder" and invalidation order)
/// matches the classic `BTreeSet` exactly.
pub(crate) enum HolderTable {
    Classic(HashMap<BlockId, BTreeSet<u32>>),
    Dense(DenseHolders),
}

impl HolderTable {
    pub(crate) fn new(layout: MetaLayout) -> Self {
        match layout {
            MetaLayout::Classic => HolderTable::Classic(HashMap::new()),
            MetaLayout::Dense => HolderTable::Dense(DenseHolders::new()),
        }
    }

    pub(crate) fn contains_key(&self, block: BlockId) -> bool {
        match self {
            HolderTable::Classic(m) => m.contains_key(&block),
            HolderTable::Dense(m) => m.find(block).is_some(),
        }
    }

    pub(crate) fn insert(&mut self, block: BlockId, node: NodeId) {
        match self {
            HolderTable::Classic(m) => {
                m.entry(block).or_default().insert(node.0);
            }
            HolderTable::Dense(m) => m.insert(block, node.0),
        }
    }

    pub(crate) fn remove(&mut self, block: BlockId, node: NodeId) {
        match self {
            HolderTable::Classic(m) => {
                if let Some(set) = m.get_mut(&block) {
                    set.remove(&node.0);
                    if set.is_empty() {
                        m.remove(&block);
                    }
                }
            }
            HolderTable::Dense(m) => m.remove(block, node.0),
        }
    }

    /// Consecutive registered blocks starting at `block`, capped at
    /// `max` — the `contains_key` run, range-queried.
    pub(crate) fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        match self {
            HolderTable::Classic(m) => {
                let mut n = 0;
                while n < max
                    && m.contains_key(&BlockId::new(block.file, block.index + u64::from(n)))
                {
                    n += 1;
                }
                n
            }
            HolderTable::Dense(h) => h.presence.run_len(block, max),
        }
    }

    /// Lowest-numbered holder of `block` that is not in `down`.
    pub(crate) fn first_holder_up(&self, block: BlockId, down: &BTreeSet<u32>) -> Option<u32> {
        match self {
            HolderTable::Classic(m) => m
                .get(&block)
                .and_then(|s| s.iter().copied().find(|h| !down.contains(h))),
            HolderTable::Dense(m) => m
                .holders_of(block)
                .iter()
                .copied()
                .find(|h| !down.contains(h)),
        }
    }

    /// Does the registry record `node` as a holder of `block`?
    /// (Integrity checks only — not a probe-counted operation.)
    pub(crate) fn holds(&self, block: BlockId, node: u32) -> bool {
        match self {
            HolderTable::Classic(m) => m.get(&block).is_some_and(|s| s.contains(&node)),
            HolderTable::Dense(m) => m.holders_of(block).binary_search(&node).is_ok(),
        }
    }

    /// Total number of (block, holder) registrations — every copy the
    /// manager believes exists. (Integrity checks only.)
    pub(crate) fn total_registrations(&self) -> u64 {
        match self {
            HolderTable::Classic(m) => m.values().map(|s| s.len() as u64).sum(),
            // Freed slab entries keep an empty holder set, so summing
            // over the whole slab counts exactly the live registrations.
            HolderTable::Dense(m) => m.entries.iter().map(|e| e.holders.len() as u64).sum(),
        }
    }

    /// All holders of `block` except `keep`, ascending.
    pub(crate) fn holders_except(&self, block: BlockId, keep: u32) -> Vec<u32> {
        match self {
            HolderTable::Classic(m) => m
                .get(&block)
                .map(|s| s.iter().copied().filter(|&h| h != keep).collect())
                .unwrap_or_default(),
            HolderTable::Dense(m) => m
                .holders_of(block)
                .iter()
                .copied()
                .filter(|&h| h != keep)
                .collect(),
        }
    }
}

/// Open-addressed block→holder-set map (dense side of
/// [`HolderTable`]). Same linear-probe, backward-shift-delete scheme
/// as [`DensePool`].
pub(crate) struct DenseHolders {
    table: Vec<TableEntry>,
    mask: usize,
    entries: Vec<HolderEntry>,
    free: Vec<u32>,
    len: usize,
    /// Bit set while the block has at least one registered holder —
    /// mirrors `contains_key`, serves the range residency query.
    presence: PresenceMap,
}

struct HolderEntry {
    block: BlockId,
    /// Sorted ascending — mirrors `BTreeSet` iteration order.
    holders: Vec<u32>,
}

impl DenseHolders {
    fn new() -> Self {
        let cap = 64usize;
        DenseHolders {
            table: vec![TableEntry::EMPTY; cap],
            mask: cap - 1,
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
            presence: PresenceMap::new(),
        }
    }

    #[inline]
    fn find(&self, block: BlockId) -> Option<usize> {
        let h = hash_block(block);
        let tag = h & 0xFFFF_FFFF;
        let mut i = h as usize & self.mask;
        loop {
            let e = self.table[i];
            if e.is_empty() {
                return None;
            }
            if e.tag() == tag && self.entries[e.slot() as usize].block == block {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The (ascending) holder set of `block`; empty if unregistered.
    fn holders_of(&self, block: BlockId) -> &[u32] {
        match self.find(block) {
            Some(i) => &self.entries[self.table[i].slot() as usize].holders,
            None => &[],
        }
    }

    fn insert(&mut self, block: BlockId, node: u32) {
        if let Some(i) = self.find(block) {
            let holders = &mut self.entries[self.table[i].slot() as usize].holders;
            if let Err(pos) = holders.binary_search(&node) {
                holders.insert(pos, node);
            }
            return;
        }
        if (self.len + 1) * 2 > self.table.len() {
            self.grow();
        }
        let e = match self.free.pop() {
            Some(e) => {
                let entry = &mut self.entries[e as usize];
                entry.block = block;
                entry.holders.clear();
                entry.holders.push(node);
                e
            }
            None => {
                self.entries.push(HolderEntry {
                    block,
                    holders: vec![node],
                });
                (self.entries.len() - 1) as u32
            }
        };
        let h = hash_block(block);
        let mut i = h as usize & self.mask;
        while !self.table[i].is_empty() {
            i = (i + 1) & self.mask;
        }
        self.table[i] = TableEntry::new(h, e);
        self.len += 1;
        self.presence.set(block);
    }

    fn remove(&mut self, block: BlockId, node: u32) {
        let Some(i) = self.find(block) else {
            return;
        };
        let e = self.table[i].slot();
        let holders = &mut self.entries[e as usize].holders;
        if let Ok(pos) = holders.binary_search(&node) {
            holders.remove(pos);
        }
        if !holders.is_empty() {
            return;
        }
        // Last holder gone: delete the entry (backward-shift).
        self.presence.clear(block);
        self.free.push(e);
        self.len -= 1;
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        while !self.table[j].is_empty() {
            let home = self.table[j].home(self.mask);
            let stays = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !stays {
                self.table[hole] = self.table[j];
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.table[hole] = TableEntry::EMPTY;
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        assert!(cap <= 1 << 32, "tag bits cover tables up to 2^32");
        self.mask = cap - 1;
        self.table = vec![TableEntry::EMPTY; cap];
        for (e, entry) in self.entries.iter().enumerate() {
            if entry.holders.is_empty() {
                continue; // freed slab entry
            }
            let h = hash_block(entry.block);
            let mut i = h as usize & self.mask;
            while !self.table[i].is_empty() {
                i = (i + 1) & self.mask;
            }
            self.table[i] = TableEntry::new(h, e as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioworkload::FileId;

    fn b(f: u32, i: u64) -> BlockId {
        BlockId::new(FileId(f), i)
    }
    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A minimal xorshift for the equivalence drivers.
    struct TestRng(u64);
    impl TestRng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn meta_eq(a: Option<Meta>, c: Option<Meta>) -> bool {
        match (a, c) {
            (None, None) => true,
            (Some(a), Some(c)) => {
                a.owner == c.owner
                    && a.dirty == c.dirty
                    && a.prefetched == c.prefetched
                    && a.used == c.used
                    && a.recirc == c.recirc
            }
            _ => false,
        }
    }

    /// DensePool is observably equivalent to LruPool under randomized
    /// interleavings of every operation, for both policies: identical
    /// victim sequences, sweep output, lengths, and returned metadata.
    #[test]
    fn dense_pool_matches_classic_pool() {
        for (seed, policy) in [
            (1u64, Replacement::Lru),
            (2, Replacement::Lru),
            (3, Replacement::Fifo),
            (4, Replacement::Fifo),
        ] {
            let mut rng = TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let mut classic = LruPool::with_policy(policy);
            let mut dense = DensePool::with_policy(policy);
            for step in 0..6000 {
                let block = b((rng.next() % 3) as u32, rng.next() % 64);
                match rng.next() % 100 {
                    0..=34 => {
                        let meta = LruPool::fresh_meta(
                            n((rng.next() % 4) as u32),
                            rng.next().is_multiple_of(2),
                            rng.next().is_multiple_of(2),
                        );
                        classic.insert(block, meta);
                        dense.insert(block, meta);
                    }
                    35..=59 => {
                        let write = rng.next().is_multiple_of(2);
                        assert!(meta_eq(
                            classic.touch(block, write),
                            dense.touch(block, write)
                        ));
                    }
                    60..=69 => {
                        let dirty = rng.next().is_multiple_of(2);
                        let used = rng.next().is_multiple_of(2);
                        assert!(meta_eq(
                            classic.refresh(block, dirty, used),
                            dense.refresh(block, dirty, used)
                        ));
                    }
                    70..=79 => {
                        assert!(meta_eq(classic.remove(block), dense.remove(block)));
                    }
                    80..=94 => {
                        let (cv, dv) = (classic.pop_lru(), dense.pop_lru());
                        assert_eq!(cv.map(|(b, _)| b), dv.map(|(b, _)| b), "victim order");
                        assert!(meta_eq(cv.map(|(_, m)| m), dv.map(|(_, m)| m)));
                    }
                    95..=97 => {
                        assert_eq!(classic.sweep_dirty(), dense.sweep_dirty(), "step {step}");
                    }
                    _ => {
                        assert_eq!(
                            classic.count_unused_prefetched(),
                            dense.count_unused_prefetched()
                        );
                    }
                }
                assert_eq!(classic.len(), dense.len());
                assert_eq!(classic.contains(block), dense.contains(block));
                // The dense range residency query agrees with the
                // point-probe loop the classic layout would run.
                let mut expect = 0u32;
                while expect < 8
                    && classic.contains(BlockId::new(block.file, block.index + u64::from(expect)))
                {
                    expect += 1;
                }
                assert_eq!(dense.resident_run(block, 8), expect, "step {step}");
            }
            // Drain both fully: complete victim order must agree.
            loop {
                let (cv, dv) = (classic.pop_lru(), dense.pop_lru());
                assert_eq!(cv.map(|(b, _)| b), dv.map(|(b, _)| b));
                if cv.is_none() {
                    break;
                }
            }
        }
    }

    /// DenseHolders matches the classic HashMap/BTreeSet registry:
    /// same first-up holder, same except-sets, same membership.
    #[test]
    fn dense_holders_match_classic_registry() {
        let mut rng = TestRng(0xDEAD_BEEF_1234_5679);
        let mut classic = HolderTable::Classic(HashMap::new());
        let mut dense = HolderTable::Dense(DenseHolders::new());
        let mut down = BTreeSet::new();
        for _ in 0..6000 {
            let block = b((rng.next() % 2) as u32, rng.next() % 48);
            let node = n((rng.next() % 6) as u32);
            match rng.next() % 10 {
                0..=3 => {
                    classic.insert(block, node);
                    dense.insert(block, node);
                }
                4..=6 => {
                    classic.remove(block, node);
                    dense.remove(block, node);
                }
                7 => {
                    if down.contains(&node.0) {
                        down.remove(&node.0);
                    } else {
                        down.insert(node.0);
                    }
                }
                _ => {}
            }
            assert_eq!(classic.contains_key(block), dense.contains_key(block));
            assert_eq!(classic.resident_run(block, 8), dense.resident_run(block, 8));
            assert_eq!(
                classic.first_holder_up(block, &down),
                dense.first_holder_up(block, &down)
            );
            assert_eq!(
                classic.holders_except(block, node.0),
                dense.holders_except(block, node.0)
            );
        }
    }

    /// `run_len` must handle word boundaries, gaps, and the cap.
    #[test]
    fn presence_run_len_crosses_word_boundaries() {
        let mut p = PresenceMap::new();
        assert_eq!(p.run_len(b(0, 0), 64), 0);
        // A run of 130 blocks spanning three u64 words, starting
        // mid-word.
        for i in 60..190 {
            p.set(b(1, i));
        }
        assert_eq!(p.run_len(b(1, 60), 200), 130);
        assert_eq!(p.run_len(b(1, 60), 64), 64, "cap respected");
        assert_eq!(p.run_len(b(1, 189), 10), 1);
        assert_eq!(p.run_len(b(1, 190), 10), 0);
        assert_eq!(p.run_len(b(1, 59), 10), 0, "starts before the run");
        // Punch a hole and the run splits.
        p.clear(b(1, 128));
        assert_eq!(p.run_len(b(1, 60), 200), 68);
        assert_eq!(p.run_len(b(1, 129), 200), 61);
        // Other files are independent.
        assert_eq!(p.run_len(b(0, 60), 10), 0);
        assert_eq!(p.run_len(b(2, 60), 10), 0);
    }

    /// Deletions must keep open-addressing probe chains intact: force
    /// collisions and interleave insert/remove over a key set larger
    /// than the initial table.
    #[test]
    fn backward_shift_deletion_preserves_probes() {
        let mut pool = DensePool::with_policy(Replacement::Lru);
        for round in 0u64..4 {
            for i in 0..200 {
                pool.insert(
                    b(0, round * 1000 + i),
                    LruPool::fresh_meta(n(0), false, false),
                );
            }
            for i in 0..200 {
                if i % 3 != 0 {
                    assert!(pool.remove(b(0, round * 1000 + i)).is_some());
                }
            }
            for i in 0..200 {
                assert_eq!(
                    pool.contains(b(0, round * 1000 + i)),
                    i % 3 == 0,
                    "round {round} i {i}"
                );
            }
        }
    }
}
