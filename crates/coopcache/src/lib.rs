//! # coopcache — cooperative block-cache substrates
//!
//! The paper evaluates linear aggressive prefetching on two
//! parallel/distributed file systems whose caches are *cooperative*: the
//! local caches of all nodes are managed as one big global cache.
//! Neither system survives as usable open source, so this crate models
//! both at the level the paper's analysis depends on:
//!
//! * [`PafsCache`] — PAFS (Cortes et al.): **centralized** management.
//!   Every file is handled by a single server, which sees every request
//!   and can therefore implement a *truly global* linear prefetch limit
//!   and a globally coordinated (single-copy, no-coherence-problem)
//!   cache. Modelled as one global LRU pool built from all nodes'
//!   buffers.
//! * [`XfsCache`] — xFS (Anderson et al., SOSP'95): **serverless**,
//!   per-node decisions. Each node has a local LRU cache; a manager
//!   knows which nodes hold which blocks; a local miss that hits a
//!   remote cache is forwarded; evicted blocks that are the *last* copy
//!   get a second chance on a random peer (N-chance forwarding); remote
//!   hits leave a local duplicate behind. Per-node autonomy is exactly
//!   why only a *per-node* linear prefetch limit is implementable on
//!   xFS (§4) — and why shared files get duplicated prefetch streams.
//!
//! Both caches are *logical* models: they answer hit/miss/placement
//! questions and keep usage statistics; timing (network hops, disk
//! service) is charged by the simulator layer (`lap-core`) based on the
//! [`Lookup`] results returned here. The crate also provides the dirty
//! tracking needed by the periodic write-back daemon behind Table 2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dense;
mod local;
mod lru;
mod pafs;
mod stats;
mod xfs;

pub use dense::MetaLayout;
pub use ioworkload::{BlockId, FileId, NodeId};
pub use local::LocalOnlyCache;
pub use lru::Replacement;
pub use pafs::{server_node, PafsCache};
pub use stats::CacheStats;
pub use xfs::XfsCache;

/// Where a demand access found its block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// In the requesting node's own buffers.
    LocalHit,
    /// In another node's buffers — costs a network round trip.
    RemoteHit {
        /// The node whose cache supplied the block.
        holder: NodeId,
    },
    /// Nowhere in the cooperative cache — costs a disk read.
    Miss,
}

/// Why a block is being inserted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOrigin {
    /// Fetched (or written) on behalf of an application request.
    Demand,
    /// Fetched by the prefetcher.
    Prefetch,
}

/// A block pushed out of the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// Which block.
    pub block: BlockId,
    /// It was modified and its latest contents must be written to disk.
    pub dirty: bool,
    /// It was brought in by the prefetcher and never used — a
    /// miss-prediction made material (§5.2's miss-prediction ratio).
    pub wasted_prefetch: bool,
}

/// Result of a demand access.
#[derive(Clone, Debug)]
pub struct AccessOutcome {
    /// Hit/miss classification (drives timing in the simulator).
    pub lookup: Lookup,
    /// Blocks evicted as a side effect (xFS may copy a remote hit into
    /// the local cache, evicting something else).
    pub evicted: Vec<Evicted>,
}

/// Common interface of the two cooperative caches.
pub trait CooperativeCache {
    /// A demand read (`write = false`) or write (`write = true`) from
    /// `node` to `block`. Updates recency and prefetch-usage state.
    ///
    /// A write to a resident block marks it dirty; a write to a missing
    /// block is reported as a [`Lookup::Miss`] and the caller is
    /// expected to [`insert`](Self::insert) it dirty (write-allocate,
    /// no fetch-on-write — whole-block writes in this model).
    fn access(&mut self, node: NodeId, block: BlockId, write: bool) -> AccessOutcome;

    /// Is the block resident anywhere? (No state updates.)
    fn contains(&self, block: BlockId) -> bool;

    /// Is the block resident in `node`'s local buffers? (No updates.)
    fn contains_local(&self, node: NodeId, block: BlockId) -> bool;

    /// How many consecutive blocks starting at `block` (same file,
    /// ascending index) are resident in the [`contains`](Self::contains)
    /// sense, capped at `max`. No state updates.
    ///
    /// One *range* metadata operation: the aggressive prefetch walk
    /// rescans already-resident data after every restart, and asking
    /// "how far is this run resident?" once replaces up to `max` point
    /// probes. Backends count it as a single metadata probe — it is one
    /// query against the block-location tables; the dense layout
    /// answers it from per-file presence bitmaps in O(`max`/64) words,
    /// while the classic reference layout loops point lookups
    /// internally. The default implementation delegates to
    /// [`contains`](Self::contains) (and therefore counts one probe
    /// per block examined).
    fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        let mut n = 0;
        while n < max
            && self.contains(BlockId {
                file: block.file,
                index: block.index + u64::from(n),
            })
        {
            n += 1;
        }
        n
    }

    /// Insert a block on behalf of `node` after a disk fetch (or a
    /// write-allocate). Returns the evicted victims, if any.
    fn insert(
        &mut self,
        node: NodeId,
        block: BlockId,
        origin: InsertOrigin,
        dirty: bool,
    ) -> Vec<Evicted>;

    /// Insert a contiguous run of `count` blocks of one file, as
    /// landed by a single extent-granular disk job: every member
    /// arrives at the same instant with the same origin. The default
    /// inserts members in ascending block order and concatenates the
    /// victims — an atomic-arrival convenience, not a new eviction
    /// policy, so both backends get it for free.
    fn insert_run(
        &mut self,
        node: NodeId,
        first: BlockId,
        count: u32,
        origin: InsertOrigin,
        dirty: bool,
    ) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        for i in 0..u64::from(count) {
            let member = BlockId {
                file: first.file,
                index: first.index + i,
            };
            evicted.extend(self.insert(node, member, origin, dirty));
        }
        evicted
    }

    /// Mark `node` down (`down = true`) or back up (`down = false`)
    /// for degraded-mode operation. A down node is *disconnected from
    /// the cooperative cache*, not powered off: its buffers must not
    /// serve remote hits and must not receive copies forwarded or
    /// placed by other nodes, but its own local accesses and inserts
    /// keep working (the node operates local-only) and resident
    /// content survives the outage — the node rejoins with its cache
    /// intact. Backends with no cross-node state (the local-only
    /// baseline) ignore this.
    fn set_degraded(&mut self, node: NodeId, down: bool) {
        let _ = (node, down);
    }

    /// Drop every copy held in `node`'s buffers: the node *crashed*
    /// (rather than merely disconnecting) and rejoins with a cold
    /// cache (`node-outage-wipe` fault plans). Dirty copies are lost —
    /// the crash took the buffer contents with it, so there is no
    /// write-back. Every dropped copy goes through the normal eviction
    /// accounting, which keeps the copy-conservation equation of
    /// [`check_integrity`](Self::check_integrity) balanced. Returns
    /// the number of copies wiped. Backends with no per-node placement
    /// wipe nothing.
    fn wipe_node(&mut self, node: NodeId) -> u64 {
        let _ = node;
        0
    }

    /// Structural self-check for the runtime invariant oracle
    /// (DESIGN.md §15): copy conservation (inserts minus removals
    /// equals residency), capacity bounds, and cross-structure
    /// agreement (e.g. the xFS manager's holder registry versus the
    /// per-node pools). Returns a diagnostic message on the first
    /// violation found. Deliberately **not** counted as a metadata
    /// probe ([`meta_probes`](Self::meta_probes)), so running the
    /// oracle cannot move the deterministic profile counters the
    /// BENCH gate compares. Default: nothing to check.
    fn check_integrity(&self) -> Result<(), String> {
        Ok(())
    }

    /// Collect every dirty resident block and mark it clean — the
    /// periodic write-back sweep ("for fault-tolerance issues, these
    /// blocks are periodically sent to the disk", §5.3).
    fn sweep_dirty(&mut self) -> Vec<BlockId>;

    /// Account still-resident, never-used prefetched blocks as wasted.
    /// Call once at end of simulation.
    fn finalize(&mut self);

    /// Statistics accumulated so far.
    fn stats(&self) -> &CacheStats;

    /// Total capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Blocks currently resident (counting duplicates).
    fn resident_blocks(&self) -> u64;

    /// Metadata probes performed so far: every `access`, `contains`,
    /// `contains_local`, and `insert` call — the block-location table
    /// work the cooperative cache does per simulated operation. A
    /// deterministic cost counter for the simulator self-profile;
    /// backends without accounting report 0.
    fn meta_probes(&self) -> u64 {
        0
    }
}
