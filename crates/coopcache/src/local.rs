//! A non-cooperative baseline: independent per-node caches.
//!
//! Every node has its own LRU cache and a miss goes straight to disk —
//! no remote hits, no forwarding, no global management. This is the
//! world *before* cooperative caching (the paper's introduction cites
//! Dahlin et al.'s cooperative caching as the improvement over exactly
//! this), kept here as a comparison baseline: running the same workload
//! on [`LocalOnlyCache`] vs [`PafsCache`](crate::PafsCache) /
//! [`XfsCache`](crate::XfsCache) shows how much of the performance the
//! *cooperation* contributes, independent of prefetching.

use std::cell::Cell;

use ioworkload::{BlockId, NodeId};

use crate::lru::{LruPool, Replacement};
use crate::stats::CacheStats;
use crate::{AccessOutcome, CooperativeCache, Evicted, InsertOrigin, Lookup};

/// Independent per-node LRU caches with no cooperation at all.
pub struct LocalOnlyCache {
    pools: Vec<LruPool>,
    blocks_per_node: u64,
    stats: CacheStats,
    /// Metadata probes (`meta_probes`); `Cell` because `contains*`
    /// take `&self`.
    probes: Cell<u64>,
}

impl LocalOnlyCache {
    /// Build `nodes` independent caches of `blocks_per_node` buffers.
    pub fn new(nodes: u32, blocks_per_node: u64) -> Self {
        Self::with_policy(nodes, blocks_per_node, Replacement::Lru)
    }

    /// Build with an explicit replacement policy.
    pub fn with_policy(nodes: u32, blocks_per_node: u64, policy: Replacement) -> Self {
        assert!(nodes > 0 && blocks_per_node > 0);
        LocalOnlyCache {
            pools: (0..nodes).map(|_| LruPool::with_policy(policy)).collect(),
            blocks_per_node,
            stats: CacheStats::default(),
            probes: Cell::new(0),
        }
    }

    fn make_room(&mut self, node: NodeId, out: &mut Vec<Evicted>) {
        while self.pools[node.0 as usize].len() as u64 >= self.blocks_per_node {
            let (block, meta) = self.pools[node.0 as usize].pop_lru().expect("capacity > 0");
            self.stats.evictions += 1;
            if meta.dirty {
                self.stats.dirty_evictions += 1;
            }
            let wasted = meta.prefetched && !meta.used;
            if wasted {
                self.stats.prefetch_wasted += 1;
            }
            out.push(Evicted {
                block,
                dirty: meta.dirty,
                wasted_prefetch: wasted,
            });
        }
    }
}

impl CooperativeCache for LocalOnlyCache {
    fn access(&mut self, node: NodeId, block: BlockId, write: bool) -> AccessOutcome {
        self.probes.set(self.probes.get() + 1);
        match self.pools[node.0 as usize].touch(block, write) {
            Some(before) => {
                if before.prefetched && !before.used {
                    self.stats.prefetch_used += 1;
                }
                self.stats.local_hits += 1;
                AccessOutcome {
                    lookup: Lookup::LocalHit,
                    evicted: Vec::new(),
                }
            }
            None => {
                self.stats.misses += 1;
                AccessOutcome {
                    lookup: Lookup::Miss,
                    evicted: Vec::new(),
                }
            }
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        // No cooperation: "contained" only means some node has it, and
        // callers that ask globally (e.g. PAFS-style prefetchers) never
        // run against this cache. Still answer honestly.
        self.pools.iter().any(|p| p.contains(block))
    }

    fn contains_local(&self, node: NodeId, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        self.pools[node.0 as usize].contains(block)
    }

    fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        self.probes.set(self.probes.get() + 1);
        let mut n = 0;
        while n < max {
            let member = BlockId::new(block.file, block.index + u64::from(n));
            if !self.pools.iter().any(|p| p.contains(member)) {
                break;
            }
            n += 1;
        }
        n
    }

    fn insert(
        &mut self,
        node: NodeId,
        block: BlockId,
        origin: InsertOrigin,
        dirty: bool,
    ) -> Vec<Evicted> {
        self.probes.set(self.probes.get() + 1);
        let mut out = Vec::new();
        if self.pools[node.0 as usize].contains(block) {
            self.pools[node.0 as usize].refresh(block, dirty, origin == InsertOrigin::Demand);
            return out;
        }
        match origin {
            InsertOrigin::Demand => self.stats.demand_inserts += 1,
            InsertOrigin::Prefetch => self.stats.prefetch_inserts += 1,
        }
        self.make_room(node, &mut out);
        // fresh_meta already encodes used = !prefetched.
        let meta = LruPool::fresh_meta(node, dirty, origin == InsertOrigin::Prefetch);
        self.pools[node.0 as usize].insert(block, meta);
        out
    }

    fn wipe_node(&mut self, node: NodeId) -> u64 {
        // Crash semantics: the node's buffers vanish, dirty copies are
        // lost, and every drop is accounted as an eviction.
        let mut wiped = 0u64;
        while let Some((block, meta)) = self.pools[node.0 as usize].pop_lru() {
            LruPool::account_eviction(&mut self.stats, block, &meta);
            wiped += 1;
        }
        wiped
    }

    fn check_integrity(&self) -> Result<(), String> {
        let s = &self.stats;
        let resident = self.resident_blocks();
        let inserted = s.demand_inserts + s.prefetch_inserts;
        if inserted < s.evictions || inserted - s.evictions != resident {
            return Err(format!(
                "local-only copy conservation broken: demand_inserts {} + prefetch_inserts {} \
                 - evictions {} != resident {resident}",
                s.demand_inserts, s.prefetch_inserts, s.evictions
            ));
        }
        for (i, pool) in self.pools.iter().enumerate() {
            if pool.len() as u64 > self.blocks_per_node {
                return Err(format!(
                    "local-only node {i} over capacity: {} > {}",
                    pool.len(),
                    self.blocks_per_node
                ));
            }
        }
        Ok(())
    }

    fn sweep_dirty(&mut self) -> Vec<BlockId> {
        let mut set = std::collections::BTreeSet::new();
        for pool in &mut self.pools {
            set.extend(pool.sweep_dirty());
        }
        set.into_iter().collect()
    }

    fn finalize(&mut self) {
        for pool in &self.pools {
            self.stats.prefetch_wasted += pool.count_unused_prefetched();
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity_blocks(&self) -> u64 {
        self.pools.len() as u64 * self.blocks_per_node
    }

    fn resident_blocks(&self) -> u64 {
        self.pools.iter().map(|p| p.len() as u64).sum()
    }

    fn meta_probes(&self) -> u64 {
        self.probes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioworkload::FileId;

    fn b(i: u64) -> BlockId {
        BlockId::new(FileId(0), i)
    }
    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn no_remote_hits_ever() {
        let mut c = LocalOnlyCache::new(2, 4);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        // Node 1 asking for a block node 0 caches still misses.
        assert_eq!(c.access(n(1), b(1), false).lookup, Lookup::Miss);
        assert_eq!(c.access(n(0), b(1), false).lookup, Lookup::LocalHit);
        assert_eq!(c.stats().remote_hits, 0);
    }

    #[test]
    fn evictions_are_silent_drops() {
        let mut c = LocalOnlyCache::new(1, 2);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.insert(n(0), b(2), InsertOrigin::Demand, false);
        let ev = c.insert(n(0), b(3), InsertOrigin::Demand, false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].block, b(1));
        assert!(!c.contains(b(1)));
        assert_eq!(c.stats().forwards, 0, "no N-chance here");
    }

    #[test]
    fn per_node_capacity() {
        let mut c = LocalOnlyCache::new(3, 2);
        for i in 0..10 {
            c.insert(n(0), b(i), InsertOrigin::Demand, false);
        }
        assert_eq!(c.resident_blocks(), 2, "only node 0 holds anything");
        assert_eq!(c.capacity_blocks(), 6);
    }

    #[test]
    fn dirty_sweep_and_eviction_accounting() {
        let mut c = LocalOnlyCache::new(1, 2);
        assert_eq!(c.access(n(0), b(1), true).lookup, Lookup::Miss);
        c.insert(n(0), b(1), InsertOrigin::Demand, true);
        assert_eq!(c.sweep_dirty(), vec![b(1)]);
        c.access(n(0), b(1), true);
        c.insert(n(0), b(2), InsertOrigin::Demand, false);
        let ev = c.insert(n(0), b(3), InsertOrigin::Demand, false);
        assert!(ev[0].dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn prefetch_usage_tracked_per_node() {
        let mut c = LocalOnlyCache::new(2, 4);
        c.insert(n(0), b(1), InsertOrigin::Prefetch, false);
        c.insert(n(1), b(2), InsertOrigin::Prefetch, false);
        c.access(n(0), b(1), false);
        c.finalize();
        assert_eq!(c.stats().prefetch_used, 1);
        assert_eq!(c.stats().prefetch_wasted, 1);
    }

    #[test]
    fn fifo_policy_ignores_touches() {
        let mut c = LocalOnlyCache::with_policy(1, 2, Replacement::Fifo);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.insert(n(0), b(2), InsertOrigin::Demand, false);
        // Touch block 1; under FIFO it is still the first to go.
        c.access(n(0), b(1), false);
        let ev = c.insert(n(0), b(3), InsertOrigin::Demand, false);
        assert_eq!(ev[0].block, b(1));
    }
}
