//! A keyed LRU pool with per-block metadata — the building block of
//! both cooperative caches.

use std::collections::{BTreeSet, HashMap};

use ioworkload::{BlockId, NodeId};

use crate::stats::CacheStats;
use crate::Evicted;

/// Replacement policy of a pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Replacement {
    /// Least-recently-used: every access refreshes recency (the
    /// behaviour both PAFS and xFS assume).
    #[default]
    Lru,
    /// First-in-first-out: insertion order decides the victim; touches
    /// do not refresh. Kept for the replacement-policy ablation.
    Fifo,
}

/// Metadata of one resident block copy.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Meta {
    /// Node whose buffer holds the copy.
    pub owner: NodeId,
    /// Modified since last written to disk.
    pub dirty: bool,
    /// Brought in by the prefetcher.
    pub prefetched: bool,
    /// Used by a demand access since (last) prefetched.
    pub used: bool,
    /// xFS N-chance recirculation count.
    pub recirc: u8,
    /// Recency sequence number (larger = more recent).
    seq: u64,
}

/// An LRU-ordered pool of block copies with O(log n) operations.
///
/// Recency is tracked with a monotonically increasing sequence number
/// per touch; the `(seq, block)` pairs live in a [`BTreeSet`] whose
/// smallest element is the LRU victim.
pub(crate) struct LruPool {
    map: HashMap<BlockId, Meta>,
    order: BTreeSet<(u64, BlockId)>,
    next_seq: u64,
    policy: Replacement,
}

impl LruPool {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_policy(Replacement::Lru)
    }

    pub(crate) fn with_policy(policy: Replacement) -> Self {
        LruPool {
            map: HashMap::new(),
            order: BTreeSet::new(),
            next_seq: 0,
            policy,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(&block)
    }

    pub(crate) fn get(&self, block: BlockId) -> Option<&Meta> {
        self.map.get(&block)
    }

    /// Touch a resident block for a *demand access*: bump recency,
    /// optionally dirty it, mark prefetch usage, and (having just been
    /// referenced) grant forwarded blocks a fresh set of N-chance
    /// recirculations. Returns the pre-touch metadata, or `None` if
    /// absent.
    pub(crate) fn touch(&mut self, block: BlockId, write: bool) -> Option<Meta> {
        self.touch_inner(block, write, true)
    }

    /// Refresh a resident block on a (racing) re-insert: bump recency
    /// and dirtiness, and mark usage only if the re-insert was
    /// demand-driven — a prefetch landing on an already-resident block
    /// must not launder its never-used status.
    pub(crate) fn refresh(&mut self, block: BlockId, dirty: bool, mark_used: bool) -> Option<Meta> {
        self.touch_inner(block, dirty, mark_used)
    }

    fn touch_inner(&mut self, block: BlockId, write: bool, mark_used: bool) -> Option<Meta> {
        let refresh = self.policy == Replacement::Lru;
        let seq = self.next_seq;
        let meta = self.map.get_mut(&block)?;
        let before = *meta;
        if mark_used {
            meta.used = true;
            // A referenced block earns fresh recirculation chances
            // (Dahlin's N-chance counts forwards since last reference).
            meta.recirc = 0;
        }
        if write {
            meta.dirty = true;
        }
        if refresh {
            self.order.remove(&(meta.seq, block));
            self.next_seq += 1;
            meta.seq = seq;
            self.order.insert((seq, block));
        }
        Some(before)
    }

    /// Account one evicted (or dropped) copy into `stats` and build its
    /// [`Evicted`] record — the single place the eviction bookkeeping
    /// lives.
    pub(crate) fn account_eviction(stats: &mut CacheStats, block: BlockId, meta: &Meta) -> Evicted {
        stats.evictions += 1;
        if meta.dirty {
            stats.dirty_evictions += 1;
        }
        let wasted = meta.prefetched && !meta.used;
        if wasted {
            stats.prefetch_wasted += 1;
        }
        Evicted {
            block,
            dirty: meta.dirty,
            wasted_prefetch: wasted,
        }
    }

    /// Insert (or overwrite) a block copy at MRU position.
    pub(crate) fn insert(&mut self, block: BlockId, mut meta: Meta) {
        if let Some(old) = self.map.remove(&block) {
            self.order.remove(&(old.seq, block));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        meta.seq = seq;
        self.map.insert(block, meta);
        self.order.insert((seq, block));
    }

    /// Build a fresh metadata record for insertion.
    pub(crate) fn fresh_meta(owner: NodeId, dirty: bool, prefetched: bool) -> Meta {
        Meta {
            owner,
            dirty,
            prefetched,
            used: !prefetched,
            recirc: 0,
            seq: 0,
        }
    }

    /// Remove a specific block, returning its metadata.
    pub(crate) fn remove(&mut self, block: BlockId) -> Option<Meta> {
        let meta = self.map.remove(&block)?;
        self.order.remove(&(meta.seq, block));
        Some(meta)
    }

    /// Remove and return the least-recently-used block.
    pub(crate) fn pop_lru(&mut self) -> Option<(BlockId, Meta)> {
        let &(seq, block) = self.order.iter().next()?;
        self.order.remove(&(seq, block));
        let meta = self.map.remove(&block).expect("order/map in sync");
        Some((block, meta))
    }

    /// Collect all dirty blocks and mark them clean.
    pub(crate) fn sweep_dirty(&mut self) -> Vec<BlockId> {
        let mut dirty = Vec::new();
        for (b, m) in self.map.iter_mut() {
            if m.dirty {
                m.dirty = false;
                dirty.push(*b);
            }
        }
        dirty.sort_unstable(); // deterministic order
        dirty
    }

    /// Visit every resident copy (arbitrary order — callers that need
    /// determinism must collect and sort).
    pub(crate) fn for_each(&self, f: &mut dyn FnMut(BlockId, &Meta)) {
        for (b, m) in self.map.iter() {
            f(*b, m);
        }
    }

    /// Count resident prefetched-but-never-used blocks (for finalize).
    pub(crate) fn count_unused_prefetched(&self) -> u64 {
        self.map
            .values()
            .filter(|m| m.prefetched && !m.used)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioworkload::FileId;

    fn b(i: u64) -> BlockId {
        BlockId::new(FileId(0), i)
    }
    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn lru_order_and_touch() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), false, false));
        pool.insert(b(2), LruPool::fresh_meta(n(0), false, false));
        pool.insert(b(3), LruPool::fresh_meta(n(0), false, false));
        // Touch 1: order is now 2 (lru), 3, 1 (mru).
        assert!(pool.touch(b(1), false).is_some());
        assert_eq!(pool.pop_lru().unwrap().0, b(2));
        assert_eq!(pool.pop_lru().unwrap().0, b(3));
        assert_eq!(pool.pop_lru().unwrap().0, b(1));
        assert!(pool.pop_lru().is_none());
    }

    #[test]
    fn touch_marks_dirty_and_used() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), false, true));
        assert!(!pool.get(b(1)).unwrap().used, "prefetched starts unused");
        let before = pool.touch(b(1), true).unwrap();
        assert!(!before.used);
        let after = pool.get(b(1)).unwrap();
        assert!(after.used && after.dirty);
    }

    #[test]
    fn reinsert_replaces() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), false, false));
        pool.insert(b(1), LruPool::fresh_meta(n(1), true, false));
        assert_eq!(pool.len(), 1);
        let m = pool.get(b(1)).unwrap();
        assert_eq!(m.owner, n(1));
        assert!(m.dirty);
    }

    #[test]
    fn sweep_collects_and_cleans() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), true, false));
        pool.insert(b(2), LruPool::fresh_meta(n(0), false, false));
        pool.insert(b(3), LruPool::fresh_meta(n(0), true, false));
        let dirty = pool.sweep_dirty();
        assert_eq!(dirty, vec![b(1), b(3)]);
        assert!(pool.sweep_dirty().is_empty());
    }

    #[test]
    fn unused_prefetched_accounting() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), false, true));
        pool.insert(b(2), LruPool::fresh_meta(n(0), false, true));
        pool.touch(b(1), false);
        assert_eq!(pool.count_unused_prefetched(), 1);
    }

    #[test]
    fn remove_specific() {
        let mut pool = LruPool::new();
        pool.insert(b(1), LruPool::fresh_meta(n(0), false, false));
        assert!(pool.remove(b(1)).is_some());
        assert!(pool.remove(b(1)).is_none());
        assert_eq!(pool.len(), 0);
    }
}
