//! The PAFS cooperative cache: centralized, globally managed, one copy
//! per block.

use std::cell::Cell;
use std::collections::BTreeSet;

use ioworkload::{BlockId, FileId, NodeId};

use crate::dense::{BlockPool, MetaLayout};
use crate::lru::{LruPool, Replacement};
use crate::stats::CacheStats;
use crate::{AccessOutcome, CooperativeCache, Evicted, InsertOrigin, Lookup};

/// The authoritative PAFS file-to-server mapping: file servers are
/// spread round-robin over the nodes. Exposed so the simulator places
/// prefetched blocks on the same node [`PafsCache::server_of`] reports.
pub fn server_node(file: FileId, nodes: u32) -> NodeId {
    NodeId(file.0 % nodes)
}

/// PAFS-style cooperative cache.
///
/// "In PAFS, the management of a given file is handled by a single
/// server. This kind of centralized management allows a simple
/// implementation of the idea of a linear aggressive prefetching"
/// (§4). The cache model that matches this design:
///
/// * all nodes' buffers form **one global LRU pool** (capacity =
///   `nodes × blocks_per_node`);
/// * each block has exactly **one copy**, tagged with the node whose
///   buffer holds it (PAFS's design has "no coherence problems");
/// * replacement is **global LRU**: a newly fetched block replaces the
///   globally oldest block, wherever it lives — which is precisely why
///   aggressive prefetching is safe: "miss-predictions mostly replace
///   very old blocks that nobody expects to find in the cache" (§1);
/// * a local hit costs a memory copy, a remote hit one network round
///   trip (charged by the simulator).
///
/// ```
/// use coopcache::{CooperativeCache, InsertOrigin, Lookup, PafsCache};
/// use coopcache::{BlockId, FileId, NodeId};
///
/// let mut cache = PafsCache::new(4, 128);
/// let block = BlockId::new(FileId(0), 7);
/// assert_eq!(cache.access(NodeId(0), block, false).lookup, Lookup::Miss);
/// cache.insert(NodeId(0), block, InsertOrigin::Demand, false);
/// assert_eq!(cache.access(NodeId(0), block, false).lookup, Lookup::LocalHit);
/// assert_eq!(
///     cache.access(NodeId(3), block, false).lookup,
///     Lookup::RemoteHit { holder: NodeId(0) }
/// );
/// ```
pub struct PafsCache {
    pool: BlockPool,
    nodes: u32,
    capacity: u64,
    /// Nodes currently disconnected from the cooperative cache
    /// (degraded mode). BTreeSet for deterministic iteration.
    down: BTreeSet<u32>,
    stats: CacheStats,
    /// Metadata probes (`meta_probes`); `Cell` because `contains*`
    /// take `&self`. The probe sequence is deterministic, so the count
    /// is a valid hard-gated profile counter.
    probes: Cell<u64>,
}

impl PafsCache {
    /// Build a cache of `nodes` nodes contributing `blocks_per_node`
    /// buffers each, with global LRU replacement.
    pub fn new(nodes: u32, blocks_per_node: u64) -> Self {
        Self::with_policy(nodes, blocks_per_node, Replacement::Lru)
    }

    /// Build with an explicit replacement policy (for the
    /// replacement-policy ablation).
    pub fn with_policy(nodes: u32, blocks_per_node: u64, policy: Replacement) -> Self {
        Self::with_layout(nodes, blocks_per_node, policy, MetaLayout::Dense)
    }

    /// Build with an explicit metadata layout. [`MetaLayout::Dense`]
    /// (the default everywhere else) and [`MetaLayout::Classic`]
    /// produce bit-identical results; the equivalence tests drive both.
    pub fn with_layout(
        nodes: u32,
        blocks_per_node: u64,
        policy: Replacement,
        layout: MetaLayout,
    ) -> Self {
        assert!(nodes > 0 && blocks_per_node > 0);
        PafsCache {
            pool: BlockPool::with_policy(layout, policy),
            nodes,
            capacity: nodes as u64 * blocks_per_node,
            down: BTreeSet::new(),
            stats: CacheStats::default(),
            probes: Cell::new(0),
        }
    }

    /// The node running the (single) server for `file` — all requests
    /// for the file funnel through it, which is what makes the global
    /// linear prefetch limit trivially implementable.
    pub fn server_of(&self, file: FileId) -> NodeId {
        server_node(file, self.nodes)
    }

    /// The node actually serving `file` right now: the authoritative
    /// server unless it is down, in which case management fails over
    /// to the next node (round-robin) that is still up. With every
    /// node down the preferred server is returned unchanged.
    pub fn effective_server_of(&self, file: FileId) -> NodeId {
        self.failover_target(server_node(file, self.nodes))
    }

    /// First node at or after `preferred` (wrapping) that is up.
    fn failover_target(&self, preferred: NodeId) -> NodeId {
        if !self.down.contains(&preferred.0) {
            return preferred;
        }
        let mut s = preferred.0;
        for _ in 0..self.nodes {
            s = (s + 1) % self.nodes;
            if !self.down.contains(&s) {
                return NodeId(s);
            }
        }
        preferred
    }

    fn evict_for_space(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        while self.pool.len() as u64 >= self.capacity {
            let (block, meta) = self.pool.pop_lru().expect("capacity > 0");
            out.push(LruPool::account_eviction(&mut self.stats, block, &meta));
        }
        out
    }
}

impl CooperativeCache for PafsCache {
    fn access(&mut self, node: NodeId, block: BlockId, write: bool) -> AccessOutcome {
        self.probes.set(self.probes.get() + 1);
        // A copy held by a disconnected node cannot be reached over the
        // network: the access misses, but the copy itself survives and
        // serves again once the holder rejoins.
        if let Some(meta) = self.pool.get(block) {
            if meta.owner != node && self.down.contains(&meta.owner.0) {
                self.stats.misses += 1;
                return AccessOutcome {
                    lookup: Lookup::Miss,
                    evicted: Vec::new(),
                };
            }
        }
        match self.pool.touch(block, write) {
            Some(before) => {
                if before.prefetched && !before.used {
                    self.stats.prefetch_used += 1;
                }
                let lookup = if before.owner == node {
                    self.stats.local_hits += 1;
                    Lookup::LocalHit
                } else {
                    self.stats.remote_hits += 1;
                    Lookup::RemoteHit {
                        holder: before.owner,
                    }
                };
                AccessOutcome {
                    lookup,
                    evicted: Vec::new(),
                }
            }
            None => {
                self.stats.misses += 1;
                AccessOutcome {
                    lookup: Lookup::Miss,
                    evicted: Vec::new(),
                }
            }
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        self.pool.contains(block)
    }

    fn contains_local(&self, node: NodeId, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        self.pool.get(block).is_some_and(|m| m.owner == node)
    }

    fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        // One range query against the pool = one metadata probe (the
        // dense layout answers it from its presence bitmaps).
        self.probes.set(self.probes.get() + 1);
        self.pool.resident_run(block, max)
    }

    fn insert(
        &mut self,
        node: NodeId,
        block: BlockId,
        origin: InsertOrigin,
        dirty: bool,
    ) -> Vec<Evicted> {
        self.probes.set(self.probes.get() + 1);
        // Degraded mode: placement on a down server fails over to the
        // next node that is up (centralized management re-homes the
        // file's service, §4's single-server design made fault-aware).
        let node = self.failover_target(node);
        if self.pool.contains(block) {
            // Concurrent fetch already landed it; refresh recency (and
            // usage only when this insert is demand-driven).
            self.pool
                .refresh(block, dirty, origin == InsertOrigin::Demand);
            return Vec::new();
        }
        let evicted = self.evict_for_space();
        let prefetched = origin == InsertOrigin::Prefetch;
        match origin {
            InsertOrigin::Demand => self.stats.demand_inserts += 1,
            InsertOrigin::Prefetch => self.stats.prefetch_inserts += 1,
        }
        self.pool
            .insert(block, LruPool::fresh_meta(node, dirty, prefetched));
        evicted
    }

    fn set_degraded(&mut self, node: NodeId, down: bool) {
        if down {
            self.down.insert(node.0);
        } else {
            self.down.remove(&node.0);
        }
    }

    fn wipe_node(&mut self, node: NodeId) -> u64 {
        // The crashed node's buffers held one copy each of the blocks
        // placed on it; collect, sort (pool iteration order is not
        // deterministic on the classic layout), and drop them through
        // the regular eviction accounting. Dirty copies are lost.
        let mut owned = Vec::new();
        self.pool.for_each(&mut |block, meta| {
            if meta.owner == node {
                owned.push(block);
            }
        });
        owned.sort_unstable();
        for &block in &owned {
            let meta = self.pool.remove(block).expect("collected above");
            LruPool::account_eviction(&mut self.stats, block, &meta);
        }
        owned.len() as u64
    }

    fn check_integrity(&self) -> Result<(), String> {
        let s = &self.stats;
        let resident = self.pool.len() as u64;
        let inserted = s.demand_inserts + s.prefetch_inserts;
        if inserted < s.evictions || inserted - s.evictions != resident {
            return Err(format!(
                "pafs copy conservation broken: demand_inserts {} + prefetch_inserts {} \
                 - evictions {} != resident {resident}",
                s.demand_inserts, s.prefetch_inserts, s.evictions
            ));
        }
        if resident > self.capacity {
            return Err(format!(
                "pafs over capacity: resident {resident} > capacity {}",
                self.capacity
            ));
        }
        let nodes = self.nodes;
        let mut visited = 0u64;
        let mut bad_owner = None;
        self.pool.for_each(&mut |block, meta| {
            visited += 1;
            if meta.owner.0 >= nodes && bad_owner.is_none() {
                bad_owner = Some((block, meta.owner));
            }
        });
        if visited != resident {
            return Err(format!(
                "pafs pool iteration/len disagree: visited {visited}, len {resident}"
            ));
        }
        if let Some((block, owner)) = bad_owner {
            return Err(format!(
                "pafs copy of file {} block {} owned by out-of-range node {}",
                block.file.0, block.index, owner.0
            ));
        }
        Ok(())
    }

    fn sweep_dirty(&mut self) -> Vec<BlockId> {
        self.pool.sweep_dirty()
    }

    fn finalize(&mut self) {
        self.stats.prefetch_wasted += self.pool.count_unused_prefetched();
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    fn resident_blocks(&self) -> u64 {
        self.pool.len() as u64
    }

    fn meta_probes(&self) -> u64 {
        self.probes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(f: u32, i: u64) -> BlockId {
        BlockId::new(FileId(f), i)
    }
    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn miss_then_insert_then_local_hit() {
        let mut c = PafsCache::new(2, 4);
        assert_eq!(c.access(n(0), b(0, 0), false).lookup, Lookup::Miss);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        assert_eq!(c.access(n(0), b(0, 0), false).lookup, Lookup::LocalHit);
        assert_eq!(
            c.access(n(1), b(0, 0), false).lookup,
            Lookup::RemoteHit { holder: n(0) }
        );
        let s = c.stats();
        assert_eq!((s.misses, s.local_hits, s.remote_hits), (1, 1, 1));
    }

    #[test]
    fn global_lru_eviction_across_nodes() {
        // 2 nodes x 2 blocks = 4 buffers globally.
        let mut c = PafsCache::new(2, 2);
        for i in 0..4 {
            c.insert(n(0), b(0, i), InsertOrigin::Demand, false);
        }
        assert_eq!(c.resident_blocks(), 4);
        // Touch block 0 so block 1 is globally oldest.
        c.access(n(1), b(0, 0), false);
        let ev = c.insert(n(1), b(0, 9), InsertOrigin::Demand, false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].block, b(0, 1));
        assert!(c.contains(b(0, 0)));
        assert!(!c.contains(b(0, 1)));
    }

    #[test]
    fn single_copy_semantics() {
        let mut c = PafsCache::new(4, 4);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        c.insert(n(3), b(0, 0), InsertOrigin::Demand, false); // no duplicate
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn dirty_lifecycle_and_sweep() {
        let mut c = PafsCache::new(1, 4);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        c.access(n(0), b(0, 0), true); // write marks dirty
        assert_eq!(c.sweep_dirty(), vec![b(0, 0)]);
        assert!(c.sweep_dirty().is_empty(), "clean after sweep");
        // Dirty again and evict: dirty eviction counted.
        c.access(n(0), b(0, 0), true);
        for i in 1..=4 {
            c.insert(n(0), b(0, i), InsertOrigin::Demand, false);
        }
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn prefetch_usage_accounting() {
        let mut c = PafsCache::new(1, 2);
        c.insert(n(0), b(0, 0), InsertOrigin::Prefetch, false);
        c.insert(n(0), b(0, 1), InsertOrigin::Prefetch, false);
        // Block 0 used; block 1 never used and then evicted.
        c.access(n(0), b(0, 0), false);
        c.insert(n(0), b(0, 2), InsertOrigin::Demand, false); // evicts b1
        assert_eq!(c.stats().prefetch_used, 1);
        assert_eq!(c.stats().prefetch_wasted, 1);
        assert!((c.stats().mispredict_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finalize_counts_resident_unused_prefetches() {
        let mut c = PafsCache::new(1, 4);
        c.insert(n(0), b(0, 0), InsertOrigin::Prefetch, false);
        c.insert(n(0), b(0, 1), InsertOrigin::Prefetch, false);
        c.access(n(0), b(0, 1), false);
        c.finalize();
        assert_eq!(c.stats().prefetch_wasted, 1);
    }

    #[test]
    fn server_mapping_is_stable_and_in_range() {
        let c = PafsCache::new(5, 1);
        for f in 0..20 {
            let s = c.server_of(FileId(f));
            assert!(s.0 < 5);
            assert_eq!(s, c.server_of(FileId(f)));
        }
    }

    #[test]
    fn fifo_policy_evicts_in_insertion_order() {
        use crate::lru::Replacement;
        let mut c = PafsCache::with_policy(1, 2, Replacement::Fifo);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        c.insert(n(0), b(0, 1), InsertOrigin::Demand, false);
        // Touch block 0; FIFO still evicts it first.
        c.access(n(0), b(0, 0), false);
        let ev = c.insert(n(0), b(0, 2), InsertOrigin::Demand, false);
        assert_eq!(ev[0].block, b(0, 0));
    }

    #[test]
    fn prefetch_reinsert_does_not_launder_unused_status() {
        let mut c = PafsCache::new(1, 4);
        c.insert(n(0), b(0, 0), InsertOrigin::Prefetch, false);
        // A second prefetch-origin insert of the same resident block
        // must not mark it used.
        c.insert(n(0), b(0, 0), InsertOrigin::Prefetch, false);
        c.finalize();
        assert_eq!(c.stats().prefetch_wasted, 1);
        assert_eq!(c.stats().prefetch_used, 0);
    }

    #[test]
    fn degraded_holder_copy_is_unreachable_but_survives() {
        let mut c = PafsCache::new(2, 4);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        c.set_degraded(n(0), true);
        // Remote access cannot reach the down holder's buffer...
        assert_eq!(c.access(n(1), b(0, 0), false).lookup, Lookup::Miss);
        // ...the holder itself still hits locally (disconnected, not
        // powered off)...
        assert_eq!(c.access(n(0), b(0, 0), false).lookup, Lookup::LocalHit);
        // ...and the copy serves remotely again after recovery.
        c.set_degraded(n(0), false);
        assert_eq!(
            c.access(n(1), b(0, 0), false).lookup,
            Lookup::RemoteHit { holder: n(0) }
        );
        assert_eq!(c.resident_blocks(), 1, "no eviction during the outage");
    }

    #[test]
    fn insert_fails_over_past_down_server() {
        let mut c = PafsCache::new(3, 4);
        c.set_degraded(n(1), true);
        assert_eq!(c.effective_server_of(FileId(1)), n(2), "1 is down");
        assert_eq!(c.effective_server_of(FileId(0)), n(0), "0 is up");
        // Placement requested on the down server lands on the failover
        // node and is locally reachable there.
        c.insert(n(1), b(1, 0), InsertOrigin::Demand, false);
        assert_eq!(c.access(n(2), b(1, 0), false).lookup, Lookup::LocalHit);
    }

    #[test]
    fn all_nodes_down_still_caches_on_preferred_server() {
        let mut c = PafsCache::new(2, 4);
        c.set_degraded(n(0), true);
        c.set_degraded(n(1), true);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        assert_eq!(c.resident_blocks(), 1);
        assert_eq!(c.access(n(0), b(0, 0), false).lookup, Lookup::LocalHit);
    }

    /// Classic and dense layouts must be observably identical on a
    /// randomized mixed workload, under both replacement policies.
    #[test]
    fn dense_layout_matches_classic_layout() {
        use crate::dense::MetaLayout;
        for (seed, policy) in [(5u64, Replacement::Lru), (6, Replacement::Fifo)] {
            let mut classic = PafsCache::with_layout(3, 4, policy, MetaLayout::Classic);
            let mut dense = PafsCache::with_layout(3, 4, policy, MetaLayout::Dense);
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for _ in 0..3000 {
                let node = n((next() % 3) as u32);
                let block = b((next() % 2) as u32, next() % 30);
                match next() % 10 {
                    0..=4 => {
                        let write = next() % 4 == 0;
                        let (co, do_) = (
                            classic.access(node, block, write),
                            dense.access(node, block, write),
                        );
                        assert_eq!(co.lookup, do_.lookup);
                        assert_eq!(co.evicted, do_.evicted);
                    }
                    5..=7 => {
                        let origin = if next() % 3 == 0 {
                            InsertOrigin::Prefetch
                        } else {
                            InsertOrigin::Demand
                        };
                        let dirty = next() % 5 == 0;
                        assert_eq!(
                            classic.insert(node, block, origin, dirty),
                            dense.insert(node, block, origin, dirty)
                        );
                    }
                    8 => {
                        assert_eq!(classic.sweep_dirty(), dense.sweep_dirty());
                    }
                    _ => {
                        let down = next() % 2 == 0;
                        classic.set_degraded(node, down);
                        dense.set_degraded(node, down);
                    }
                }
                assert_eq!(classic.contains(block), dense.contains(block));
                assert_eq!(classic.resident_run(block, 8), dense.resident_run(block, 8));
                assert_eq!(classic.resident_blocks(), dense.resident_blocks());
                assert_eq!(classic.meta_probes(), dense.meta_probes());
            }
            classic.finalize();
            dense.finalize();
            assert_eq!(classic.stats(), dense.stats());
        }
    }

    #[test]
    fn duplicate_insert_is_refresh_not_growth() {
        let mut c = PafsCache::new(1, 2);
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        c.insert(n(0), b(0, 1), InsertOrigin::Demand, false);
        // Re-insert block 0 (e.g. a racing fetch): refreshes recency.
        c.insert(n(0), b(0, 0), InsertOrigin::Demand, false);
        let ev = c.insert(n(0), b(0, 2), InsertOrigin::Demand, false);
        assert_eq!(ev[0].block, b(0, 1), "block 1 is now the LRU victim");
    }
}
