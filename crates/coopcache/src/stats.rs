//! Cache statistics.

use lapobs::{Event, Nanos, Recorder};

/// Counters kept by both cooperative caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses served from the requester's own buffers.
    pub local_hits: u64,
    /// Demand accesses served from another node's buffers.
    pub remote_hits: u64,
    /// Demand accesses that missed the whole cooperative cache.
    pub misses: u64,
    /// Blocks inserted on behalf of demand fetches / write-allocates.
    pub demand_inserts: u64,
    /// Blocks inserted by the prefetcher.
    pub prefetch_inserts: u64,
    /// Prefetched blocks that were later used by a demand access
    /// (each block counted once per prefetch insertion).
    pub prefetch_used: u64,
    /// Prefetched blocks evicted (or still resident at finalize)
    /// without ever being used — materialised miss-predictions.
    pub prefetch_wasted: u64,
    /// Total evictions.
    pub evictions: u64,
    /// Evictions of dirty blocks (each costs a disk write).
    pub dirty_evictions: u64,
    /// xFS only: singlet blocks forwarded to a peer (N-chance).
    pub forwards: u64,
    /// xFS only: singlet blocks dropped after exhausting recirculation.
    pub forward_drops: u64,
    /// xFS only: duplicate copies invalidated by writes.
    pub invalidations: u64,
}

impl CacheStats {
    /// Demand accesses observed.
    pub fn accesses(&self) -> u64 {
        self.local_hits + self.remote_hits + self.misses
    }

    /// Overall hit ratio (local + remote).
    pub fn hit_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            (self.local_hits + self.remote_hits) as f64 / a as f64
        }
    }

    /// Register all counters (plus the derived ratios) under
    /// `prefix.` in a metrics registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry, prefix: &str) {
        reg.counter(format!("{prefix}.local_hits"), self.local_hits);
        reg.counter(format!("{prefix}.remote_hits"), self.remote_hits);
        reg.counter(format!("{prefix}.misses"), self.misses);
        reg.counter(format!("{prefix}.demand_inserts"), self.demand_inserts);
        reg.counter(format!("{prefix}.prefetch_inserts"), self.prefetch_inserts);
        reg.counter(format!("{prefix}.prefetch_used"), self.prefetch_used);
        reg.counter(format!("{prefix}.prefetch_wasted"), self.prefetch_wasted);
        reg.counter(format!("{prefix}.evictions"), self.evictions);
        reg.counter(format!("{prefix}.dirty_evictions"), self.dirty_evictions);
        reg.counter(format!("{prefix}.forwards"), self.forwards);
        reg.counter(format!("{prefix}.forward_drops"), self.forward_drops);
        reg.counter(format!("{prefix}.invalidations"), self.invalidations);
        reg.gauge(format!("{prefix}.hit_ratio"), self.hit_ratio());
        reg.gauge(
            format!("{prefix}.mispredict_ratio"),
            self.mispredict_ratio(),
        );
    }

    /// Emit events for the coordination traffic (forwards, forward
    /// drops, invalidations) that happened between the `before`
    /// snapshot and this one. The block-level outcomes (hits, misses,
    /// inserts, evictions) are emitted directly by the caller, which
    /// sees them per access; the coordination counters are only
    /// observable through the stats, hence this delta hook.
    pub fn emit_delta<R: Recorder>(&self, before: &CacheStats, t: Nanos, rec: &mut R) {
        if !rec.enabled() {
            return;
        }
        let forwards = self.forwards - before.forwards;
        if forwards > 0 {
            rec.record(
                t,
                Event::CacheForward {
                    count: forwards as u32,
                },
            );
        }
        let drops = self.forward_drops - before.forward_drops;
        if drops > 0 {
            rec.record(
                t,
                Event::CacheForwardDrop {
                    count: drops as u32,
                },
            );
        }
        let invalidations = self.invalidations - before.invalidations;
        if invalidations > 0 {
            rec.record(
                t,
                Event::CacheInvalidate {
                    count: invalidations as u32,
                },
            );
        }
    }

    /// Fraction of prefetched blocks that were never used, judged over
    /// the blocks whose fate is decided (used or wasted). This is the
    /// paper's miss-prediction ratio (§5.2).
    pub fn mispredict_ratio(&self) -> f64 {
        let judged = self.prefetch_used + self.prefetch_wasted;
        if judged == 0 {
            0.0
        } else {
            self.prefetch_wasted as f64 / judged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            local_hits: 6,
            remote_hits: 2,
            misses: 2,
            prefetch_used: 3,
            prefetch_wasted: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 10);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert!((s.mispredict_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        assert_eq!(CacheStats::default().mispredict_ratio(), 0.0);
    }
}
