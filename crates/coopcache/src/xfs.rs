//! The xFS-style cooperative cache: serverless, per-node LRU caches
//! with manager-mediated remote hits and N-chance forwarding.

use std::cell::Cell;
use std::collections::BTreeSet;

use ioworkload::{BlockId, NodeId};

use crate::dense::{BlockPool, HolderTable, MetaLayout};
use crate::lru::{LruPool, Replacement};
use crate::stats::CacheStats;
use crate::{AccessOutcome, CooperativeCache, Evicted, InsertOrigin, Lookup};

/// xFS-style cooperative cache (Anderson et al., SOSP'95; cooperative
/// caching per Dahlin et al., OSDI'94).
///
/// "In this system, each node is allowed to make its own decisions.
/// These servers only contact a manager whenever an external help is
/// needed" (§4). The model:
///
/// * every node has its **own LRU cache** of `blocks_per_node` buffers;
/// * a **manager** records which nodes hold which blocks; a local miss
///   that some other node can serve becomes a *remote hit* and leaves a
///   **local duplicate** behind (that is how xFS clients cache data
///   they read);
/// * on eviction, a block that is the **last cached copy** (a
///   *singlet*) is forwarded to a random peer instead of being dropped,
///   up to `n_chance` times (N-chance forwarding); the receiving node
///   makes room by discarding its own LRU block *without* forwarding it
///   (no ripples);
/// * a write **invalidates** every other copy (manager-driven
///   coherence) and dirties the writer's local copy.
///
/// Duplicates and per-node autonomy are the point: they are what makes
/// a *global* linear prefetch limit unimplementable on xFS without
/// "modifying the general philosophy" of the system (§4), so the
/// simulator instantiates one prefetcher per *(node, file)* instead of
/// per *file* — and shared files get parallel, duplicated prefetch
/// streams (Figures 5 and 9).
///
/// ```
/// use coopcache::{CooperativeCache, InsertOrigin, Lookup, XfsCache};
/// use coopcache::{BlockId, FileId, NodeId};
///
/// let mut cache = XfsCache::new(4, 128);
/// let block = BlockId::new(FileId(0), 7);
/// cache.insert(NodeId(0), block, InsertOrigin::Demand, false);
/// // A remote hit leaves a local duplicate behind:
/// assert_eq!(
///     cache.access(NodeId(1), block, false).lookup,
///     Lookup::RemoteHit { holder: NodeId(0) }
/// );
/// assert_eq!(cache.access(NodeId(1), block, false).lookup, Lookup::LocalHit);
/// assert_eq!(cache.resident_blocks(), 2);
/// ```
pub struct XfsCache {
    pools: Vec<BlockPool>,
    /// block -> set of nodes holding a copy (ascending-node iteration
    /// order on either layout, for determinism).
    holders: HolderTable,
    /// Nodes currently disconnected from the cooperative cache
    /// (degraded mode): excluded from holder lookups and forwarding,
    /// and themselves reduced to local-only operation.
    down: BTreeSet<u32>,
    blocks_per_node: u64,
    n_chance: u8,
    rng_state: u64,
    stats: CacheStats,
    /// Metadata probes (`meta_probes`); `Cell` because `contains*`
    /// take `&self`. The probe sequence is deterministic, so the count
    /// is a valid hard-gated profile counter.
    probes: Cell<u64>,
}

impl XfsCache {
    /// Default recirculation count used by the cooperative-caching
    /// literature (Dahlin's "N-chance" with N = 2).
    pub const DEFAULT_N_CHANCE: u8 = 2;

    /// Build a cache of `nodes` nodes with `blocks_per_node` buffers
    /// each, with the default N-chance depth and forwarding seed.
    pub fn new(nodes: u32, blocks_per_node: u64) -> Self {
        Self::with_options(nodes, blocks_per_node, Self::DEFAULT_N_CHANCE, 0x9E3779B9)
    }

    /// Build with explicit N-chance depth and RNG seed for forwarding
    /// targets.
    pub fn with_options(nodes: u32, blocks_per_node: u64, n_chance: u8, seed: u64) -> Self {
        Self::with_layout(nodes, blocks_per_node, n_chance, seed, MetaLayout::Dense)
    }

    /// Build with an explicit metadata layout. [`MetaLayout::Dense`]
    /// (the default everywhere else) and [`MetaLayout::Classic`]
    /// produce bit-identical results; the equivalence tests drive both.
    pub fn with_layout(
        nodes: u32,
        blocks_per_node: u64,
        n_chance: u8,
        seed: u64,
        layout: MetaLayout,
    ) -> Self {
        assert!(nodes > 0 && blocks_per_node > 0);
        XfsCache {
            pools: (0..nodes)
                .map(|_| BlockPool::with_policy(layout, Replacement::Lru))
                .collect(),
            holders: HolderTable::new(layout),
            down: BTreeSet::new(),
            blocks_per_node,
            n_chance,
            rng_state: seed | 1,
            stats: CacheStats::default(),
            probes: Cell::new(0),
        }
    }

    fn nodes(&self) -> u32 {
        self.pools.len() as u32
    }

    /// xorshift64*: deterministic, dependency-free forwarding targets.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick_peer(&mut self, not: NodeId) -> Option<NodeId> {
        // Degraded mode: down peers cannot receive forwarded singlets.
        // With no node down the candidate list is 0..n minus `not`, so
        // the index drawn here maps exactly as the pre-fault code did —
        // zero-fault runs stay bit-identical.
        let candidates: Vec<u32> = (0..self.nodes())
            .filter(|&i| i != not.0 && !self.down.contains(&i))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let r = (self.next_rand() % candidates.len() as u64) as usize;
        Some(NodeId(candidates[r]))
    }

    fn register(&mut self, node: NodeId, block: BlockId) {
        self.holders.insert(block, node);
    }

    fn unregister(&mut self, node: NodeId, block: BlockId) {
        self.holders.remove(block, node);
    }

    /// Make room in `node`'s pool for one incoming block, applying
    /// N-chance forwarding to evicted singlets.
    fn make_room(&mut self, node: NodeId, out: &mut Vec<Evicted>) {
        while self.pools[node.0 as usize].len() as u64 >= self.blocks_per_node {
            let (block, meta) = self.pools[node.0 as usize].pop_lru().expect("capacity > 0");
            self.unregister(node, block);
            let is_singlet = !self.holders.contains_key(block);
            if is_singlet && meta.recirc < self.n_chance {
                if let Some(peer) = self.pick_peer(node) {
                    self.stats.forwards += 1;
                    // The receiving node discards its own LRU block
                    // without forwarding it further (no ripples).
                    while self.pools[peer.0 as usize].len() as u64 >= self.blocks_per_node {
                        let (victim, vmeta) =
                            self.pools[peer.0 as usize].pop_lru().expect("capacity > 0");
                        self.unregister(peer, victim);
                        out.push(LruPool::account_eviction(&mut self.stats, victim, &vmeta));
                    }
                    let mut fwd = meta;
                    fwd.owner = peer;
                    fwd.recirc += 1;
                    self.pools[peer.0 as usize].insert(block, fwd);
                    self.register(peer, block);
                    continue;
                }
            }
            // Drop (write back if dirty).
            if is_singlet {
                self.stats.forward_drops += 1;
            }
            out.push(LruPool::account_eviction(&mut self.stats, block, &meta));
        }
    }

    fn insert_local(
        &mut self,
        node: NodeId,
        block: BlockId,
        dirty: bool,
        prefetched: bool,
        out: &mut Vec<Evicted>,
    ) {
        if self.pools[node.0 as usize].contains(block) {
            self.pools[node.0 as usize].refresh(block, dirty, !prefetched);
            return;
        }
        self.make_room(node, out);
        // fresh_meta already encodes used = !prefetched.
        let meta = LruPool::fresh_meta(node, dirty, prefetched);
        self.pools[node.0 as usize].insert(block, meta);
        self.register(node, block);
    }

    /// Invalidate every copy of `block` except the one on `keep`.
    fn invalidate_others(&mut self, keep: NodeId, block: BlockId, out: &mut Vec<Evicted>) {
        let holders = self.holders.holders_except(block, keep.0);
        for h in holders {
            let node = NodeId(h);
            if let Some(meta) = self.pools[h as usize].remove(block) {
                self.unregister(node, block);
                self.stats.invalidations += 1;
                let wasted = meta.prefetched && !meta.used;
                if wasted {
                    self.stats.prefetch_wasted += 1;
                }
                // Invalidated copies are dropped without write-back:
                // the writer's copy supersedes their contents.
                out.push(Evicted {
                    block,
                    dirty: false,
                    wasted_prefetch: wasted,
                });
            }
        }
    }
}

impl CooperativeCache for XfsCache {
    fn access(&mut self, node: NodeId, block: BlockId, write: bool) -> AccessOutcome {
        self.probes.set(self.probes.get() + 1);
        let mut evicted = Vec::new();
        // Local?
        if let Some(before) = self.pools[node.0 as usize].touch(block, write) {
            if before.prefetched && !before.used {
                self.stats.prefetch_used += 1;
            }
            self.stats.local_hits += 1;
            if write {
                self.invalidate_others(node, block, &mut evicted);
            }
            return AccessOutcome {
                lookup: Lookup::LocalHit,
                evicted,
            };
        }
        // Remote? A down requester is cut off from the manager and
        // cannot see remote copies (local-only fallback); down holders
        // cannot serve.
        let holder = if self.down.contains(&node.0) {
            None
        } else {
            self.holders.first_holder_up(block, &self.down).map(NodeId)
        };
        if let Some(holder) = holder {
            self.stats.remote_hits += 1;
            // Credit prefetch usage on the serving copy.
            if let Some(before) = self.pools[holder.0 as usize].touch(block, false) {
                if before.prefetched && !before.used {
                    self.stats.prefetch_used += 1;
                }
            }
            if write {
                // Take ownership locally; other copies are stale.
                self.insert_local(node, block, true, false, &mut evicted);
                self.invalidate_others(node, block, &mut evicted);
            } else {
                // Reads leave a local duplicate behind.
                self.insert_local(node, block, false, false, &mut evicted);
            }
            return AccessOutcome {
                lookup: Lookup::RemoteHit { holder },
                evicted,
            };
        }
        self.stats.misses += 1;
        AccessOutcome {
            lookup: Lookup::Miss,
            evicted,
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        self.holders.contains_key(block)
    }

    fn contains_local(&self, node: NodeId, block: BlockId) -> bool {
        self.probes.set(self.probes.get() + 1);
        self.pools[node.0 as usize].contains(block)
    }

    fn resident_run(&self, block: BlockId, max: u32) -> u32 {
        // One range query against the holder registry = one metadata
        // probe (the dense layout answers it from presence bitmaps).
        self.probes.set(self.probes.get() + 1);
        self.holders.resident_run(block, max)
    }

    fn insert(
        &mut self,
        node: NodeId,
        block: BlockId,
        origin: InsertOrigin,
        dirty: bool,
    ) -> Vec<Evicted> {
        self.probes.set(self.probes.get() + 1);
        let mut out = Vec::new();
        if !self.pools[node.0 as usize].contains(block) {
            match origin {
                InsertOrigin::Demand => self.stats.demand_inserts += 1,
                InsertOrigin::Prefetch => self.stats.prefetch_inserts += 1,
            }
        }
        self.insert_local(
            node,
            block,
            dirty,
            origin == InsertOrigin::Prefetch,
            &mut out,
        );
        if dirty {
            self.invalidate_others(node, block, &mut out);
        }
        out
    }

    fn set_degraded(&mut self, node: NodeId, down: bool) {
        if down {
            self.down.insert(node.0);
        } else {
            self.down.remove(&node.0);
        }
    }

    fn wipe_node(&mut self, node: NodeId) -> u64 {
        // The node crashed: its buffers are gone, so nothing can be
        // forwarded (no N-chance for wiped singlets) or written back.
        // Each dropped copy is unregistered from the manager and runs
        // through the regular eviction accounting.
        let mut wiped = 0u64;
        while let Some((block, meta)) = self.pools[node.0 as usize].pop_lru() {
            self.unregister(node, block);
            LruPool::account_eviction(&mut self.stats, block, &meta);
            wiped += 1;
        }
        wiped
    }

    fn check_integrity(&self) -> Result<(), String> {
        let s = &self.stats;
        let resident = self.resident_blocks();
        // Copies appear via counted inserts and via the duplicate (or
        // ownership-taking) copy every remote hit leaves behind; they
        // disappear via evictions and write invalidations. Forwards
        // are residency-neutral (the receiver's own victim is counted
        // as an eviction).
        let gains = s.demand_inserts + s.prefetch_inserts + s.remote_hits;
        let losses = s.evictions + s.invalidations;
        if gains < losses || gains - losses != resident {
            return Err(format!(
                "xfs copy conservation broken: demand_inserts {} + prefetch_inserts {} \
                 + remote_hits {} - evictions {} - invalidations {} != resident {resident}",
                s.demand_inserts, s.prefetch_inserts, s.remote_hits, s.evictions, s.invalidations
            ));
        }
        let mut total = 0u64;
        for (i, pool) in self.pools.iter().enumerate() {
            let node = NodeId(i as u32);
            if pool.len() as u64 > self.blocks_per_node {
                return Err(format!(
                    "xfs node {i} over capacity: {} > {}",
                    pool.len(),
                    self.blocks_per_node
                ));
            }
            let mut err = None;
            pool.for_each(&mut |block, meta| {
                if err.is_some() {
                    return;
                }
                if meta.owner != node {
                    err = Some(format!(
                        "xfs copy of file {} block {} in node {i}'s pool tagged owner {}",
                        block.file.0, block.index, meta.owner.0
                    ));
                } else if !self.holders.holds(block, node.0) {
                    err = Some(format!(
                        "xfs node {i} holds file {} block {} but the manager has no record",
                        block.file.0, block.index
                    ));
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            total += pool.len() as u64;
        }
        let registered = self.holders.total_registrations();
        if registered != total {
            return Err(format!(
                "xfs manager registry disagrees with pools: {registered} registrations, \
                 {total} resident copies"
            ));
        }
        Ok(())
    }

    fn sweep_dirty(&mut self) -> Vec<BlockId> {
        let mut set = BTreeSet::new();
        for pool in &mut self.pools {
            set.extend(pool.sweep_dirty());
        }
        set.into_iter().collect()
    }

    fn finalize(&mut self) {
        for pool in &self.pools {
            self.stats.prefetch_wasted += pool.count_unused_prefetched();
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity_blocks(&self) -> u64 {
        self.nodes() as u64 * self.blocks_per_node
    }

    fn resident_blocks(&self) -> u64 {
        self.pools.iter().map(|p| p.len() as u64).sum()
    }

    fn meta_probes(&self) -> u64 {
        self.probes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioworkload::FileId;

    fn b(i: u64) -> BlockId {
        BlockId::new(FileId(0), i)
    }
    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn local_then_remote_hit_with_duplication() {
        let mut c = XfsCache::new(3, 4);
        assert_eq!(c.access(n(0), b(1), false).lookup, Lookup::Miss);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        assert_eq!(c.access(n(0), b(1), false).lookup, Lookup::LocalHit);
        // Node 1 reads: remote hit, and a duplicate appears locally.
        assert_eq!(
            c.access(n(1), b(1), false).lookup,
            Lookup::RemoteHit { holder: n(0) }
        );
        assert!(c.contains_local(n(1), b(1)));
        assert!(c.contains_local(n(0), b(1)));
        assert_eq!(c.resident_blocks(), 2, "duplicates consume capacity");
        // Next access from node 1 is local.
        assert_eq!(c.access(n(1), b(1), false).lookup, Lookup::LocalHit);
    }

    #[test]
    fn per_node_capacity_is_enforced() {
        let mut c = XfsCache::new(2, 2);
        for i in 0..10 {
            c.insert(n(0), b(i), InsertOrigin::Demand, false);
        }
        // Node 0 never exceeds its 2 buffers; forwarded singlets may
        // land on node 1 (also capped at 2).
        assert!(c.pools[0].len() <= 2);
        assert!(c.pools[1].len() <= 2);
        assert!(c.resident_blocks() <= 4);
    }

    #[test]
    fn singlet_is_forwarded_not_dropped() {
        let mut c = XfsCache::new(2, 1);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        // Inserting b(2) evicts b(1), which is a singlet: forwarded to
        // node 1 rather than dropped.
        let ev = c.insert(n(0), b(2), InsertOrigin::Demand, false);
        assert!(c.contains(b(1)), "singlet kept alive on the peer");
        assert!(c.contains_local(n(1), b(1)));
        assert_eq!(c.stats().forwards, 1);
        assert!(ev.is_empty());
    }

    #[test]
    fn recirculation_is_bounded() {
        // One node only: forwarding impossible; but also test the
        // recirc counter with 2 nodes by ping-ponging a block.
        let mut c = XfsCache::with_options(2, 1, 1, 7);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.insert(n(0), b(2), InsertOrigin::Demand, false); // b1 forwarded (recirc 1)
        assert!(c.contains(b(1)));
        // Now evict it from node 1: recirc exhausted, dropped.
        c.insert(n(1), b(3), InsertOrigin::Demand, false);
        assert!(!c.contains(b(1)));
        assert_eq!(c.stats().forward_drops, 1);
    }

    #[test]
    fn duplicate_eviction_is_silent_drop() {
        let mut c = XfsCache::new(2, 2);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.access(n(1), b(1), false); // duplicate on node 1
                                     // Fill node 1 so its duplicate of b(1) gets evicted.
        c.insert(n(1), b(2), InsertOrigin::Demand, false);
        c.insert(n(1), b(3), InsertOrigin::Demand, false);
        // b(1) still cached on node 0 (the duplicate was not a singlet,
        // so it was dropped without forwarding).
        assert!(c.contains_local(n(0), b(1)));
        assert_eq!(c.stats().forwards, 0);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut c = XfsCache::new(3, 4);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.access(n(1), b(1), false); // duplicate on node 1
        assert_eq!(c.resident_blocks(), 2);
        c.access(n(1), b(1), true); // node 1 writes
        assert_eq!(c.stats().invalidations, 1);
        assert!(!c.contains_local(n(0), b(1)));
        assert!(c.contains_local(n(1), b(1)));
        assert_eq!(c.sweep_dirty(), vec![b(1)]);
    }

    #[test]
    fn write_miss_is_write_allocate() {
        let mut c = XfsCache::new(2, 2);
        assert_eq!(c.access(n(0), b(1), true).lookup, Lookup::Miss);
        c.insert(n(0), b(1), InsertOrigin::Demand, true);
        assert_eq!(c.sweep_dirty(), vec![b(1)]);
    }

    #[test]
    fn remote_write_takes_ownership() {
        let mut c = XfsCache::new(2, 2);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        let out = c.access(n(1), b(1), true);
        assert_eq!(out.lookup, Lookup::RemoteHit { holder: n(0) });
        assert!(c.contains_local(n(1), b(1)));
        assert!(!c.contains_local(n(0), b(1)), "old copy invalidated");
        assert_eq!(c.sweep_dirty(), vec![b(1)]);
    }

    #[test]
    fn prefetch_usage_credited_across_nodes() {
        let mut c = XfsCache::new(2, 4);
        c.insert(n(0), b(1), InsertOrigin::Prefetch, false);
        // Remote demand read uses the prefetched copy.
        assert_eq!(
            c.access(n(1), b(1), false).lookup,
            Lookup::RemoteHit { holder: n(0) }
        );
        assert_eq!(c.stats().prefetch_used, 1);
        c.finalize();
        assert_eq!(c.stats().prefetch_wasted, 0);
    }

    #[test]
    fn single_node_cluster_drops_singlets() {
        let mut c = XfsCache::new(1, 1);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        let ev = c.insert(n(0), b(2), InsertOrigin::Demand, false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].block, b(1));
        assert!(!c.contains(b(1)));
    }

    #[test]
    fn referenced_blocks_regain_recirculation_chances() {
        // n_chance = 1: a block forwarded once would be dropped on its
        // next eviction — unless it was referenced in between, which
        // resets its recirculation count (Dahlin's N-chance counts
        // forwards since the last reference).
        let mut c = XfsCache::with_options(2, 1, 1, 7);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.insert(n(0), b(2), InsertOrigin::Demand, false); // b1 forwarded to node 1
        assert!(c.contains_local(n(1), b(1)));
        // Reference it on node 1: recirc resets.
        assert_eq!(c.access(n(1), b(1), false).lookup, Lookup::LocalHit);
        // Evict it from node 1: it earns another forward instead of a drop.
        c.insert(n(1), b(3), InsertOrigin::Demand, false);
        assert!(
            c.contains(b(1)),
            "referenced singlet must be forwarded again"
        );
        assert_eq!(c.stats().forwards, 2);
        assert_eq!(c.stats().forward_drops, 0);
    }

    #[test]
    fn down_holder_cannot_serve_remote_hits() {
        let mut c = XfsCache::new(3, 4);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.set_degraded(n(0), true);
        assert_eq!(c.access(n(1), b(1), false).lookup, Lookup::Miss);
        // Recovery restores service; the copy survived the outage.
        c.set_degraded(n(0), false);
        assert_eq!(
            c.access(n(1), b(1), false).lookup,
            Lookup::RemoteHit { holder: n(0) }
        );
    }

    #[test]
    fn down_requester_falls_back_to_local_only() {
        let mut c = XfsCache::new(2, 4);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        c.set_degraded(n(1), true);
        // No remote lookup while disconnected...
        assert_eq!(c.access(n(1), b(1), false).lookup, Lookup::Miss);
        // ...but its own buffers keep working (local-only mode).
        c.insert(n(1), b(2), InsertOrigin::Demand, false);
        assert_eq!(c.access(n(1), b(2), false).lookup, Lookup::LocalHit);
    }

    #[test]
    fn forwarding_skips_down_peers() {
        let mut c = XfsCache::new(3, 1);
        c.set_degraded(n(1), true);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        // Evicting the singlet must forward it to node 2 — node 1 is
        // down and cannot receive copies.
        c.insert(n(0), b(2), InsertOrigin::Demand, false);
        assert!(c.contains_local(n(2), b(1)));
        assert!(!c.contains_local(n(1), b(1)));
        assert_eq!(c.stats().forwards, 1);
    }

    #[test]
    fn all_peers_down_drops_singlet() {
        let mut c = XfsCache::new(2, 1);
        c.set_degraded(n(1), true);
        c.insert(n(0), b(1), InsertOrigin::Demand, false);
        let ev = c.insert(n(0), b(2), InsertOrigin::Demand, false);
        assert_eq!(ev.len(), 1, "nowhere to forward: dropped");
        assert!(!c.contains(b(1)));
        assert_eq!(c.stats().forward_drops, 1);
    }

    /// Classic and dense layouts must be observably identical on a
    /// randomized mixed workload: same lookups, same evictions, same
    /// stats, same forwarding RNG consumption.
    #[test]
    fn dense_layout_matches_classic_layout() {
        for seed in [3u64, 11, 1234567] {
            let mut classic = XfsCache::with_layout(4, 3, 2, seed, MetaLayout::Classic);
            let mut dense = XfsCache::with_layout(4, 3, 2, seed, MetaLayout::Dense);
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for _ in 0..3000 {
                let node = n((next() % 4) as u32);
                let block = b(next() % 40);
                match next() % 10 {
                    0..=4 => {
                        let write = next() % 4 == 0;
                        let (co, do_) = (
                            classic.access(node, block, write),
                            dense.access(node, block, write),
                        );
                        assert_eq!(co.lookup, do_.lookup);
                        assert_eq!(co.evicted, do_.evicted);
                    }
                    5..=7 => {
                        let origin = if next() % 3 == 0 {
                            InsertOrigin::Prefetch
                        } else {
                            InsertOrigin::Demand
                        };
                        let dirty = next() % 5 == 0;
                        assert_eq!(
                            classic.insert(node, block, origin, dirty),
                            dense.insert(node, block, origin, dirty)
                        );
                    }
                    8 => {
                        assert_eq!(classic.sweep_dirty(), dense.sweep_dirty());
                    }
                    _ => {
                        let down = next() % 2 == 0;
                        classic.set_degraded(node, down);
                        dense.set_degraded(node, down);
                    }
                }
                assert_eq!(classic.contains(block), dense.contains(block));
                assert_eq!(
                    classic.contains_local(node, block),
                    dense.contains_local(node, block)
                );
                assert_eq!(classic.resident_run(block, 8), dense.resident_run(block, 8));
                assert_eq!(classic.resident_blocks(), dense.resident_blocks());
                assert_eq!(classic.meta_probes(), dense.meta_probes());
            }
            classic.finalize();
            dense.finalize();
            assert_eq!(classic.stats(), dense.stats());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut c = XfsCache::with_options(4, 2, 2, seed);
            for i in 0..20 {
                c.insert(n((i % 4) as u32), b(i), InsertOrigin::Demand, false);
            }
            let resident: Vec<bool> = (0..20).map(|i| c.contains(b(i))).collect();
            (resident, c.stats().forwards)
        };
        assert_eq!(run(42), run(42));
    }
}
