//! Property-based tests for the cooperative caches.

use coopcache::{
    AccessOutcome, BlockId, CooperativeCache, FileId, InsertOrigin, LocalOnlyCache, Lookup, NodeId,
    PafsCache, Replacement, XfsCache,
};
use proptest::prelude::*;

/// A random cache operation.
#[derive(Clone, Copy, Debug)]
enum CacheOp {
    Read(u32, u64),
    Write(u32, u64),
    InsertDemand(u32, u64),
    InsertPrefetch(u32, u64),
    Sweep,
}

fn ops_strategy(nodes: u32, blocks: u64, len: usize) -> impl Strategy<Value = Vec<CacheOp>> {
    let node = 0..nodes;
    let blk = 0..blocks;
    prop::collection::vec(
        (0..5u8, node, blk).prop_map(|(k, n, b)| match k {
            0 => CacheOp::Read(n, b),
            1 => CacheOp::Write(n, b),
            2 => CacheOp::InsertDemand(n, b),
            3 => CacheOp::InsertPrefetch(n, b),
            _ => CacheOp::Sweep,
        }),
        1..=len,
    )
}

/// Drive a cache through an op sequence, asserting invariants after
/// every step. On a miss during Read/Write we model the fill the
/// simulator would do (insert after fetch).
fn exercise<C: CooperativeCache>(cache: &mut C, ops: &[CacheOp]) -> Result<(), TestCaseError> {
    let mut disk_writes = 0u64;
    for &op in ops {
        match op {
            CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                let write = matches!(op, CacheOp::Write(..));
                let node = NodeId(n);
                let block = BlockId::new(FileId(0), b);
                let AccessOutcome { lookup, evicted } = cache.access(node, block, write);
                for e in &evicted {
                    if e.dirty {
                        disk_writes += 1;
                    }
                }
                if lookup == Lookup::Miss {
                    let ev = cache.insert(node, block, InsertOrigin::Demand, write);
                    for e in &ev {
                        if e.dirty {
                            disk_writes += 1;
                        }
                    }
                    prop_assert!(cache.contains(block), "fill must make block resident");
                }
            }
            CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) => {
                let origin = if matches!(op, CacheOp::InsertPrefetch(..)) {
                    InsertOrigin::Prefetch
                } else {
                    InsertOrigin::Demand
                };
                let ev = cache.insert(NodeId(n), BlockId::new(FileId(0), b), origin, false);
                for e in &ev {
                    if e.dirty {
                        disk_writes += 1;
                    }
                }
            }
            CacheOp::Sweep => {
                disk_writes += cache.sweep_dirty().len() as u64;
            }
        }
        prop_assert!(
            cache.resident_blocks() <= cache.capacity_blocks(),
            "over capacity: {} > {}",
            cache.resident_blocks(),
            cache.capacity_blocks()
        );
        let s = *cache.stats();
        prop_assert_eq!(s.accesses(), s.local_hits + s.remote_hits + s.misses);
        prop_assert!(s.prefetch_used + s.prefetch_wasted <= s.prefetch_inserts + s.accesses());
    }
    let _ = disk_writes;
    cache.finalize();
    let s = *cache.stats();
    prop_assert!(
        s.prefetch_used + s.prefetch_wasted >= s.prefetch_used,
        "sanity"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pafs_invariants(
        nodes in 1u32..6,
        per_node in 1u64..8,
        ops in ops_strategy(6, 32, 200),
    ) {
        let mut cache = PafsCache::new(nodes, per_node);
        let ops: Vec<CacheOp> = ops
            .into_iter()
            .map(|op| clamp_node(op, nodes))
            .collect();
        exercise(&mut cache, &ops)?;
    }

    #[test]
    fn xfs_invariants(
        nodes in 1u32..6,
        per_node in 1u64..8,
        n_chance in 0u8..4,
        seed in 0u64..1000,
        ops in ops_strategy(6, 32, 200),
    ) {
        let mut cache = XfsCache::with_options(nodes, per_node, n_chance, seed);
        let ops: Vec<CacheOp> = ops
            .into_iter()
            .map(|op| clamp_node(op, nodes))
            .collect();
        exercise(&mut cache, &ops)?;
    }

    /// After any op sequence, every dirty block reported by a sweep was
    /// actually written at some point, and a second sweep is empty.
    #[test]
    fn sweep_is_idempotent(
        ops in ops_strategy(4, 16, 100),
    ) {
        let mut cache = XfsCache::new(4, 4);
        let mut written = std::collections::HashSet::new();
        for &op in &ops {
            match op {
                CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                    let write = matches!(op, CacheOp::Write(..));
                    let block = BlockId::new(FileId(0), b);
                    if write {
                        written.insert(block);
                    }
                    let out = cache.access(NodeId(n), block, write);
                    if out.lookup == Lookup::Miss {
                        cache.insert(NodeId(n), block, InsertOrigin::Demand, write);
                    }
                }
                CacheOp::InsertDemand(n, b) => {
                    cache.insert(NodeId(n), BlockId::new(FileId(0), b), InsertOrigin::Demand, false);
                }
                CacheOp::InsertPrefetch(n, b) => {
                    cache.insert(NodeId(n), BlockId::new(FileId(0), b), InsertOrigin::Prefetch, false);
                }
                CacheOp::Sweep => {}
            }
        }
        let dirty = cache.sweep_dirty();
        for b in &dirty {
            prop_assert!(written.contains(b), "{b:?} swept but never written");
        }
        prop_assert!(cache.sweep_dirty().is_empty());
    }

    #[test]
    fn local_only_invariants(
        nodes in 1u32..6,
        per_node in 1u64..8,
        fifo in proptest::bool::ANY,
        ops in ops_strategy(6, 32, 200),
    ) {
        let policy = if fifo { Replacement::Fifo } else { Replacement::Lru };
        let mut cache = LocalOnlyCache::with_policy(nodes, per_node, policy);
        let ops: Vec<CacheOp> = ops
            .into_iter()
            .map(|op| clamp_node(op, nodes))
            .collect();
        exercise(&mut cache, &ops)?;
        // Cooperation-free: remote hits are impossible.
        prop_assert_eq!(cache.stats().remote_hits, 0);
        prop_assert_eq!(cache.stats().forwards, 0);
    }

    /// PAFS with FIFO replacement keeps all capacity/accounting
    /// invariants of the LRU version.
    #[test]
    fn pafs_fifo_invariants(
        nodes in 1u32..6,
        per_node in 1u64..8,
        ops in ops_strategy(6, 32, 200),
    ) {
        let mut cache = PafsCache::with_policy(nodes, per_node, Replacement::Fifo);
        let ops: Vec<CacheOp> = ops
            .into_iter()
            .map(|op| clamp_node(op, nodes))
            .collect();
        exercise(&mut cache, &ops)?;
    }

    /// PAFS never holds two copies of a block: resident count equals
    /// the number of distinct resident blocks.
    #[test]
    fn pafs_single_copy(ops in ops_strategy(4, 16, 150)) {
        let mut cache = PafsCache::new(4, 4);
        let mut model = std::collections::HashSet::new();
        for &op in &ops {
            if let CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) = op {
                cache.insert(NodeId(n), BlockId::new(FileId(0), b), InsertOrigin::Demand, false);
                model.insert(b);
            }
        }
        let distinct = (0..16u64)
            .filter(|&b| cache.contains(BlockId::new(FileId(0), b)))
            .count() as u64;
        prop_assert_eq!(cache.resident_blocks(), distinct);
    }
}

fn clamp_node(op: CacheOp, nodes: u32) -> CacheOp {
    match op {
        CacheOp::Read(n, b) => CacheOp::Read(n % nodes, b),
        CacheOp::Write(n, b) => CacheOp::Write(n % nodes, b),
        CacheOp::InsertDemand(n, b) => CacheOp::InsertDemand(n % nodes, b),
        CacheOp::InsertPrefetch(n, b) => CacheOp::InsertPrefetch(n % nodes, b),
        CacheOp::Sweep => CacheOp::Sweep,
    }
}

proptest! {
    /// Global and per-node residency views agree for every cache:
    /// `contains(b)` iff some node's `contains_local(n, b)`.
    #[test]
    fn residency_views_are_coherent(
        which in 0u8..3,
        ops in ops_strategy(4, 24, 150),
    ) {
        let nodes = 4u32;
        let mut cache: Box<dyn CooperativeCache> = match which {
            0 => Box::new(PafsCache::new(nodes, 4)),
            1 => Box::new(XfsCache::new(nodes, 4)),
            _ => Box::new(LocalOnlyCache::new(nodes, 4)),
        };
        for &op in &ops {
            match op {
                CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                    let write = matches!(op, CacheOp::Write(..));
                    let block = BlockId::new(FileId(0), b);
                    let out = cache.access(NodeId(n % nodes), block, write);
                    if out.lookup == Lookup::Miss {
                        cache.insert(NodeId(n % nodes), block, InsertOrigin::Demand, write);
                    }
                }
                CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) => {
                    cache.insert(NodeId(n % nodes), BlockId::new(FileId(0), b), InsertOrigin::Demand, false);
                }
                CacheOp::Sweep => {
                    cache.sweep_dirty();
                }
            }
        }
        for b in 0..24u64 {
            let block = BlockId::new(FileId(0), b);
            let any_local = (0..nodes).any(|n| cache.contains_local(NodeId(n), block));
            prop_assert_eq!(
                cache.contains(block),
                any_local,
                "incoherent residency for block {}",
                b
            );
        }
    }
}
