//! Property tests for the cooperative caches, driven by the in-repo
//! seeded PRNG (no external dependencies).

use coopcache::{
    AccessOutcome, BlockId, CooperativeCache, FileId, InsertOrigin, LocalOnlyCache, Lookup,
    PafsCache, Replacement, XfsCache,
};
use ioworkload::util::Rng64;

/// A random cache operation.
#[derive(Clone, Copy, Debug)]
enum CacheOp {
    Read(u32, u64),
    Write(u32, u64),
    InsertDemand(u32, u64),
    InsertPrefetch(u32, u64),
    Sweep,
}

fn random_ops(rng: &mut Rng64, nodes: u32, blocks: u64, max_len: usize) -> Vec<CacheOp> {
    let len = rng.range_u64(1, max_len as u64) as usize;
    (0..len)
        .map(|_| {
            let k = rng.range_u32(0, 4) as u8;
            let n = rng.range_u32(0, nodes - 1);
            let b = rng.range_u64(0, blocks - 1);
            match k {
                0 => CacheOp::Read(n, b),
                1 => CacheOp::Write(n, b),
                2 => CacheOp::InsertDemand(n, b),
                3 => CacheOp::InsertPrefetch(n, b),
                _ => CacheOp::Sweep,
            }
        })
        .collect()
}

/// Drive a cache through an op sequence, asserting invariants after
/// every step. On a miss during Read/Write we model the fill the
/// simulator would do (insert after fetch).
fn exercise<C: CooperativeCache>(cache: &mut C, ops: &[CacheOp], ctx: &str) {
    for &op in ops {
        match op {
            CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                let write = matches!(op, CacheOp::Write(..));
                let node = NodeId(n);
                let block = BlockId::new(FileId(0), b);
                let AccessOutcome { lookup, .. } = cache.access(node, block, write);
                if lookup == Lookup::Miss {
                    cache.insert(node, block, InsertOrigin::Demand, write);
                    assert!(
                        cache.contains(block),
                        "fill must make block resident ({ctx})"
                    );
                }
            }
            CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) => {
                let origin = if matches!(op, CacheOp::InsertPrefetch(..)) {
                    InsertOrigin::Prefetch
                } else {
                    InsertOrigin::Demand
                };
                cache.insert(NodeId(n), BlockId::new(FileId(0), b), origin, false);
            }
            CacheOp::Sweep => {
                cache.sweep_dirty();
            }
        }
        assert!(
            cache.resident_blocks() <= cache.capacity_blocks(),
            "over capacity: {} > {} ({ctx})",
            cache.resident_blocks(),
            cache.capacity_blocks()
        );
        let s = *cache.stats();
        assert_eq!(
            s.accesses(),
            s.local_hits + s.remote_hits + s.misses,
            "{ctx}"
        );
        assert!(
            s.prefetch_used + s.prefetch_wasted <= s.prefetch_inserts + s.accesses(),
            "{ctx}"
        );
    }
    cache.finalize();
}

use coopcache::NodeId;

#[test]
fn pafs_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case);
        let nodes = rng.range_u32(1, 5);
        let per_node = rng.range_u64(1, 7);
        let ops = random_ops(&mut rng, nodes, 32, 200);
        let mut cache = PafsCache::new(nodes, per_node);
        exercise(&mut cache, &ops, &format!("pafs case {case}"));
    }
}

#[test]
fn xfs_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0xF5);
        let nodes = rng.range_u32(1, 5);
        let per_node = rng.range_u64(1, 7);
        let n_chance = rng.range_u32(0, 3) as u8;
        let seed = rng.range_u64(0, 999);
        let ops = random_ops(&mut rng, nodes, 32, 200);
        let mut cache = XfsCache::with_options(nodes, per_node, n_chance, seed);
        exercise(&mut cache, &ops, &format!("xfs case {case}"));
    }
}

/// After any op sequence, every dirty block reported by a sweep was
/// actually written at some point, and a second sweep is empty.
#[test]
fn sweep_is_idempotent() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x53E);
        let ops = random_ops(&mut rng, 4, 16, 100);
        let mut cache = XfsCache::new(4, 4);
        let mut written = std::collections::HashSet::new();
        for &op in &ops {
            match op {
                CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                    let write = matches!(op, CacheOp::Write(..));
                    let block = BlockId::new(FileId(0), b);
                    if write {
                        written.insert(block);
                    }
                    let out = cache.access(NodeId(n), block, write);
                    if out.lookup == Lookup::Miss {
                        cache.insert(NodeId(n), block, InsertOrigin::Demand, write);
                    }
                }
                CacheOp::InsertDemand(n, b) => {
                    cache.insert(
                        NodeId(n),
                        BlockId::new(FileId(0), b),
                        InsertOrigin::Demand,
                        false,
                    );
                }
                CacheOp::InsertPrefetch(n, b) => {
                    cache.insert(
                        NodeId(n),
                        BlockId::new(FileId(0), b),
                        InsertOrigin::Prefetch,
                        false,
                    );
                }
                CacheOp::Sweep => {}
            }
        }
        let dirty = cache.sweep_dirty();
        for b in &dirty {
            assert!(
                written.contains(b),
                "{b:?} swept but never written (case {case})"
            );
        }
        assert!(cache.sweep_dirty().is_empty(), "case {case}");
    }
}

#[test]
fn local_only_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x10CA1);
        let nodes = rng.range_u32(1, 5);
        let per_node = rng.range_u64(1, 7);
        let fifo = rng.chance(0.5);
        let ops = random_ops(&mut rng, nodes, 32, 200);
        let policy = if fifo {
            Replacement::Fifo
        } else {
            Replacement::Lru
        };
        let mut cache = LocalOnlyCache::with_policy(nodes, per_node, policy);
        exercise(&mut cache, &ops, &format!("local-only case {case}"));
        // Cooperation-free: remote hits are impossible.
        assert_eq!(cache.stats().remote_hits, 0, "case {case}");
        assert_eq!(cache.stats().forwards, 0, "case {case}");
    }
}

/// PAFS with FIFO replacement keeps all capacity/accounting invariants
/// of the LRU version.
#[test]
fn pafs_fifo_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0xF1F0);
        let nodes = rng.range_u32(1, 5);
        let per_node = rng.range_u64(1, 7);
        let ops = random_ops(&mut rng, nodes, 32, 200);
        let mut cache = PafsCache::with_policy(nodes, per_node, Replacement::Fifo);
        exercise(&mut cache, &ops, &format!("pafs-fifo case {case}"));
    }
}

/// PAFS never holds two copies of a block: resident count equals the
/// number of distinct resident blocks.
#[test]
fn pafs_single_copy() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x51C);
        let ops = random_ops(&mut rng, 4, 16, 150);
        let mut cache = PafsCache::new(4, 4);
        for &op in &ops {
            if let CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) = op {
                cache.insert(
                    NodeId(n),
                    BlockId::new(FileId(0), b),
                    InsertOrigin::Demand,
                    false,
                );
            }
        }
        let distinct = (0..16u64)
            .filter(|&b| cache.contains(BlockId::new(FileId(0), b)))
            .count() as u64;
        assert_eq!(cache.resident_blocks(), distinct, "case {case}");
    }
}

/// Global and per-node residency views agree for every cache:
/// `contains(b)` iff some node's `contains_local(n, b)`.
#[test]
fn residency_views_are_coherent() {
    for case in 0..96u64 {
        let mut rng = Rng64::new(case ^ 0xC0DE);
        let which = rng.range_u32(0, 2);
        let nodes = 4u32;
        let ops = random_ops(&mut rng, nodes, 24, 150);
        let mut cache: Box<dyn CooperativeCache> = match which {
            0 => Box::new(PafsCache::new(nodes, 4)),
            1 => Box::new(XfsCache::new(nodes, 4)),
            _ => Box::new(LocalOnlyCache::new(nodes, 4)),
        };
        for &op in &ops {
            match op {
                CacheOp::Read(n, b) | CacheOp::Write(n, b) => {
                    let write = matches!(op, CacheOp::Write(..));
                    let block = BlockId::new(FileId(0), b);
                    let out = cache.access(NodeId(n % nodes), block, write);
                    if out.lookup == Lookup::Miss {
                        cache.insert(NodeId(n % nodes), block, InsertOrigin::Demand, write);
                    }
                }
                CacheOp::InsertDemand(n, b) | CacheOp::InsertPrefetch(n, b) => {
                    cache.insert(
                        NodeId(n % nodes),
                        BlockId::new(FileId(0), b),
                        InsertOrigin::Demand,
                        false,
                    );
                }
                CacheOp::Sweep => {
                    cache.sweep_dirty();
                }
            }
        }
        for b in 0..24u64 {
            let block = BlockId::new(FileId(0), b);
            let any_local = (0..nodes).any(|n| cache.contains_local(NodeId(n), block));
            assert_eq!(
                cache.contains(block),
                any_local,
                "incoherent residency for block {b} (case {case})"
            );
        }
    }
}

/// `insert_run` must be exactly member-wise `insert` in ascending
/// order, on both cooperative backends: same residency, same victims
/// in the same sequence.
#[test]
fn insert_run_equals_memberwise_inserts_on_both_backends() {
    use ioworkload::NodeId;

    for which in 0..2u8 {
        let mut run_cache: Box<dyn CooperativeCache> = match which {
            0 => Box::new(PafsCache::new(2, 3)),
            _ => Box::new(XfsCache::new(2, 3)),
        };
        let mut one_cache: Box<dyn CooperativeCache> = match which {
            0 => Box::new(PafsCache::new(2, 3)),
            _ => Box::new(XfsCache::new(2, 3)),
        };
        // Pre-populate so the run forces evictions.
        for b in 0..4u64 {
            run_cache.insert(
                NodeId(0),
                BlockId::new(FileId(9), b),
                InsertOrigin::Demand,
                false,
            );
            one_cache.insert(
                NodeId(0),
                BlockId::new(FileId(9), b),
                InsertOrigin::Demand,
                false,
            );
        }

        let first = BlockId::new(FileId(1), 8);
        let run_victims = run_cache.insert_run(NodeId(1), first, 4, InsertOrigin::Prefetch, false);
        let mut one_victims = Vec::new();
        for i in 0..4u64 {
            one_victims.extend(one_cache.insert(
                NodeId(1),
                BlockId::new(FileId(1), first.index + i),
                InsertOrigin::Prefetch,
                false,
            ));
        }
        assert_eq!(
            run_victims, one_victims,
            "backend {which}: victim streams differ"
        );
        assert!(
            !run_victims.is_empty(),
            "backend {which}: expected evictions"
        );
        for i in 0..4u64 {
            let member = BlockId::new(FileId(1), first.index + i);
            assert_eq!(
                run_cache.contains(member),
                one_cache.contains(member),
                "backend {which}: residency differs for member {i}"
            );
        }
        assert_eq!(run_cache.resident_blocks(), one_cache.resident_blocks());
    }
}
