//! Scratch probe used during development to inspect simulated numbers.
//! (Not part of the public examples; see the workspace `examples/`.)

use ioworkload::charisma::CharismaParams;
use ioworkload::sprite::SpriteParams;
use lap_core::{run_simulation, CacheSystem, SimConfig};
use prefetch::PrefetchConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("charisma");
    let scale = args.get(2).map(String::as_str).unwrap_or("small");

    let (wl, system_nodes, disks) = match (which, scale) {
        ("charisma", "paper") => (CharismaParams::paper().generate(42), 128, 16),
        ("charisma", _) => (CharismaParams::small().generate(42), 8, 4),
        ("sprite", "paper") => (SpriteParams::paper().generate(42), 50, 8),
        _ => (SpriteParams::small().generate(42), 6, 3),
    };
    let s = wl.stats();
    println!(
        "workload {}: {} reads, {} writes, mean req {:.1} blk, {} files (mean {:.0} blk), sharing {:.0}%, compute {:.0}s",
        wl.name, s.reads, s.writes, s.mean_read_blocks, s.files, s.mean_file_blocks,
        s.shared_file_fraction * 100.0, s.compute_seconds
    );

    for sys in [CacheSystem::Pafs, CacheSystem::Xfs] {
        for mb in [1u64, 2, 4, 8, 16] {
            for pf in PrefetchConfig::paper_suite() {
                let mut cfg = if which == "charisma" {
                    SimConfig::pm(sys, pf, mb)
                } else {
                    SimConfig::now(sys, pf, mb)
                };
                cfg.machine.nodes = system_nodes;
                cfg.machine.disks = disks;
                let t0 = std::time::Instant::now();
                let r = run_simulation(cfg, wl.clone());
                println!(
                    "{}  [{} ms wall, sim {:.0}s, util {:.2}]",
                    r.summary(),
                    t0.elapsed().as_millis(),
                    r.sim_seconds,
                    r.disk_utilization
                );
            }
            println!();
        }
    }
}
