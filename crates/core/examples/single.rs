//! One-run probe (development aid).
use ioworkload::charisma::CharismaParams;
use lap_core::{run_simulation, CacheSystem, SimConfig};
use prefetch::PrefetchConfig;

fn main() {
    let wl = CharismaParams::paper().generate(42);
    for (sys, pf, mb) in [
        (CacheSystem::Xfs, PrefetchConfig::np(), 1),
        (CacheSystem::Xfs, PrefetchConfig::ln_agr_oba(), 1),
        (CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(1), 1),
        (CacheSystem::Xfs, PrefetchConfig::is_ppm(1), 1),
        (CacheSystem::Xfs, PrefetchConfig::np(), 16),
        (CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(1), 16),
        (CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1),
        (CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 16),
        (CacheSystem::Pafs, PrefetchConfig::np(), 16),
    ] {
        let cfg = SimConfig::pm(sys, pf, mb);
        let t = std::time::Instant::now();
        let r = run_simulation(cfg, wl.clone());
        eprintln!(
            "{} [{} ms, pf_issued {}]",
            r.summary(),
            t.elapsed().as_millis(),
            r.prefetch.issued
        );
    }
}
