//! Machine and simulation configuration (Table 1 of the paper).

use coopcache::{MetaLayout, Replacement};
use devmodel::{DiskGeometry, DiskModel, DiskModelKind, DiskSched, NetModelKind};
use faultkit::FaultPlan;
use prefetch::PrefetchConfig;
use simcheck::CheckMode;
use simkit::{QueueBackend, SimDuration};

/// Hardware parameters of the simulated machine — the two columns of
/// Table 1.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// File-system block size in bytes ("Buffer Size"/"Disk-Block Size").
    pub block_size: u64,
    /// Local memory bandwidth, bytes/s ("Memory Bandwidth").
    pub memory_bandwidth: f64,
    /// Interconnection network bandwidth, bytes/s.
    pub network_bandwidth: f64,
    /// Startup of a communication within a node.
    pub local_startup: SimDuration,
    /// Startup of a communication that crosses the network.
    pub remote_startup: SimDuration,
    /// Startup of a memory copy within a node.
    pub local_copy_startup: SimDuration,
    /// Startup of a memory copy that crosses the network.
    pub remote_copy_startup: SimDuration,
    /// Number of disks (shared by the whole machine).
    pub disks: u32,
    /// Disk bandwidth, bytes/s.
    pub disk_bandwidth: f64,
    /// Seek + rotational latency charged per read operation.
    pub disk_read_seek: SimDuration,
    /// Seek + rotational latency charged per write operation.
    pub disk_write_seek: SimDuration,
    /// Disk cost model. `Fixed` (the default) reproduces the constants
    /// above bit-for-bit; `Geometry` prices each operation from arm
    /// position and platter phase.
    pub disk_model: DiskModelKind,
    /// Within-priority-class dispatch order of the disk queues.
    pub disk_sched: DiskSched,
    /// Network link cost model. `Fixed` (the default) is the flat
    /// `startup + size/bandwidth` of Table 1.
    pub net_model: NetModelKind,
    /// Unit the aggressive prefetch walker fetches in: single blocks
    /// (the paper's rule) or whole extents of the disk layout (one
    /// multi-block job per extent, still one unit of linear limit).
    pub prefetch_granularity: PrefetchGranularity,
}

/// What the aggressive walker fetches per linear-limit unit.
///
/// The paper's linear limit allows one *block* per file in flight.
/// Extent granularity reinterprets the unit as one *extent* — the
/// contiguous layout unit of the geometry disk model — so the walker
/// may have up to `extent_blocks` blocks in flight as long as they
/// travel in a single multi-block disk job paying one positioning
/// cost. Non-aggressive configurations (NP, plain OBA/IS_PPM) ignore
/// this knob, and so does the fixed disk model (its extent size is 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrefetchGranularity {
    /// One block per issue — the paper's §3.1 rule, bit-identical to
    /// the behaviour before extents existed.
    #[default]
    Block,
    /// One extent per issue: contiguous member blocks of the extent
    /// are batched into a single multi-block disk job.
    Extent,
}

impl PrefetchGranularity {
    /// Name used in reports and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PrefetchGranularity::Block => "block",
            PrefetchGranularity::Extent => "extent",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(PrefetchGranularity::Block),
            "extent" => Some(PrefetchGranularity::Extent),
            _ => None,
        }
    }
}

impl MachineConfig {
    /// The parallel machine (PM) column of Table 1: 128 nodes, 16
    /// disks, 500 MB/s memory, 200 MB/s network, 2/10 µs startups.
    pub fn pm() -> Self {
        MachineConfig {
            nodes: 128,
            block_size: 8 * 1024,
            memory_bandwidth: 500.0e6,
            network_bandwidth: 200.0e6,
            local_startup: SimDuration::from_micros(2),
            remote_startup: SimDuration::from_micros(10),
            local_copy_startup: SimDuration::from_micros(1),
            remote_copy_startup: SimDuration::from_micros(5),
            disks: 16,
            disk_bandwidth: 10.0e6,
            disk_read_seek: SimDuration::from_millis_f64(10.5),
            disk_write_seek: SimDuration::from_millis_f64(12.5),
            disk_model: DiskModelKind::Fixed,
            disk_sched: DiskSched::Fifo,
            net_model: NetModelKind::Fixed,
            prefetch_granularity: PrefetchGranularity::Block,
        }
    }

    /// The network-of-workstations (NOW) column of Table 1: 50 nodes, 8
    /// disks, 40 MB/s memory, 19.4 MB/s network, 50/100 µs startups.
    pub fn now() -> Self {
        MachineConfig {
            nodes: 50,
            block_size: 8 * 1024,
            memory_bandwidth: 40.0e6,
            network_bandwidth: 19.4e6,
            local_startup: SimDuration::from_micros(50),
            remote_startup: SimDuration::from_micros(100),
            local_copy_startup: SimDuration::from_micros(25),
            remote_copy_startup: SimDuration::from_micros(50),
            disks: 8,
            disk_bandwidth: 10.0e6,
            disk_read_seek: SimDuration::from_millis_f64(10.5),
            disk_write_seek: SimDuration::from_millis_f64(12.5),
            disk_model: DiskModelKind::Fixed,
            disk_sched: DiskSched::Fifo,
            net_model: NetModelKind::Fixed,
            prefetch_granularity: PrefetchGranularity::Block,
        }
    }

    /// A tiny machine for unit tests (4 nodes, 2 disks, PM-like speeds).
    pub fn tiny() -> Self {
        MachineConfig {
            nodes: 4,
            disks: 2,
            ..Self::pm()
        }
    }

    /// Switch the disks to the calibrated geometry model appropriate
    /// for this machine (see [`DiskGeometry::pm`]): under FIFO its
    /// *mean* service matches the fixed constants, so headline results
    /// stay comparable while order and placement start to matter.
    pub fn with_geometry(mut self) -> Self {
        self.disk_model = DiskModelKind::Geometry(DiskGeometry::pm());
        self
    }

    /// Like [`with_geometry`](Self::with_geometry) but with an
    /// `extent_blocks`-block layout extent (see
    /// [`DiskGeometry::pm_extent`]). Extents larger than one block make
    /// sequential runs cheaper than the calibrated per-block constants
    /// — compare extent results against the `extent_blocks = 1` column
    /// of the same geometry, not against the fixed model
    /// (docs/CALIBRATION.md).
    pub fn with_geometry_extent(mut self, extent_blocks: u64) -> Self {
        self.disk_model = DiskModelKind::Geometry(DiskGeometry::pm_extent(extent_blocks));
        self
    }

    /// Instantiate one disk's service model from the configured kind.
    pub fn build_disk_model(&self) -> DiskModel {
        self.disk_model.build(
            self.disk_read_service(),
            self.disk_write_service(),
            SimDuration::transfer(self.block_size, self.disk_bandwidth),
            self.block_size,
        )
    }

    /// Disk service time for reading one block.
    pub fn disk_read_service(&self) -> SimDuration {
        self.disk_read_seek + SimDuration::transfer(self.block_size, self.disk_bandwidth)
    }

    /// Disk service time for writing one block.
    pub fn disk_write_service(&self) -> SimDuration {
        self.disk_write_seek + SimDuration::transfer(self.block_size, self.disk_bandwidth)
    }

    /// Time to hand `bytes` to a local requester (memory copy).
    pub fn local_transfer(&self, bytes: u64) -> SimDuration {
        self.local_copy_startup
            + self.local_startup
            + SimDuration::transfer(bytes, self.memory_bandwidth)
    }

    /// Time to hand `bytes` to a requester across the network, under
    /// the configured link model. With [`NetModelKind::Fixed`] this is
    /// exactly the Table 1 formula
    /// `remote_copy_startup + remote_startup + bytes / bandwidth`.
    pub fn remote_transfer(&self, bytes: u64) -> SimDuration {
        self.net_model
            .link(
                self.remote_copy_startup + self.remote_startup,
                self.network_bandwidth,
            )
            .transfer_time(bytes)
    }
}

/// Which cache organisation to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheSystem {
    /// PAFS: centralized per-file servers, truly global linear limit,
    /// global coalescing of in-flight fetches.
    Pafs,
    /// xFS: per-node decisions, per-node linear limit, per-node
    /// prefetchers and per-node fetch coalescing — shared files get
    /// duplicated prefetch streams.
    Xfs,
    /// No cooperation at all: independent per-node caches, every miss
    /// goes to disk. A pre-cooperative-caching baseline, kept to show
    /// how much the cooperation itself contributes (extension beyond
    /// the paper's evaluation).
    LocalOnly,
}

impl CacheSystem {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CacheSystem::Pafs => "PAFS",
            CacheSystem::Xfs => "xFS",
            CacheSystem::LocalOnly => "Local",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine hardware.
    pub machine: MachineConfig,
    /// Cooperative-cache system.
    pub system: CacheSystem,
    /// Prefetching algorithm configuration.
    pub prefetch: PrefetchConfig,
    /// "Local cache" size per node, in bytes (the x-axis of every
    /// figure: 1–16 MB).
    pub cache_bytes_per_node: u64,
    /// Period of the fault-tolerance write-back sweep (§5.3); 30 s by
    /// default, like classic Unix-ish sync daemons.
    pub writeback_period: SimDuration,
    /// Simulated time to exclude from metrics (cache warm-up), like the
    /// paper's 10–15 trace hours.
    pub warmup: SimDuration,
    /// Cache replacement policy (ablation; both systems assume LRU).
    pub replacement: Replacement,
    /// Serve prefetches at the lowest disk priority ("prefetching a
    /// block will never be done if other operations are waiting to be
    /// done on the same disk", §4). Disable for the priority ablation:
    /// prefetches then compete head-on with demand reads.
    pub prefetch_priority: bool,
    /// Bucket width of the read-latency time series in
    /// [`SimReport::read_time_series`](crate::SimReport::read_time_series)
    /// (convergence/warm-up analysis). 60 s by default.
    pub metrics_interval: SimDuration,
    /// Deterministic fault plan (`None` or an empty plan = the exact
    /// pre-fault simulation, bit for bit). Faults draw from their own
    /// seeded stream, so a plan never perturbs the workload stream.
    pub fault_plan: Option<FaultPlan>,
    /// Event-queue backend (DESIGN.md §14). `Calendar` (the default)
    /// is O(1) amortized for the near-monotone timestamps a DES
    /// produces; `Heap` is the BinaryHeap reference implementation.
    /// Both deliver events in the same total order, so results are
    /// bit-identical either way.
    pub event_queue: QueueBackend,
    /// Cache-metadata layout (DESIGN.md §14). `Dense` (the default)
    /// uses open-addressed block tables with an intrusive LRU list;
    /// `Classic` is the HashMap + BTreeSet reference implementation.
    /// Bit-identical results either way.
    pub meta_layout: MetaLayout,
    /// Runtime invariant oracle (DESIGN.md §15). `Auto` (the default)
    /// enables it in debug builds — so every `cargo test` checks — and
    /// disables it in release builds. The oracle is observational:
    /// results are bit-identical with it on or off.
    pub check: CheckMode,
}

impl SimConfig {
    /// A run on the PM machine.
    pub fn pm(system: CacheSystem, prefetch: PrefetchConfig, cache_mb: u64) -> Self {
        SimConfig {
            machine: MachineConfig::pm(),
            system,
            prefetch,
            cache_bytes_per_node: cache_mb * 1024 * 1024,
            writeback_period: SimDuration::from_secs(30),
            warmup: SimDuration::ZERO,
            replacement: Replacement::Lru,
            prefetch_priority: true,
            metrics_interval: SimDuration::from_secs(60),
            fault_plan: None,
            event_queue: QueueBackend::Calendar,
            meta_layout: MetaLayout::Dense,
            check: CheckMode::Auto,
        }
    }

    /// A run on the NOW machine.
    pub fn now(system: CacheSystem, prefetch: PrefetchConfig, cache_mb: u64) -> Self {
        SimConfig {
            machine: MachineConfig::now(),
            system,
            prefetch,
            cache_bytes_per_node: cache_mb * 1024 * 1024,
            writeback_period: SimDuration::from_secs(30),
            warmup: SimDuration::ZERO,
            replacement: Replacement::Lru,
            prefetch_priority: true,
            metrics_interval: SimDuration::from_secs(60),
            fault_plan: None,
            event_queue: QueueBackend::Calendar,
            meta_layout: MetaLayout::Dense,
            check: CheckMode::Auto,
        }
    }

    /// Cache capacity per node in blocks.
    pub fn blocks_per_node(&self) -> u64 {
        (self.cache_bytes_per_node / self.machine.block_size).max(1)
    }

    /// Shrink the machine to fit a workload that uses fewer nodes than
    /// the paper preset: the simulation only materialises caches for
    /// nodes the workload touches, so a 128-node machine under an
    /// 8-node zoo workload would mis-state the aggregate cache. Keeps
    /// at least two disks so striping stays meaningful.
    pub fn fit_to_workload(&mut self, workload: &ioworkload::Workload) {
        if workload.nodes < self.machine.nodes {
            self.machine.nodes = workload.nodes;
            self.machine.disks = self.machine.disks.min(workload.nodes.max(2));
        }
    }

    /// A descriptive label: `"PAFS/Ln_Agr_IS_PPM:1 @ 4MB"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{} @ {}MB",
            self.system.name(),
            self.prefetch.paper_name(),
            self.cache_bytes_per_node / (1024 * 1024)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pm_values() {
        let m = MachineConfig::pm();
        assert_eq!(m.nodes, 128);
        assert_eq!(m.disks, 16);
        assert_eq!(m.block_size, 8192);
        // 8 KB at 10 MB/s = 819.2 us; plus 10.5 ms seek.
        assert_eq!(m.disk_read_service().as_nanos(), 10_500_000 + 819_200);
        assert_eq!(m.disk_write_service().as_nanos(), 12_500_000 + 819_200);
    }

    #[test]
    fn table1_now_values() {
        let m = MachineConfig::now();
        assert_eq!(m.nodes, 50);
        assert_eq!(m.disks, 8);
        assert_eq!(m.local_startup.as_micros(), 50);
        assert_eq!(m.remote_startup.as_micros(), 100);
    }

    #[test]
    fn transfer_costs_ordering() {
        let m = MachineConfig::pm();
        // Local transfers must be cheaper than remote ones, and both far
        // cheaper than a disk read.
        let bytes = 8192;
        assert!(m.local_transfer(bytes) < m.remote_transfer(bytes));
        assert!(m.remote_transfer(bytes) < m.disk_read_service());
    }

    #[test]
    fn blocks_per_node() {
        let cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::np(), 4);
        assert_eq!(cfg.blocks_per_node(), 512); // 4 MB / 8 KB
    }

    #[test]
    fn prefetch_granularity_parse_and_default() {
        assert_eq!(
            MachineConfig::pm().prefetch_granularity,
            PrefetchGranularity::Block
        );
        assert_eq!(
            PrefetchGranularity::parse("block"),
            Some(PrefetchGranularity::Block)
        );
        assert_eq!(
            PrefetchGranularity::parse("extent"),
            Some(PrefetchGranularity::Extent)
        );
        assert_eq!(PrefetchGranularity::parse("extents"), None);
        assert_eq!(PrefetchGranularity::Extent.name(), "extent");
    }

    #[test]
    fn with_geometry_extent_sets_the_extent_size() {
        let m = MachineConfig::pm().with_geometry_extent(8);
        assert_eq!(m.disk_model.extent_blocks(), 8);
        assert_eq!(MachineConfig::pm().disk_model.extent_blocks(), 1);
        assert_eq!(
            MachineConfig::pm()
                .with_geometry()
                .disk_model
                .extent_blocks(),
            1
        );
    }

    #[test]
    fn label_format() {
        let cfg = SimConfig::pm(CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(3), 8);
        assert_eq!(cfg.label(), "xFS/Ln_Agr_IS_PPM:3 @ 8MB");
    }
}
