//! # lap-core — the full simulation stack
//!
//! This crate assembles the substrates into the system the paper
//! evaluates:
//!
//! * machine models for the two architectures of Table 1
//!   ([`MachineConfig::pm`] and [`MachineConfig::now`]) — disks modelled
//!   as *seek + size/bandwidth* with demand-over-prefetch priority,
//!   communications as *startup + size/bandwidth* with distinct local
//!   and remote startups;
//! * the [`Simulation`] that replays an [`ioworkload::Workload`]
//!   against a cooperative cache ([`CacheSystem::Pafs`] or
//!   [`CacheSystem::Xfs`]) with any [`prefetch::PrefetchConfig`];
//! * the [`SimReport`] carrying everything Figures 4–11 and Table 2
//!   plot: average read time, disk accesses by kind, writes-per-block,
//!   hit ratios and the miss-prediction ratio.
//!
//! ```
//! use lap_core::{run_simulation, CacheSystem, SimConfig};
//! use ioworkload::charisma::CharismaParams;
//! use prefetch::PrefetchConfig;
//!
//! let mut params = CharismaParams::small();
//! params.nodes = 8;
//! let wl = params.generate(1);
//! let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1);
//! cfg.machine.nodes = 8; // shrink the machine to the workload
//! cfg.machine.disks = 4;
//! let report = run_simulation(cfg, wl);
//! assert!(report.reads > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod metrics;
mod sim;

pub use config::{CacheSystem, MachineConfig, PrefetchGranularity, SimConfig};
pub use coopcache::Replacement;
pub use metrics::{SimReport, TimeBucket};
pub use sim::Simulation;
pub use simcheck::CheckMode;
pub use simprof::{Counters as ProfileCounters, PhaseWall, SimProfile};

/// Convenience: build and run a simulation in one call.
pub fn run_simulation(config: SimConfig, workload: ioworkload::Workload) -> SimReport {
    Simulation::new(config, workload).run()
}

/// Convenience: run a simulation over a shared workload (no deep clone
/// per run — use in parameter sweeps).
pub fn run_simulation_shared(
    config: SimConfig,
    workload: std::sync::Arc<ioworkload::Workload>,
) -> SimReport {
    Simulation::new_shared(config, workload).run()
}

/// Convenience: run a simulation with event tracing enabled, returning
/// the report together with the captured trace (export it with
/// [`lapobs::chrome::export`]).
pub fn run_simulation_traced(
    config: SimConfig,
    workload: std::sync::Arc<ioworkload::Workload>,
) -> (SimReport, lapobs::TraceRecorder) {
    Simulation::with_recorder(config, workload, lapobs::TraceRecorder::new()).run_traced()
}

/// Convenience: build and run a simulation with self-profiling,
/// returning the report (bit-identical to [`run_simulation`]'s)
/// together with the [`SimProfile`]. Construction is timed as the
/// profile's `setup` phase.
pub fn run_simulation_profiled(
    config: SimConfig,
    workload: ioworkload::Workload,
) -> (SimReport, SimProfile) {
    let t0 = std::time::Instant::now();
    let sim = Simulation::new(config, workload);
    let setup = t0.elapsed();
    let (report, _rec, mut profile) = sim.run_profiled();
    profile.wall.setup = setup;
    (report, profile)
}
