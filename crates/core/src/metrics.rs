//! Simulation metrics and the final report.

use std::collections::HashMap;

use coopcache::CacheStats;
use ioworkload::BlockId;
use prefetch::PrefetchStats;
use simkit::stats::{LatencyHistogram, Series};
use simkit::{SimDuration, SimTime};

/// Where a completed read's latency went — one duration per span
/// component, summing exactly to the request's end-to-end latency.
///
/// The components mirror the stages a request can spend time in:
/// `cache_lookup` (directory/coordination lookups — priced at zero by
/// the current machine model, kept in the schema so the breakdown is
/// stable if a lookup cost is ever added), disk-queue wait, seek,
/// rotational wait, the on-platter transfer, the final local memory
/// copy, the remote-delivery startup hops (`coordination`), the wire
/// time (`network`), time re-paid on failed attempts plus backoff
/// under an active fault plan (`retry`), and time spent waiting out a
/// disk outage before the fetch failed over (`failover`). The last
/// two are exactly zero without a fault plan.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct SpanBreakdown {
    pub cache_lookup: SimDuration,
    pub queue: SimDuration,
    pub seek: SimDuration,
    pub rotation: SimDuration,
    pub disk_transfer: SimDuration,
    pub transfer: SimDuration,
    pub coordination: SimDuration,
    pub network: SimDuration,
    pub retry: SimDuration,
    pub failover: SimDuration,
}

impl SpanBreakdown {
    /// Sum of every component — must equal the request latency.
    pub fn total(&self) -> SimDuration {
        self.cache_lookup
            + self.queue
            + self.seek
            + self.rotation
            + self.disk_transfer
            + self.transfer
            + self.coordination
            + self.network
            + self.retry
            + self.failover
    }
}

/// How prefetching worked out for one completed read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ReadOutcome {
    /// Every block was cached and none of them came from a prefetch.
    DemandHit,
    /// Every block was cached and at least one was prefetched — the
    /// prefetcher fully hid the disk.
    CoveredByPrefetch,
    /// The read waited on an in-flight prefetch: the prediction was
    /// right but late. The slack is how long the read stalled.
    LatePrefetch,
    /// At least one block needed a fresh demand fetch (or the read
    /// waited on another request's demand fetch).
    Miss,
}

/// Per-component latency histograms plus prefetch-outcome counters,
/// accumulated for every post-warm-up read. Always on — the breakdown
/// is pure arithmetic on state the simulation already tracks, so the
/// traced and untraced paths stay identical.
#[derive(Debug, Default)]
pub(crate) struct SpanMetrics {
    pub cache_lookup: LatencyHistogram,
    pub queue: LatencyHistogram,
    pub seek: LatencyHistogram,
    pub rotation: LatencyHistogram,
    pub disk_transfer: LatencyHistogram,
    pub transfer: LatencyHistogram,
    pub coordination: LatencyHistogram,
    pub network: LatencyHistogram,
    pub retry: LatencyHistogram,
    pub failover: LatencyHistogram,
    /// Stall time of late-prefetch reads only.
    pub late_slack: LatencyHistogram,
    pub demand_hit: u64,
    pub covered: u64,
    pub late: u64,
    pub miss: u64,
}

impl SpanMetrics {
    fn record(&mut self, b: &SpanBreakdown, outcome: ReadOutcome, slack: SimDuration) {
        self.cache_lookup.record(b.cache_lookup);
        self.queue.record(b.queue);
        self.seek.record(b.seek);
        self.rotation.record(b.rotation);
        self.disk_transfer.record(b.disk_transfer);
        self.transfer.record(b.transfer);
        self.coordination.record(b.coordination);
        self.network.record(b.network);
        self.retry.record(b.retry);
        self.failover.record(b.failover);
        match outcome {
            ReadOutcome::DemandHit => self.demand_hit += 1,
            ReadOutcome::CoveredByPrefetch => self.covered += 1,
            ReadOutcome::LatePrefetch => {
                self.late += 1;
                self.late_slack.record(slack);
            }
            ReadOutcome::Miss => self.miss += 1,
        }
    }

    fn register_into(&self, reg: &mut lapobs::Registry) {
        self.cache_lookup.register_into(reg, "span.cache_lookup_us");
        self.queue.register_into(reg, "span.queue_us");
        self.seek.register_into(reg, "span.seek_us");
        self.rotation.register_into(reg, "span.rotation_us");
        self.disk_transfer
            .register_into(reg, "span.disk_transfer_us");
        self.transfer.register_into(reg, "span.transfer_us");
        self.coordination.register_into(reg, "span.coordination_us");
        self.network.register_into(reg, "span.network_us");
        self.retry.register_into(reg, "span.retry_us");
        self.failover.register_into(reg, "span.failover_us");
        self.late_slack.register_into(reg, "prefetch.late_slack_us");
        reg.counter("span.outcome_demand_hit", self.demand_hit);
        reg.counter("span.outcome_covered_by_prefetch", self.covered);
        reg.counter("span.outcome_late_prefetch", self.late);
        reg.counter("span.outcome_miss", self.miss);
    }
}

/// Live metric accumulators, updated by the simulation loop. Samples
/// taken before the warm-up boundary are kept separately and excluded
/// from the headline numbers, like the paper's warm-up hours.
#[derive(Debug)]
pub(crate) struct Metrics {
    pub warmup_end: SimTime,
    /// Bucket width of the read-latency time series.
    pub interval: SimDuration,
    /// Per-interval read-latency series, indexed by bucket number
    /// (includes the warm-up stretch — that is the point: it shows the
    /// warm-up happening).
    pub read_series: Vec<Series>,
    /// Per-request read latency (ms), post-warm-up.
    pub read_time: Series,
    /// Read-latency distribution (post-warm-up), for percentiles.
    pub read_hist: LatencyHistogram,
    /// Per-request read latency during warm-up (reported separately).
    pub read_time_warmup: Series,
    /// Per-request write latency (ms), post-warm-up.
    pub write_time: Series,
    /// Write requests completed during warm-up (count only — warm-up
    /// writes carry no latency statistics, but request-conservation
    /// checks need the total).
    pub warmup_writes: u64,
    /// Disk read operations post-warm-up, split by what issued them.
    pub disk_reads_demand: u64,
    pub disk_reads_prefetch: u64,
    /// Disk write operations post-warm-up.
    pub disk_writes: u64,
    /// Disk operations during warm-up (all kinds).
    pub disk_ops_warmup: u64,
    /// How many times each block was written to disk (post-warm-up) —
    /// Table 2's statistic.
    pub writes_per_block: HashMap<BlockId, u32>,
    /// Prefetch fetches that a demand request joined while in flight
    /// (correct predictions with perfect timing).
    pub prefetch_absorbed: u64,
    /// Demand fetches coalesced onto an already-pending demand fetch.
    pub demand_coalesced: u64,
    /// Per-read latency attribution and prefetch outcomes.
    pub spans: SpanMetrics,
}

impl Metrics {
    pub fn new(warmup_end: SimTime, interval: SimDuration) -> Self {
        Metrics {
            warmup_end,
            interval,
            read_series: Vec::new(),
            read_time: Series::new(),
            read_hist: LatencyHistogram::new(),
            read_time_warmup: Series::new(),
            write_time: Series::new(),
            warmup_writes: 0,
            disk_reads_demand: 0,
            disk_reads_prefetch: 0,
            disk_writes: 0,
            disk_ops_warmup: 0,
            writes_per_block: HashMap::new(),
            prefetch_absorbed: 0,
            demand_coalesced: 0,
            spans: SpanMetrics::default(),
        }
    }

    pub fn warm(&self, now: SimTime) -> bool {
        now >= self.warmup_end
    }

    pub fn record_read(&mut self, now: SimTime, latency: SimDuration) {
        if self.warm(now) {
            self.read_time.record_duration_ms(latency);
            self.read_hist.record(latency);
        } else {
            self.read_time_warmup.record_duration_ms(latency);
        }
        let bucket = (now.as_nanos() / self.interval.as_nanos().max(1)) as usize;
        if bucket >= self.read_series.len() {
            self.read_series.resize_with(bucket + 1, Series::new);
        }
        self.read_series[bucket].record_duration_ms(latency);
    }

    pub fn record_write(&mut self, now: SimTime, latency: SimDuration) {
        if self.warm(now) {
            self.write_time.record_duration_ms(latency);
        } else {
            self.warmup_writes += 1;
        }
    }

    /// Record one completed read's latency attribution, classified by
    /// the request *start* time like [`record_read`](Self::record_read)
    /// (warm-up reads are dropped).
    pub fn record_span(
        &mut self,
        started: SimTime,
        b: &SpanBreakdown,
        outcome: ReadOutcome,
        slack: SimDuration,
    ) {
        if self.warm(started) {
            self.spans.record(b, outcome, slack);
        }
    }

    pub fn record_disk_read(&mut self, now: SimTime, prefetch: bool) {
        if !self.warm(now) {
            self.disk_ops_warmup += 1;
        } else if prefetch {
            self.disk_reads_prefetch += 1;
        } else {
            self.disk_reads_demand += 1;
        }
    }

    pub fn record_disk_write(&mut self, now: SimTime, block: BlockId) {
        if self.warm(now) {
            self.disk_writes += 1;
            *self.writes_per_block.entry(block).or_insert(0) += 1;
        } else {
            self.disk_ops_warmup += 1;
        }
    }

    /// Register the loop-level accumulators into the unified metrics
    /// registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry) {
        self.read_time.register_into(reg, "read.latency_ms");
        self.read_hist.register_into(reg, "read.latency_us");
        self.read_time_warmup
            .register_into(reg, "read.warmup_latency_ms");
        self.write_time.register_into(reg, "write.latency_ms");
        reg.counter("disk.reads_demand", self.disk_reads_demand);
        reg.counter("disk.reads_prefetch", self.disk_reads_prefetch);
        reg.counter("disk.writes", self.disk_writes);
        reg.counter("disk.warmup_ops", self.disk_ops_warmup);
        reg.counter("prefetch.absorbed_in_flight", self.prefetch_absorbed);
        reg.counter("demand.coalesced", self.demand_coalesced);
        self.spans.register_into(reg);
    }
}

/// One bucket of the read-latency time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeBucket {
    /// Bucket start, in simulated seconds.
    pub start_s: f64,
    /// Mean read latency of requests starting in this bucket, ms.
    pub mean_ms: f64,
    /// Requests in the bucket.
    pub reads: u64,
}

/// Final report of one simulation run — everything the paper's figures
/// and tables plot.
///
/// `PartialEq` compares every field, including the metrics registry —
/// the A/B determinism test relies on a traced and an untraced run
/// producing equal reports.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// `"PAFS/Ln_Agr_IS_PPM:1 @ 4MB"`-style label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Mean read latency in milliseconds — the y-axis of Figures 4–7.
    pub avg_read_ms: f64,
    /// Median read latency in ms (upper bucket edge of a log-2
    /// histogram — coarse but distribution-shaped).
    pub read_p50_ms: f64,
    /// 95th-percentile read latency in ms (same caveat).
    pub read_p95_ms: f64,
    /// 99th-percentile read latency in ms (same caveat).
    pub read_p99_ms: f64,
    /// Number of read requests measured.
    pub reads: u64,
    /// Read requests that fell inside the warm-up window (excluded
    /// from all other read statistics).
    pub warmup_reads: u64,
    /// Mean write latency in milliseconds.
    pub avg_write_ms: f64,
    /// Number of write requests measured.
    pub writes: u64,
    /// Write requests that fell inside the warm-up window (excluded
    /// from all other write statistics).
    pub warmup_writes: u64,
    /// Disk reads issued by demand misses.
    pub disk_reads_demand: u64,
    /// Disk reads issued by the prefetcher.
    pub disk_reads_prefetch: u64,
    /// Disk writes (write-back sweeps + dirty evictions).
    pub disk_writes: u64,
    /// Mean number of times a written block was written to disk —
    /// Table 2's statistic.
    pub writes_per_block: f64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Prefetch-engine counters aggregated over all files.
    pub prefetch: PrefetchStats,
    /// Prefetch fetches absorbed by demand requests while in flight.
    pub prefetch_absorbed: u64,
    /// Fraction of prefetched blocks never used (§5.2). Absorbed
    /// fetches count as used.
    pub mispredict_ratio: f64,
    /// Mean disk utilization over the run.
    pub disk_utilization: f64,
    /// Dispatches that drew at least one transient disk error under
    /// the active fault plan (zero without one).
    pub faults_injected: u64,
    /// Disk jobs aborted by an outage and re-queued (timeout-and-
    /// failover events).
    pub failovers: u64,
    /// Total node-seconds spent in degraded mode (summed over nodes).
    pub degraded_s: f64,
    /// Total simulated time, seconds.
    pub sim_seconds: f64,
    /// Read latency per metrics interval over the *whole* run
    /// (including warm-up) — shows cache warm-up and steady state.
    pub read_time_series: Vec<TimeBucket>,
    /// The unified metrics registry: every layer's counters under one
    /// namespace (`read.*`, `disk.*`, `cache.*`, `prefetch.*`,
    /// `disk<N>.*`), exportable as CSV or a human summary.
    pub obs: lapobs::Registry,
}

impl SimReport {
    /// Total disk accesses (the y-axis of Figures 8–11).
    pub fn disk_accesses(&self) -> u64 {
        self.disk_reads_demand + self.disk_reads_prefetch + self.disk_writes
    }

    /// A multi-line, human-readable rendering of every metric (used by
    /// `lapsim --verbose`).
    pub fn render_detailed(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{}", self.summary()).unwrap();
        writeln!(out, "  workload            {}", self.workload).unwrap();
        writeln!(
            out,
            "  reads / writes      {} / {}",
            self.reads, self.writes
        )
        .unwrap();
        writeln!(
            out,
            "  read p50/p95/p99    {:.3} / {:.3} / {:.3} ms",
            self.read_p50_ms, self.read_p95_ms, self.read_p99_ms
        )
        .unwrap();
        writeln!(out, "  warm-up reads       {}", self.warmup_reads).unwrap();
        writeln!(out, "  avg write           {:.3} ms", self.avg_write_ms).unwrap();
        writeln!(
            out,
            "  disk reads          {} demand + {} prefetch",
            self.disk_reads_demand, self.disk_reads_prefetch
        )
        .unwrap();
        writeln!(out, "  disk writes         {}", self.disk_writes).unwrap();
        writeln!(out, "  writes per block    {:.2}", self.writes_per_block).unwrap();
        writeln!(
            out,
            "  hits                {} local + {} remote",
            self.cache.local_hits, self.cache.remote_hits
        )
        .unwrap();
        writeln!(
            out,
            "  hit ratio           {:.2}%",
            self.cache.hit_ratio() * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "  prefetch            {} issued, {} absorbed in flight, {:.1}% fallback",
            self.prefetch.issued,
            self.prefetch_absorbed,
            self.prefetch.fallback_share() * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "  mispredict ratio    {:.2}%",
            self.mispredict_ratio * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "  disk utilization    {:.2}%",
            self.disk_utilization * 100.0
        )
        .unwrap();
        if self.faults_injected > 0 || self.failovers > 0 || self.degraded_s > 0.0 {
            writeln!(
                out,
                "  faults              {} injected, {} failovers, {:.1} node-s degraded",
                self.faults_injected, self.failovers, self.degraded_s
            )
            .unwrap();
        }
        writeln!(out, "  simulated time      {:.1} s", self.sim_seconds).unwrap();
        out
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<32} read {:7.3} ms ({:>8} reads)  disk r/w {:>8}/{:>7}  hit {:5.1}%  mispred {:4.1}%",
            self.label,
            self.avg_read_ms,
            self.reads,
            self.disk_reads_demand + self.disk_reads_prefetch,
            self.disk_writes,
            self.cache.hit_ratio() * 100.0,
            self.mispredict_ratio * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioworkload::FileId;

    #[test]
    fn warmup_boundary_splits_reads() {
        let mut m = Metrics::new(SimTime::from_nanos(1000), SimDuration::from_secs(60));
        m.record_read(SimTime::from_nanos(500), SimDuration::from_millis(2));
        m.record_read(SimTime::from_nanos(1500), SimDuration::from_millis(4));
        assert_eq!(m.read_time.count(), 1);
        assert_eq!(m.read_time_warmup.count(), 1);
        assert!((m.read_time.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disk_counters_split_by_kind_and_warmup() {
        let mut m = Metrics::new(SimTime::from_nanos(10), SimDuration::from_secs(60));
        m.record_disk_read(SimTime::from_nanos(5), false); // warmup
        m.record_disk_read(SimTime::from_nanos(20), false);
        m.record_disk_read(SimTime::from_nanos(20), true);
        m.record_disk_write(SimTime::from_nanos(20), BlockId::new(FileId(0), 1));
        m.record_disk_write(SimTime::from_nanos(30), BlockId::new(FileId(0), 1));
        assert_eq!(m.disk_ops_warmup, 1);
        assert_eq!(m.disk_reads_demand, 1);
        assert_eq!(m.disk_reads_prefetch, 1);
        assert_eq!(m.disk_writes, 2);
        assert_eq!(m.writes_per_block[&BlockId::new(FileId(0), 1)], 2);
    }

    #[test]
    fn report_disk_accesses_sums() {
        let r = SimReport {
            label: "x".into(),
            workload: "w".into(),
            avg_read_ms: 0.0,
            read_p50_ms: 0.0,
            read_p95_ms: 0.0,
            read_p99_ms: 0.0,
            reads: 0,
            warmup_reads: 0,
            avg_write_ms: 0.0,
            writes: 0,
            warmup_writes: 0,
            disk_reads_demand: 3,
            disk_reads_prefetch: 4,
            disk_writes: 5,
            writes_per_block: 0.0,
            cache: CacheStats::default(),
            prefetch: PrefetchStats::default(),
            prefetch_absorbed: 0,
            mispredict_ratio: 0.0,
            disk_utilization: 0.0,
            faults_injected: 0,
            failovers: 0,
            degraded_s: 0.0,
            sim_seconds: 0.0,
            read_time_series: Vec::new(),
            obs: lapobs::Registry::default(),
        };
        assert_eq!(r.disk_accesses(), 12);
        assert!(r.summary().contains("read"));
        let detail = r.render_detailed();
        assert!(detail.contains("hit ratio"));
        assert!(detail.contains("disk reads"));
    }

    #[test]
    fn time_series_buckets_by_interval() {
        let mut m = Metrics::new(SimTime::ZERO, SimDuration::from_secs(10));
        m.record_read(SimTime::from_nanos(1), SimDuration::from_millis(2));
        m.record_read(
            SimTime::ZERO + SimDuration::from_secs(25),
            SimDuration::from_millis(6),
        );
        assert_eq!(m.read_series.len(), 3);
        assert_eq!(m.read_series[0].count(), 1);
        assert_eq!(m.read_series[1].count(), 0);
        assert_eq!(m.read_series[2].count(), 1);
        assert!((m.read_series[2].mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_feeds_percentiles() {
        let mut m = Metrics::new(SimTime::ZERO, SimDuration::from_secs(60));
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 50] {
            m.record_read(SimTime::from_nanos(1), SimDuration::from_millis(ms));
        }
        assert_eq!(m.read_hist.count(), 10);
        // p50 lives in the 1ms bucket, p99 in the 50ms one.
        assert!(m.read_hist.quantile(0.5) < m.read_hist.quantile(0.99));
    }
}
