//! The trace-driven file-system simulation.
//!
//! This module plays the role DIMEMAS plays in the paper: it replays
//! per-process demand traces against a machine model (CPU bursts,
//! network, priority-queued disks) with a cooperative cache and a
//! prefetching subsystem in the middle, and measures what the paper
//! measures — per-request read times and disk traffic.
//!
//! ## Request life cycle
//!
//! A read request touching blocks `B` at time `t0`:
//!
//! 1. every block is classified against the cooperative cache
//!    (local hit / remote hit / miss — the cache updates recency and
//!    prefetch-usage state as a side effect);
//! 2. missing blocks join an in-flight fetch if one exists in their
//!    coalescing scope (global for PAFS, per-node for xFS; a demand
//!    request joining a *prefetch* fetch promotes it to demand priority
//!    on the disk queue), otherwise a demand-priority disk read is
//!    issued;
//! 3. the prefetcher for the file (PAFS: one per file, at the file's
//!    server; xFS: one per (node, file)) observes the request and is
//!    pumped for new prefetch blocks, which are issued at the lowest
//!    disk priority;
//! 4. when the last missing block lands, the data is handed to the
//!    requester (memory copy if everything was local, a network
//!    transfer otherwise) and the request's latency is recorded.
//!
//! Writes are write-allocate with no fetch-on-write: they dirty cache
//! blocks and cost a transfer, but wait for no disk — matching the
//! paper's observation that writes "are not specially affected" (§5).
//! Dirty blocks reach the disk through the periodic write-back sweep
//! (§5.3) and through dirty evictions, at a middle disk priority:
//! behind demand reads (they are not latency-critical) but ahead of
//! prefetches (the paper's rule is only that prefetching never delays
//! other operations).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use coopcache::{
    CacheStats, CooperativeCache, Evicted, InsertOrigin, LocalOnlyCache, Lookup, PafsCache,
    XfsCache,
};
use devmodel::{DiskModel, FaultedModel};
use faultkit::{DiskFaultCtx, FaultState, NetClass};
use ioworkload::{BlockId, FileId, NodeId, Op, ProcId, Workload};
use lapobs::{Event, NoopRecorder, Obs, Recorder, StationId, NO_RID};
use prefetch::{FilePrefetcher, PrefetchStats, Request};
use simkit::{
    DeviceOp, EventQueue, JobSpec, Priority, ServiceCost, ServiceModel, SimDuration, SimTime,
    StartedJob, Station,
};

use crate::config::{CacheSystem, PrefetchGranularity, SimConfig};
use crate::metrics::{Metrics, ReadOutcome, SimReport, SpanBreakdown};

/// Run one oracle call and escalate a violation to a panic carrying
/// the simulator's state dump. Expands to nothing observable when the
/// oracle is disabled (`self.oracle` is `None`).
macro_rules! oracle_check {
    ($self:ident, $now:expr, |$o:ident| $call:expr) => {
        if let Some($o) = $self.oracle.as_mut() {
            let r = $call;
            if let Err(e) = r {
                $self.invariant_violation(e, $now);
            }
        }
    };
}

/// Disk-queue priorities: demand reads first, write-backs next,
/// prefetches last.
const PRIO_DEMAND: Priority = Priority(0);
const PRIO_WRITEBACK: Priority = Priority(1);
const PRIO_PREFETCH: Priority = Priority(2);

/// How far ahead one `resident_run` range query looks when the
/// aggressive prefetch walk checks residency. Matches the engine's
/// cached-run cutoff (64 consecutive resident blocks stop the walk),
/// so a full rescan costs one range probe instead of 64 point probes.
/// Any value ≥ 1 is behaviourally equivalent — this only sizes the
/// query, never changes its answer.
const WALK_RUN_PROBE: u32 = 64;

/// Identifier of one outstanding (multi-block) application request.
type ReqId = usize;

/// Coalescing scope of an in-flight fetch: global for PAFS (the file
/// server sees everything), per-node for xFS (nodes cannot see each
/// other's in-flight fetches — the source of duplicated prefetch
/// traffic on shared files).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FetchKey {
    scope: Option<NodeId>,
    block: BlockId,
}

/// Identity of a prefetch engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PfKey {
    node: Option<NodeId>,
    file: FileId,
}

/// Dispatch record of an in-flight fetch's disk service, captured when
/// the job starts — the raw material for attributing a waiting read's
/// latency to queueing vs. mechanical time once the fetch lands.
#[derive(Clone, Copy)]
struct FetchSvc {
    /// When the disk began serving the fetch.
    begin: SimTime,
    /// The priced service, including any mechanical breakdown.
    cost: ServiceCost,
}

/// An in-flight disk fetch.
struct PendingFetch {
    /// Issued by the prefetcher (still counts as a prefetch unless a
    /// demand request absorbs it).
    prefetch: bool,
    /// A demand request joined while in flight.
    demanded: bool,
    /// Engine to notify on completion (prefetch fetches only).
    pf_owner: Option<PfKey>,
    /// Node whose buffer receives the block.
    node: NodeId,
    /// Requests waiting on this block.
    waiters: Vec<ReqId>,
    /// Service record, filled when the disk starts the job (`None`
    /// while the job still waits in queue).
    svc: Option<FetchSvc>,
    /// Time this fetch lost to disk outages (abort-and-requeue plus
    /// time spent queued behind a held disk) — attributed to the
    /// `failover` span component of the reads that waited on it.
    failover: SimDuration,
}

/// Work items on a disk queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DiskJob {
    Fetch(FetchKey),
    /// An extent-granular prefetch batch: `count` contiguous blocks of
    /// one file starting at `first`, served as a single multi-block job
    /// (one positioning cost, then a contiguous transfer). Each member
    /// block has its own [`PendingFetch`] entry so demand coalescing
    /// and absorption work per block; completion lands all members at
    /// once.
    FetchRun {
        first: FetchKey,
        count: u32,
    },
    Write(BlockId),
}

impl DiskJob {
    /// Does this job fetch `key`'s block (alone or inside a run)?
    fn fetches(&self, key: FetchKey) -> bool {
        match self {
            DiskJob::Fetch(k) => *k == key,
            DiskJob::FetchRun { first, count } => {
                first.scope == key.scope
                    && first.block.file == key.block.file
                    && key.block.index >= first.block.index
                    && key.block.index < first.block.index + u64::from(*count)
            }
            DiskJob::Write(_) => false,
        }
    }
}

/// The member fetch keys of an extent run, in block order.
fn run_keys(first: FetchKey, count: u32) -> impl Iterator<Item = FetchKey> {
    (0..u64::from(count)).map(move |i| FetchKey {
        scope: first.scope,
        block: BlockId::new(first.block.file, first.block.index + i),
    })
}

/// Simulation events.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Continue replaying a process trace.
    Resume(ProcId),
    /// A disk finished its current job. `seq` is the disk's completion
    /// sequence number at scheduling time: an outage abort bumps the
    /// counter, so a completion whose `seq` no longer matches is stale
    /// — the job it announces was aborted and must be requeued instead.
    DiskDone {
        disk: usize,
        job: DiskJob,
        seq: u64,
    },
    /// A request's last transfer finished; deliver to the process.
    RequestDone(ReqId),
    /// Periodic write-back sweep.
    Sweep,
    /// A disk outage window starts / ends.
    DiskDown {
        disk: usize,
    },
    DiskUp {
        disk: usize,
    },
    /// A node outage window starts / ends (degraded-mode caching).
    NodeDown {
        node: u32,
    },
    NodeUp {
        node: u32,
    },
}

struct ProcState {
    node: NodeId,
    next_op: usize,
    done: bool,
}

struct ReqState {
    proc: ProcId,
    started: SimTime,
    bytes: u64,
    remaining: usize,
    all_local: bool,
    /// Request id stamped on this read's trace events.
    rid: u32,
    /// At least one block needed a fresh demand fetch.
    fresh_miss: bool,
    /// At least one block joined an in-flight *prefetch* fetch — a
    /// correct-but-late prediction.
    joined_prefetch: bool,
}

/// The simulator. Build with [`Simulation::new`], run with
/// [`Simulation::run`] (or use [`crate::run_simulation`]).
///
/// The recorder type parameter selects the observability backend: the
/// default [`NoopRecorder`] compiles every emission site away (the
/// untraced simulation pays nothing), while
/// [`Simulation::with_recorder`] + [`run_traced`](Simulation::run_traced)
/// capture the full event stream.
pub struct Simulation<R: Recorder = NoopRecorder> {
    config: SimConfig,
    workload: Arc<Workload>,
    queue: EventQueue<Ev>,
    cache: Box<dyn CooperativeCache>,
    disks: Vec<Station<DiskJob>>,
    /// One service model per disk, indexed like `disks`. Owns the arm
    /// position / platter state under the geometry model; prices the
    /// fixed constants otherwise.
    disk_models: Vec<DiskModel>,
    pending: HashMap<FetchKey, PendingFetch>,
    engines: HashMap<PfKey, FilePrefetcher>,
    procs: Vec<ProcState>,
    reqs: Vec<ReqState>,
    metrics: Metrics,
    file_blocks: Vec<u64>,
    /// Layout extent of the disk model in blocks (1 under the fixed
    /// model). Drives both the extent-aware striping in
    /// [`disk_of`](Self::disk_of) and the batch size of extent-granular
    /// prefetching.
    extent_blocks: u64,
    active_procs: usize,
    /// Next request id: allocated densely, one per demand read
    /// (including pure cache hits), so every trace event of one read
    /// shares an id.
    next_rid: u32,
    /// Fault-injection state. `None` when the config carries no plan
    /// (or an empty one): every fault code path below is then skipped
    /// and the simulation is the exact pre-fault one, bit for bit.
    faults: Option<FaultState>,
    /// Per-disk completion sequence numbers for stale-[`Ev::DiskDone`]
    /// detection: bumped when a completion is scheduled and when a job
    /// is aborted, so at most one scheduled completion per disk is
    /// genuine (the one whose `seq` matches).
    done_seq: Vec<u64>,
    /// Per-disk FIFO of outage-aborted jobs `(prio, rid, aborted_at)`,
    /// matched against stale completions in order (the station does
    /// not keep the aborted tag — the stale event carries it).
    aborted: Vec<Vec<(Priority, u32, SimTime)>>,
    /// When each disk last went down (start of the current/last outage
    /// window) — bounds the held-queue failover attribution.
    last_down: Vec<SimTime>,
    /// Disk serving each prefetch engine's latest demand block: during
    /// that disk's error bursts the engine's walk stands down (the
    /// paper's rule that prefetching never delays other operations).
    pf_demand_disk: HashMap<PfKey, usize>,
    /// Reusable scratch for [`handle_read`](Self::handle_read)'s
    /// missing-block list: taken at entry, drained, returned empty —
    /// steady-state reads allocate nothing here.
    scratch_missing: Vec<BlockId>,
    /// Reusable scratch for [`pump_prefetcher`](Self::pump_prefetcher):
    /// the issue batch and its membership companion set.
    scratch_issue: Vec<(u64, u32)>,
    scratch_issue_set: HashSet<u64>,
    /// Recycled `waiters` vectors from completed fetches, so demand
    /// misses stop paying one allocation each.
    waiters_pool: Vec<Vec<ReqId>>,
    /// Runtime invariant oracle (DESIGN.md §15). `None` when
    /// [`SimConfig::check`] resolves to disabled: every check site
    /// below then costs one branch on an always-false `Option`.
    oracle: Option<simcheck::Oracle>,
    rec: R,
}

impl Simulation {
    /// Build a simulation of `workload` under `config`.
    ///
    /// # Panics
    /// Panics if the workload's node count exceeds the machine's, or if
    /// block sizes disagree — mixing those up would silently invalidate
    /// every result.
    pub fn new(config: SimConfig, workload: Workload) -> Self {
        Self::new_shared(config, Arc::new(workload))
    }

    /// Like [`new`](Self::new), but sharing the workload — sweeps that
    /// run one workload under many configurations avoid a deep clone
    /// per run.
    pub fn new_shared(config: SimConfig, workload: Arc<Workload>) -> Self {
        Self::with_recorder(config, workload, NoopRecorder)
    }
}

impl<R: Recorder> Simulation<R> {
    /// Build a simulation that records events into `rec`. The recorder
    /// comes back out of [`run_traced`](Self::run_traced).
    ///
    /// # Panics
    /// Same contract as [`Simulation::new`].
    pub fn with_recorder(config: SimConfig, workload: Arc<Workload>, rec: R) -> Self {
        workload.validate();
        assert!(
            workload.nodes <= config.machine.nodes,
            "workload needs {} nodes, machine has {}",
            workload.nodes,
            config.machine.nodes
        );
        assert_eq!(
            workload.block_size, config.machine.block_size,
            "workload and machine disagree on block size"
        );
        assert!(config.machine.disks > 0, "machine needs at least one disk");
        let cache: Box<dyn CooperativeCache> = match config.system {
            CacheSystem::Pafs => Box::new(PafsCache::with_layout(
                config.machine.nodes,
                config.blocks_per_node(),
                config.replacement,
                config.meta_layout,
            )),
            CacheSystem::Xfs => {
                assert_eq!(
                    config.replacement,
                    coopcache::Replacement::Lru,
                    "the xFS model only supports LRU local caches"
                );
                Box::new(XfsCache::with_layout(
                    config.machine.nodes,
                    config.blocks_per_node(),
                    XfsCache::DEFAULT_N_CHANCE,
                    0x9E3779B9,
                    config.meta_layout,
                ))
            }
            CacheSystem::LocalOnly => Box::new(LocalOnlyCache::with_policy(
                config.machine.nodes,
                config.blocks_per_node(),
                config.replacement,
            )),
        };
        let disks = (0..config.machine.disks)
            .map(|i| Station::with_scheduler(StationId::disk(i), config.machine.disk_sched.build()))
            .collect();
        let disk_models = (0..config.machine.disks)
            .map(|_| config.machine.build_disk_model())
            .collect();
        let procs = workload
            .processes
            .iter()
            .map(|p| ProcState {
                node: p.node,
                next_op: 0,
                done: false,
            })
            .collect::<Vec<_>>();
        let file_blocks = (0..workload.files.len())
            .map(|f| workload.file_blocks(FileId(f as u32)))
            .collect();
        let metrics = Metrics::new(SimTime::ZERO + config.warmup, config.metrics_interval);
        let extent_blocks = config.machine.disk_model.extent_blocks();
        let active_procs = procs.len();
        let ndisks = config.machine.disks as usize;
        let faults = config
            .fault_plan
            .filter(|p| !p.is_empty())
            .map(|p| FaultState::new(p, config.machine.nodes as usize));
        let queue = EventQueue::with_backend(config.event_queue);
        let oracle = config
            .check
            .enabled()
            .then(|| simcheck::Oracle::new(config.machine.nodes as usize));
        Simulation {
            config,
            workload,
            queue,
            cache,
            disks,
            disk_models,
            pending: HashMap::new(),
            engines: HashMap::new(),
            procs,
            reqs: Vec::new(),
            metrics,
            file_blocks,
            extent_blocks,
            active_procs,
            next_rid: 0,
            faults,
            done_seq: vec![0; ndisks],
            aborted: vec![Vec::new(); ndisks],
            last_down: vec![SimTime::ZERO; ndisks],
            pf_demand_disk: HashMap::new(),
            scratch_missing: Vec::new(),
            scratch_issue: Vec::new(),
            scratch_issue_set: HashSet::new(),
            waiters_pool: Vec::new(),
            oracle,
            rec,
        }
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> SimReport {
        self.run_traced().0
    }

    /// Run to completion, returning the report together with the
    /// recorder (and thus the captured event stream).
    pub fn run_traced(mut self) -> (SimReport, R) {
        self.drive();
        self.finish()
    }

    /// Run to completion with self-profiling: the report and recorder
    /// as from [`run_traced`](Self::run_traced) — bit-identical, since
    /// profiling only reads deterministic counters the run maintains
    /// anyway — plus the [`simprof::SimProfile`].
    ///
    /// The profile's `wall.setup` is zero here: construction happened
    /// before this call. [`crate::run_simulation_profiled`] fills it
    /// in.
    pub fn run_profiled(mut self) -> (SimReport, R, simprof::SimProfile) {
        self.queue.enable_depth_tracking();
        let allocs_before = simprof::alloc_count();
        let t_loop = std::time::Instant::now();
        self.drive();
        let event_loop = t_loop.elapsed();
        let allocs = match (allocs_before, simprof::alloc_count()) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        };
        let counters = self.profile_counters();
        let t_report = std::time::Instant::now();
        let (report, rec) = self.finish();
        let profile = simprof::SimProfile {
            counters,
            reads: report.reads,
            wall: simprof::PhaseWall {
                setup: std::time::Duration::ZERO,
                event_loop,
                report: t_report.elapsed(),
            },
            allocs,
        };
        (report, rec, profile)
    }

    /// Assemble the deterministic cost counters from the subsystems.
    /// Integer sums only, so map iteration order cannot leak in.
    fn profile_counters(&self) -> simprof::Counters {
        let q = self.queue.depth_stats().unwrap_or_default();
        let mut c = simprof::Counters {
            events: q.pops,
            queue_pushes: q.pushes,
            peak_queue_depth: q.peak_depth,
            queue_depth_ticks: q.depth_ticks,
            ..simprof::Counters::default()
        };
        for disk in &self.disks {
            c.station_dispatches += disk.stats().dispatched;
        }
        for engine in self.engines.values() {
            let p = engine.predictor();
            c.pred_lookups += p.table_lookups();
            c.pred_updates += p.table_updates();
        }
        c.cache_probes = self.cache.meta_probes();
        c
    }

    /// Schedule the initial events, then drain the queue.
    fn drive(&mut self) {
        for p in 0..self.procs.len() {
            self.queue
                .schedule(SimTime::ZERO, Ev::Resume(ProcId(p as u32)));
        }
        if self.active_procs > 0 {
            let t = SimTime::ZERO + self.config.writeback_period;
            self.queue.schedule(t, Ev::Sweep);
        }
        if let Some(fs) = &self.faults {
            for disk in 0..self.disks.len() {
                if let Some(t) = fs.plan.first_disk_down(disk) {
                    self.queue.schedule(t, Ev::DiskDown { disk });
                }
            }
            for node in 0..self.config.machine.nodes as usize {
                if let Some(t) = fs.plan.first_node_down(node) {
                    self.queue.schedule(t, Ev::NodeDown { node: node as u32 });
                }
            }
        }
        while let Some((now, ev)) = self.queue.pop() {
            // Monotonicity + liveness watchdog: one branch when the
            // oracle is off, a few loads when it is on.
            oracle_check!(self, now, |o| o.on_event(now));
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::SimQueueDepth {
                        depth: self.queue.len() as u32,
                    },
                );
            }
            match ev {
                Ev::Resume(p) => self.step_proc(p, now),
                Ev::DiskDone { disk, job, seq } => self.disk_done(disk, job, seq, now),
                Ev::RequestDone(r) => self.request_done(r, now),
                Ev::Sweep => self.sweep(now, true),
                Ev::DiskDown { disk } => self.disk_down(disk, now),
                Ev::DiskUp { disk } => self.disk_up(disk, now),
                Ev::NodeDown { node } => self.node_down(node, now),
                Ev::NodeUp { node } => self.node_up(node, now),
            }
        }
    }

    /// Escalate an invariant violation: panic with the oracle's
    /// message plus a diagnostic dump of the loop's state, so a
    /// conservation bug surfaces as a one-line diagnosis instead of a
    /// silently wrong report.
    #[cold]
    fn invariant_violation(&self, msg: String, now: SimTime) -> ! {
        panic!("simcheck violation: {msg}\n{}", self.dump_state(now));
    }

    /// The diagnostic state dump attached to every violation (and to a
    /// watchdog abort): enough to see *where* the loop was stuck.
    fn dump_state(&self, now: SimTime) -> String {
        format!(
            "  now={:.6}s queue_len={} active_procs={} pending_fetches={} open_reqs={} \
             reads_issued={} resident_blocks={}\n  done_seq={:?} aborted={:?}\n  config={}",
            now.as_secs_f64(),
            self.queue.len(),
            self.active_procs,
            self.pending.len(),
            self.reqs.iter().filter(|r| r.remaining > 0).count(),
            self.next_rid,
            self.cache.resident_blocks(),
            self.done_seq,
            self.aborted.iter().map(|a| a.len()).collect::<Vec<_>>(),
            self.config.label(),
        )
    }

    /// Structural cache checks run at fault-transition edges and at
    /// end of run: metadata-layout integrity plus the copy-accounting
    /// balance (inserts − evictions == resident). Uses the uncounted
    /// [`CooperativeCache::check_integrity`], so the deterministic
    /// probe counters (BENCH.json identity) are unaffected.
    fn edge_checks(&mut self, now: SimTime) {
        if self.oracle.is_none() {
            return;
        }
        if let Err(e) = self.cache.check_integrity() {
            self.invariant_violation(e, now);
        }
    }

    /// Snapshot the cache counters when tracing — paired with
    /// [`emit_cache_delta`](Self::emit_cache_delta) around cache
    /// operations to surface coordination traffic (forwards,
    /// invalidations) that is only visible through the stats.
    fn snap_stats(&self) -> Option<CacheStats> {
        if self.rec.enabled() {
            Some(*self.cache.stats())
        } else {
            None
        }
    }

    fn emit_cache_delta(&mut self, before: Option<CacheStats>, now: SimTime) {
        if let Some(before) = before {
            let after = *self.cache.stats();
            after.emit_delta(&before, now.as_nanos(), &mut self.rec);
        }
    }

    // ----- process replay ------------------------------------------------

    fn step_proc(&mut self, p: ProcId, now: SimTime) {
        let idx = p.0 as usize;
        debug_assert!(!self.procs[idx].done);
        let op = {
            let st = &mut self.procs[idx];
            let ops = &self.workload.processes[idx].ops;
            if st.next_op >= ops.len() {
                st.done = true;
                self.active_procs -= 1;
                if self.active_procs == 0 {
                    // Final flush so every surviving dirty block is
                    // written once more, as a real shutdown sync would.
                    self.sweep(now, false);
                }
                return;
            }
            let op = ops[st.next_op];
            st.next_op += 1;
            op
        };
        match op {
            Op::Compute(d) => {
                self.queue.schedule(now + d, Ev::Resume(p));
            }
            Op::Read { file, offset, len } => {
                self.handle_read(p, file, offset, len, now);
            }
            Op::Write { file, offset, len } => {
                self.handle_write(p, file, offset, len, now);
            }
        }
    }

    fn handle_read(&mut self, p: ProcId, file: FileId, offset: u64, len: u64, now: SimTime) {
        let bs = self.workload.block_size;
        let req = Request::from_bytes(offset, len, bs).expect("validated non-empty");
        let node = self.procs[p.0 as usize].node;
        let rid = self.next_rid;
        self.next_rid += 1;
        oracle_check!(self, now, |o| o.read_issued(rid));

        let snap = self.snap_stats();
        let prefetch_used_before = self.cache.stats().prefetch_used;
        let mut all_local = true;
        let mut missing = std::mem::take(&mut self.scratch_missing);
        for b in req.blocks() {
            let block = BlockId::new(file, b);
            let outcome = self.cache.access(node, block, false);
            if self.rec.enabled() {
                let ev = match outcome.lookup {
                    Lookup::LocalHit => Event::CacheHitLocal { node: node.0, rid },
                    Lookup::RemoteHit { holder } => Event::CacheHitRemote {
                        node: node.0,
                        holder: holder.0,
                        rid,
                    },
                    Lookup::Miss => Event::CacheMiss { node: node.0, rid },
                };
                self.rec.record(now.as_nanos(), ev);
            }
            self.handle_evictions(node, &outcome.evicted, now);
            match outcome.lookup {
                Lookup::LocalHit => {}
                Lookup::RemoteHit { holder } => {
                    all_local = false;
                    oracle_check!(self, now, |o| o.check_remote_hit(holder.0));
                }
                Lookup::Miss => {
                    all_local = false;
                    missing.push(block);
                }
            }
        }
        self.emit_cache_delta(snap, now);
        let used_prefetch = self.cache.stats().prefetch_used > prefetch_used_before;

        let req_idx = self.reqs.len();
        let mut remaining = 0;
        let mut fresh_misses = 0u32;
        let mut joined_prefetch = false;
        for block in missing.drain(..) {
            let key = self.fetch_key(node, block);
            remaining += 1;
            if let Some(pf) = self.pending.get_mut(&key) {
                pf.waiters.push(req_idx);
                joined_prefetch |= pf.prefetch;
                if pf.prefetch && !pf.demanded {
                    pf.demanded = true;
                    self.metrics.prefetch_absorbed += 1;
                    if self.rec.enabled() {
                        self.rec.record(
                            now.as_nanos(),
                            Event::PrefetchAbsorbed {
                                file: block.file.0,
                                block: block.index,
                                rid,
                            },
                        );
                    }
                    // The block is now demand-critical: jump the queue
                    // (a whole extent run is promoted if the block
                    // travels inside one).
                    let disk = self.disk_of(block);
                    self.disks[disk].promote_where(PRIO_DEMAND, |j| j.fetches(key));
                } else {
                    // Joined an already-demanded fetch (plain demand
                    // fetch, or a prefetch an earlier demand absorbed).
                    self.metrics.demand_coalesced += 1;
                }
            } else {
                fresh_misses += 1;
                let mut waiters = self.waiters_pool.pop().unwrap_or_default();
                waiters.push(req_idx);
                self.pending.insert(
                    key,
                    PendingFetch {
                        prefetch: false,
                        demanded: true,
                        pf_owner: None,
                        node,
                        waiters,
                        svc: None,
                        failover: SimDuration::ZERO,
                    },
                );
                self.issue_fetch(key, false, rid, now);
            }
        }
        self.scratch_missing = missing;

        // Let the prefetcher see the request *after* demand fetches are
        // pending, so it skips blocks already on their way. A request
        // fully covered by residency or in-flight fetches confirms the
        // walk; a fresh miss tells it its prefetched blocks were
        // evicted.
        self.notify_prefetcher(node, file, req, fresh_misses == 0, rid, now);

        let bytes = req.size * bs;
        if remaining == 0 {
            let (nretry, ndelay) = if all_local {
                (SimDuration::ZERO, SimDuration::ZERO)
            } else {
                self.net_fault_extra(bytes, rid, now)
            };
            let cost = self.transfer_cost(bytes, all_local) + nretry + ndelay;
            self.metrics.record_read(now, cost);
            let mut breakdown = self.delivery_breakdown(bytes, all_local);
            breakdown.retry += nretry;
            breakdown.network += ndelay;
            oracle_check!(self, now, |o| o.read_completed(rid));
            oracle_check!(self, now, |o| o.check_span(rid, breakdown.total(), cost));
            let outcome = if used_prefetch {
                ReadOutcome::CoveredByPrefetch
            } else {
                ReadOutcome::DemandHit
            };
            self.metrics
                .record_span(now, &breakdown, outcome, SimDuration::ZERO);
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::ReadDone {
                        proc: p.0,
                        node: node.0,
                        latency: cost.as_nanos(),
                        rid,
                    },
                );
            }
            self.queue.schedule(now + cost, Ev::Resume(p));
        } else {
            self.reqs.push(ReqState {
                proc: p,
                started: now,
                bytes,
                remaining,
                all_local,
                rid,
                fresh_miss: fresh_misses > 0,
                joined_prefetch,
            });
        }
    }

    fn handle_write(&mut self, p: ProcId, file: FileId, offset: u64, len: u64, now: SimTime) {
        let bs = self.workload.block_size;
        let req = Request::from_bytes(offset, len, bs).expect("validated non-empty");
        let node = self.procs[p.0 as usize].node;

        let snap = self.snap_stats();
        let mut all_local = true;
        for b in req.blocks() {
            let block = BlockId::new(file, b);
            let outcome = self.cache.access(node, block, true);
            self.handle_evictions(node, &outcome.evicted, now);
            match outcome.lookup {
                Lookup::LocalHit => {}
                Lookup::RemoteHit { holder } => {
                    all_local = false;
                    oracle_check!(self, now, |o| o.check_remote_hit(holder.0));
                }
                Lookup::Miss => {
                    all_local = false;
                    // Write-allocate: the block materialises dirty.
                    let ev = self.cache.insert(node, block, InsertOrigin::Demand, true);
                    if self.rec.enabled() {
                        self.rec.record(
                            now.as_nanos(),
                            Event::CacheInsert {
                                node: node.0,
                                prefetch: false,
                            },
                        );
                    }
                    self.handle_evictions(node, &ev, now);
                }
            }
        }
        self.emit_cache_delta(snap, now);

        // Writes allocate in place and never need the data fetched, so
        // they carry no residency signal for the walk (and no demand
        // read id to attribute prefetches to).
        self.notify_prefetcher(node, file, req, true, NO_RID, now);

        let cost = self.transfer_cost(req.size * bs, all_local);
        self.metrics.record_write(now, cost);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::WriteDone {
                    proc: p.0,
                    node: node.0,
                    latency: cost.as_nanos(),
                },
            );
        }
        self.queue.schedule(now + cost, Ev::Resume(p));
    }

    fn request_done(&mut self, req_idx: ReqId, now: SimTime) {
        let req = &self.reqs[req_idx];
        debug_assert_eq!(req.remaining, 0);
        // Classify by request *start* time so hit and miss reads use
        // the same clock for the warm-up boundary and the time series.
        let latency = now - req.started;
        let rid = req.rid;
        self.metrics.record_read(req.started, latency);
        oracle_check!(self, now, |o| o.read_completed(rid));
        if self.rec.enabled() {
            let proc = req.proc;
            let node = self.procs[proc.0 as usize].node;
            self.rec.record(
                now.as_nanos(),
                Event::ReadDone {
                    proc: proc.0,
                    node: node.0,
                    latency: latency.as_nanos(),
                    rid: req.rid,
                },
            );
        }
        self.queue
            .schedule(now, Ev::Resume(self.reqs[req_idx].proc));
    }

    // ----- disks ---------------------------------------------------------

    fn disk_of(&self, block: BlockId) -> usize {
        // Stripe each file's blocks across all disks, with a per-file
        // rotation so files don't all start on disk 0. The striping
        // unit is the layout extent: with one-block extents (the fixed
        // model and the calibrated pm geometry) this is per-block
        // striping, bit-identical to the pre-extent simulator; with
        // larger extents a whole extent lives on one disk, which is
        // what lets a multi-block run be a single contiguous job.
        let unit = block.index / self.extent_blocks;
        ((block.file.0 as u64).wrapping_mul(7919) + unit) as usize % self.disks.len()
    }

    fn issue_fetch(&mut self, key: FetchKey, prefetch: bool, rid: u32, now: SimTime) {
        self.metrics.record_disk_read(now, prefetch);
        let disk = self.disk_of(key.block);
        let prio = if prefetch && self.config.prefetch_priority {
            PRIO_PREFETCH
        } else {
            PRIO_DEMAND
        };
        self.submit_disk_job(
            disk,
            prio,
            DeviceOp::Read,
            key.block,
            1,
            DiskJob::Fetch(key),
            rid,
            now,
        );
    }

    /// Issue one extent-granular prefetch batch: `count` contiguous
    /// blocks starting at `first`, as a single multi-block disk job.
    /// Every member block still counts as one prefetch disk read (the
    /// paper's traffic metric is per block); the *service* is what the
    /// batch saves — one positioning cost instead of `count`.
    fn issue_fetch_run(&mut self, first: FetchKey, count: u32, now: SimTime) {
        for _ in 0..count {
            self.metrics.record_disk_read(now, true);
        }
        let disk = self.disk_of(first.block);
        debug_assert_eq!(
            disk,
            self.disk_of(BlockId::new(
                first.block.file,
                first.block.index + u64::from(count) - 1
            )),
            "an extent run must not cross a striping boundary"
        );
        let prio = if self.config.prefetch_priority {
            PRIO_PREFETCH
        } else {
            PRIO_DEMAND
        };
        self.submit_disk_job(
            disk,
            prio,
            DeviceOp::Read,
            first.block,
            count,
            DiskJob::FetchRun { first, count },
            NO_RID,
            now,
        );
    }

    fn issue_disk_write(&mut self, block: BlockId, now: SimTime) {
        self.metrics.record_disk_write(now, block);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::WriteBack {
                    file: block.file.0,
                    block: block.index,
                },
            );
        }
        let disk = self.disk_of(block);
        self.submit_disk_job(
            disk,
            PRIO_WRITEBACK,
            DeviceOp::Write,
            block,
            1,
            DiskJob::Write(block),
            NO_RID,
            now,
        );
    }

    /// Hand one operation to disk `disk`, covering `blocks` contiguous
    /// device blocks from `block` on: the disk's service model supplies
    /// the position (geometry) and later the price.
    #[allow(clippy::too_many_arguments)]
    fn submit_disk_job(
        &mut self,
        disk: usize,
        prio: Priority,
        op: DeviceOp,
        block: BlockId,
        blocks: u32,
        tag: DiskJob,
        rid: u32,
        now: SimTime,
    ) {
        let spec = JobSpec {
            op,
            pos: self.disk_models[disk].lba_of(block.file.0, block.index),
            bytes: self.config.machine.block_size * u64::from(blocks),
            blocks,
            rid,
        };
        let started = self.with_disk_model(disk, |st, model, rec| {
            st.arrive_job(now, prio, spec, tag, model, rec)
        });
        if let Some(started) = started {
            self.after_start(disk, now, started);
        }
    }

    /// Run `f` against disk `disk`'s station and service model, routing
    /// the model through the fault layer when transient disk errors are
    /// active — any job priced inside `f` then carries its retry
    /// surcharge (and the per-disk fault counters advance).
    fn with_disk_model<T>(
        &mut self,
        disk: usize,
        f: impl FnOnce(&mut Station<DiskJob>, &mut dyn ServiceModel, &mut R) -> T,
    ) -> T {
        let Simulation {
            disks,
            disk_models,
            faults,
            rec,
            ..
        } = self;
        match faults {
            Some(fs) if fs.plan.disk_errors_active() => {
                let mut ctx = DiskFaultCtx { state: fs, disk };
                let mut model = FaultedModel {
                    inner: &mut disk_models[disk],
                    faults: &mut ctx,
                };
                f(&mut disks[disk], &mut model, rec)
            }
            _ => f(&mut disks[disk], &mut disk_models[disk], rec),
        }
    }

    /// Bookkeeping common to every disk-job dispatch: surface the retry
    /// surcharge (if the dispatch drew transient errors), record the
    /// fetch service for span attribution, and schedule the completion
    /// under a fresh sequence number.
    fn after_start(&mut self, disk: usize, now: SimTime, started: StartedJob<DiskJob>) {
        if started.cost.retry > SimDuration::ZERO && self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::FaultInjected {
                    disk: disk as u32,
                    retry_us: (started.cost.retry.as_nanos() / 1_000).min(u64::from(u32::MAX))
                        as u32,
                    rid: started.rid,
                },
            );
        }
        self.note_fetch_started(now, &started);
        self.done_seq[disk] += 1;
        self.queue.schedule(
            started.completes_at,
            Ev::DiskDone {
                disk,
                job: started.tag,
                seq: self.done_seq[disk],
            },
        );
    }

    /// Record when a fetch's disk service began (and what it cost), so
    /// the waiting reads can split their latency into queueing and
    /// mechanical time when the fetch lands. Write jobs need no record:
    /// nothing waits on them.
    fn note_fetch_started(&mut self, now: SimTime, started: &StartedJob<DiskJob>) {
        let svc = FetchSvc {
            begin: now,
            cost: started.cost,
        };
        match started.tag {
            DiskJob::Fetch(key) => {
                if let Some(pf) = self.pending.get_mut(&key) {
                    pf.svc = Some(svc);
                }
            }
            DiskJob::FetchRun { first, count } => {
                // Every member shares the run's service record: a read
                // waiting on any of them waited for this one dispatch.
                for key in run_keys(first, count) {
                    if let Some(pf) = self.pending.get_mut(&key) {
                        pf.svc = Some(svc);
                    }
                }
            }
            DiskJob::Write(_) => {}
        }
    }

    fn disk_done(&mut self, disk: usize, job: DiskJob, seq: u64, now: SimTime) {
        if seq != self.done_seq[disk] {
            // Stale completion: the job this event announces was
            // aborted by an outage after the event was scheduled. Its
            // arrival is exactly when the issuer would have noticed the
            // job never finished — the failover timeout — so the job
            // goes back to the front of its queue now.
            self.requeue_aborted(disk, job, now);
            return;
        }
        let started = self.with_disk_model(disk, |st, model, rec| st.complete_job(now, model, rec));
        if let Some(started) = started {
            self.after_start(disk, now, started);
        }
        match job {
            DiskJob::Write(_) => {}
            DiskJob::Fetch(key) => self.fetch_done(key, now),
            DiskJob::FetchRun { first, count } => self.run_done(first, count, now),
        }
    }

    fn fetch_done(&mut self, key: FetchKey, now: SimTime) {
        if let Some(owner) = self.complete_fetch_block(key, now) {
            if let Some(engine) = self.engines.get_mut(&owner) {
                engine.on_prefetch_complete();
            }
            self.pump_prefetcher(owner, now);
        }
    }

    /// An extent-granular batch landed: every member block materialises
    /// in the cache at the same instant (the batch was one disk job),
    /// then the owning engine is credited with **one** completed
    /// in-flight unit — the linear limit was charged per batch, not per
    /// block.
    fn run_done(&mut self, first: FetchKey, count: u32, now: SimTime) {
        let mut owner = None;
        for key in run_keys(first, count) {
            owner = self.complete_fetch_block(key, now).or(owner);
        }
        if let Some(owner) = owner {
            if let Some(engine) = self.engines.get_mut(&owner) {
                engine.on_prefetch_complete();
            }
            self.pump_prefetcher(owner, now);
        }
    }

    /// Land one fetched block: insert into the cache, wake the waiting
    /// reads, and return the prefetch engine to credit (if any) —
    /// crediting is the caller's job because a multi-block run charges
    /// a single in-flight unit.
    fn complete_fetch_block(&mut self, key: FetchKey, now: SimTime) -> Option<PfKey> {
        let pf = self
            .pending
            .remove(&key)
            .expect("completion for unknown fetch");
        // A prefetch absorbed by demand counts as demand-fetched for
        // the cache's usage accounting (it was used the moment it
        // landed); the absorption itself is tracked in the metrics.
        let origin = if pf.prefetch && !pf.demanded {
            InsertOrigin::Prefetch
        } else {
            InsertOrigin::Demand
        };
        let snap = self.snap_stats();
        let ev = self.cache.insert(pf.node, key.block, origin, false);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::CacheInsert {
                    node: pf.node.0,
                    prefetch: origin == InsertOrigin::Prefetch,
                },
            );
        }
        self.handle_evictions(pf.node, &ev, now);
        self.emit_cache_delta(snap, now);

        let failover = pf.failover;
        let mut waiters = pf.waiters;
        for req_idx in waiters.drain(..) {
            self.reqs[req_idx].remaining -= 1;
            if self.reqs[req_idx].remaining == 0 {
                let (bytes, all_local) = (self.reqs[req_idx].bytes, self.reqs[req_idx].all_local);
                let rid = self.reqs[req_idx].rid;
                let (nretry, ndelay) = if all_local {
                    (SimDuration::ZERO, SimDuration::ZERO)
                } else {
                    self.net_fault_extra(bytes, rid, now)
                };
                let cost = self.transfer_cost(bytes, all_local) + nretry + ndelay;
                self.record_read_span(
                    req_idx, pf.svc, failover, now, bytes, all_local, nretry, ndelay,
                );
                self.queue.schedule(now + cost, Ev::RequestDone(req_idx));
            }
        }
        self.waiters_pool.push(waiters);

        pf.pf_owner
    }

    /// Process the fallout of a cache operation performed on behalf of
    /// `node` (the cache does not report which node's buffer each
    /// victim left, so the events are attributed to the acting node).
    fn handle_evictions(&mut self, node: NodeId, evicted: &[Evicted], now: SimTime) {
        for e in evicted {
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::CacheEvict {
                        node: node.0,
                        dirty: e.dirty,
                        wasted_prefetch: e.wasted_prefetch,
                    },
                );
            }
            if e.dirty {
                self.issue_disk_write(e.block, now);
            }
        }
    }

    // ----- prefetching ---------------------------------------------------

    fn pf_key(&self, node: NodeId, file: FileId) -> PfKey {
        match self.config.system {
            CacheSystem::Pafs => PfKey { node: None, file },
            CacheSystem::Xfs | CacheSystem::LocalOnly => PfKey {
                node: Some(node),
                file,
            },
        }
    }

    fn fetch_key(&self, node: NodeId, block: BlockId) -> FetchKey {
        match self.config.system {
            CacheSystem::Pafs => FetchKey { scope: None, block },
            CacheSystem::Xfs | CacheSystem::LocalOnly => FetchKey {
                scope: Some(node),
                block,
            },
        }
    }

    /// The node whose buffers receive prefetched blocks: the file's
    /// server for PAFS (centralized prefetching), the engine's own node
    /// for xFS (local prefetching).
    fn prefetch_home(&self, key: PfKey) -> NodeId {
        match key.node {
            Some(n) => n,
            None => coopcache::server_node(key.file, self.config.machine.nodes),
        }
    }

    fn notify_prefetcher(
        &mut self,
        node: NodeId,
        file: FileId,
        req: Request,
        fully_cached: bool,
        rid: u32,
        now: SimTime,
    ) {
        if !self.config.prefetch.prefetches() {
            return;
        }
        let key = self.pf_key(node, file);
        if self.faults.is_some() {
            let disk = self.disk_of(BlockId::new(file, req.offset));
            self.pf_demand_disk.insert(key, disk);
        }
        let blocks = self.file_blocks[file.0 as usize];
        let cfg = self.config.prefetch;
        {
            let Simulation { engines, rec, .. } = self;
            let mut obs = Obs::new(now.as_nanos(), file.0, rec);
            engines
                .entry(key)
                .or_insert_with(|| FilePrefetcher::new(cfg, blocks))
                .on_demand_with_residency_obs(req, fully_cached, rid, &mut obs);
        }
        self.pump_prefetcher(key, now);
    }

    /// Pull every block the engine wants to prefetch right now and put
    /// it on the disks.
    fn pump_prefetcher(&mut self, key: PfKey, now: SimTime) {
        if let Some(fs) = &mut self.faults {
            if let Some(&disk) = self.pf_demand_disk.get(&key) {
                if fs.plan.in_burst(disk, now) {
                    // The paper's rule is that prefetching never delays
                    // other operations: during an error burst the disk
                    // is struggling, so the walk stands down and demand
                    // reads keep the queue to themselves.
                    fs.stats.prefetch_suppressed += 1;
                    return;
                }
            }
        }
        let home = self.prefetch_home(key);
        // Issue units: `(first, count)` runs. Per-block mode always
        // produces `count == 1`; extent mode batches up to one extent.
        // Both buffers are recycled scratch — drained/cleared and put
        // back below, so steady-state pumps allocate nothing.
        let mut to_issue = std::mem::take(&mut self.scratch_issue);
        // Companion set for O(1) membership while `to_issue` keeps the
        // deterministic issue order.
        let mut to_issue_set = std::mem::take(&mut self.scratch_issue_set);
        // Extent-granular batching applies to the aggressive walkers
        // only: a one-block-ahead engine has nothing to batch, and the
        // paper's non-aggressive modes must stay untouched. With
        // one-block extents the batcher degenerates to per-block issue,
        // so the extra gate is the granularity switch itself.
        let extent_mode = self.config.machine.prefetch_granularity == PrefetchGranularity::Extent
            && self.config.prefetch.is_aggressive();
        let extent_blocks = self.extent_blocks;
        let aggressive_walk = self.config.prefetch.is_aggressive();
        // Block range verified resident by a `resident_run` query this
        // pump. Sound as a memo because a pump never mutates the cache:
        // the walk loop below only issues pure `contains`-family
        // queries, and the fetches batched in `to_issue` are inserted
        // into `pending` only after the loop ends — so residency is
        // frozen for the duration of the pump.
        let mut run_resident: Option<(u64, u64)> = None;
        'walk: {
            let Simulation {
                engines,
                cache,
                pending,
                config,
                rec,
                ..
            } = self;
            let Some(engine) = engines.get_mut(&key) else {
                break 'walk;
            };
            let mut obs = Obs::new(now.as_nanos(), key.file.0, rec);
            let scope = key.node;
            // Without cooperation a node knows only its own cache; the
            // cooperative systems consult the global state (PAFS's
            // server sees everything; xFS's manager answers residency).
            let local_only = match config.system {
                CacheSystem::LocalOnly => true,
                CacheSystem::Pafs | CacheSystem::Xfs => false,
            };
            loop {
                // A block is skipped if it is cached *anywhere* (on xFS
                // the manager answers this; prefetching a block that a
                // peer caches would be pointless — a demand read gets
                // it as a cheap remote hit) or if this prefetcher's own
                // scope already has a fetch in flight. Other nodes'
                // in-flight fetches are invisible on xFS, which is what
                // duplicates prefetch work on shared files (§4).
                let is_cached = |idx: u64| {
                    // Cheap, uncounted membership checks answer first,
                    // cheapest first: ranges a `resident_run` query
                    // already verified (two compares, no hashing — the
                    // common case while rescanning resident data),
                    // blocks this pump already batched, then fetches
                    // already in flight (a SipHash over the fetch key,
                    // the priciest of the three). Every check here is
                    // side-effect-free, so the boolean is the same in
                    // any order.
                    if let Some((start, end)) = run_resident {
                        if idx >= start && idx < end {
                            return true;
                        }
                    }
                    if to_issue_set.contains(&idx) {
                        return true;
                    }
                    let block = BlockId::new(key.file, idx);
                    if pending.contains_key(&FetchKey { scope, block }) {
                        return true;
                    }
                    if local_only {
                        return cache.contains_local(scope.expect("local scope"), block);
                    }
                    if aggressive_walk {
                        // An aggressive walk rescans already-resident
                        // data after every restart (up to the engine's
                        // cached-run cutoff), and those queries are
                        // overwhelmingly sequential: ask for the whole
                        // resident run once instead of point-probing
                        // it block by block.
                        let run = cache.resident_run(block, WALK_RUN_PROBE);
                        if run > 0 {
                            run_resident = Some((idx, idx + u64::from(run)));
                            true
                        } else {
                            false
                        }
                    } else {
                        cache.contains(block)
                    }
                };
                let next = if extent_mode {
                    engine.next_extent_obs(extent_blocks, is_cached, &mut obs)
                } else {
                    engine.next_block_obs(is_cached, &mut obs).map(|b| (b, 1))
                };
                match next {
                    Some((first, count)) => {
                        for i in 0..u64::from(count) {
                            to_issue_set.insert(first + i);
                        }
                        to_issue.push((first, count));
                    }
                    None => break,
                }
            }
        }
        for (first, count) in to_issue.drain(..) {
            // The prefetcher's coalescing scope is its own key scope:
            // global for the PAFS per-file server, per-node for xFS.
            let fkey = FetchKey {
                scope: key.node,
                block: BlockId::new(key.file, first),
            };
            for member in run_keys(fkey, count) {
                self.pending.insert(
                    member,
                    PendingFetch {
                        prefetch: true,
                        demanded: false,
                        pf_owner: Some(key),
                        node: home,
                        waiters: self.waiters_pool.pop().unwrap_or_default(),
                        svc: None,
                        failover: SimDuration::ZERO,
                    },
                );
            }
            // Disk-level prefetch jobs serve no demand read (yet): the
            // causal link to the parent demand lives in the
            // `PrefetchIssue`/`ExtentIssue` events the engine emitted.
            if count == 1 {
                self.issue_fetch(fkey, true, NO_RID, now);
            } else {
                self.issue_fetch_run(fkey, count, now);
            }
        }
        to_issue_set.clear();
        self.scratch_issue = to_issue;
        self.scratch_issue_set = to_issue_set;
        // Post-pump linear-limit audit: the engine's in-flight units
        // (extent batches count one each) must respect the configured
        // aggressiveness.
        if self.oracle.is_some() {
            if let (Some(limit), Some(engine)) =
                (self.config.prefetch.aggressive, self.engines.get(&key))
            {
                let (in_flight, cap) = (engine.in_flight(), limit.cap());
                oracle_check!(self, now, |o| o.check_limit(key.file.0, in_flight, cap));
            }
        }
    }

    // ----- write-back ----------------------------------------------------

    fn sweep(&mut self, now: SimTime, reschedule: bool) {
        let dirty = self.cache.sweep_dirty();
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::SweepStart {
                    dirty: dirty.len() as u32,
                },
            );
        }
        for block in dirty {
            self.issue_disk_write(block, now);
        }
        if reschedule && self.active_procs > 0 {
            self.queue
                .schedule(now + self.config.writeback_period, Ev::Sweep);
        }
    }

    // ----- misc ----------------------------------------------------------

    fn transfer_cost(&self, bytes: u64, all_local: bool) -> SimDuration {
        if all_local {
            self.config.machine.local_transfer(bytes)
        } else {
            self.config.machine.remote_transfer(bytes)
        }
    }

    /// Split the final-delivery cost into span components. A local
    /// delivery is pure memory copy (`transfer`); a remote one is the
    /// startup hops (`coordination` — the zero-byte cost of the link,
    /// i.e. the messaging needed to locate and request the copy) plus
    /// the wire time for the payload (`network`). The components sum
    /// exactly to [`transfer_cost`](Self::transfer_cost).
    fn delivery_breakdown(&self, bytes: u64, all_local: bool) -> SpanBreakdown {
        let mut b = SpanBreakdown::default();
        if all_local {
            b.transfer = self.config.machine.local_transfer(bytes);
        } else {
            let total = self.config.machine.remote_transfer(bytes);
            b.coordination = self.config.machine.remote_transfer(0).min(total);
            b.network = total - b.coordination;
        }
        b
    }

    /// Attribute a completed read's end-to-end latency to span
    /// components, using the service record of the fetch that finished
    /// last (`svc`), the failover time that fetch accrued across
    /// outages, the delivery split, and any network-fault extras. The
    /// components sum exactly to the latency
    /// [`request_done`](Self::request_done) will record:
    /// `disk_done - started` for the disk part plus the delivery cost
    /// (including `net_retry + net_delay`).
    #[allow(clippy::too_many_arguments)]
    fn record_read_span(
        &mut self,
        req_idx: ReqId,
        svc: Option<FetchSvc>,
        failover: SimDuration,
        disk_done: SimTime,
        bytes: u64,
        all_local: bool,
        net_retry: SimDuration,
        net_delay: SimDuration,
    ) {
        let req = &self.reqs[req_idx];
        let started = req.started;
        let mut b = self.delivery_breakdown(bytes, all_local);
        b.retry += net_retry;
        b.network += net_delay;
        match svc {
            Some(svc) if svc.begin >= started => {
                // The read waited for the fetch to be dispatched: the
                // wait splits into failover (time lost to outages,
                // clamped — it is a subset of the wait by construction)
                // and plain queueing; the service splits into the retry
                // surcharge (transient errors) and the successful
                // attempt's mechanics, whose seek component is the
                // remainder — so the parts always sum to
                // `disk_done - started` exactly (under the fixed model
                // the whole read seek constant lands in `seek`).
                let raw_queue = svc.begin.saturating_since(started);
                b.failover = failover.min(raw_queue);
                b.queue = raw_queue - b.failover;
                let retry = svc.cost.retry.min(svc.cost.total);
                b.retry += retry;
                let net = svc.cost.total - retry;
                b.rotation = svc
                    .cost
                    .mech
                    .map_or(SimDuration::ZERO, |m| m.rot_wait)
                    .min(net);
                let platter = SimDuration::transfer(
                    self.config.machine.block_size,
                    self.config.machine.disk_bandwidth,
                );
                let after_rot = net - b.rotation;
                b.disk_transfer = platter.min(after_rot);
                b.seek = after_rot - b.disk_transfer;
            }
            _ => {
                // The read joined mid-service (e.g. a late prefetch
                // already on the platter): only the tail of the service
                // overlapped its lifetime, and it is all transfer-ish.
                b.disk_transfer = disk_done.saturating_since(started);
            }
        }
        let outcome = if req.joined_prefetch && !req.fresh_miss {
            ReadOutcome::LatePrefetch
        } else {
            ReadOutcome::Miss
        };
        let rid = req.rid;
        let slack = disk_done.saturating_since(started);
        // `slack + delivery` is exactly the latency `request_done`
        // will record for this read; the oracle makes the equality a
        // release-mode check when enabled.
        let expect = slack + self.transfer_cost(bytes, all_local) + net_retry + net_delay;
        debug_assert_eq!(
            b.total(),
            expect,
            "span components must sum to the request latency"
        );
        oracle_check!(self, disk_done, |o| o.check_span(rid, b.total(), expect));
        self.metrics.record_span(started, &b, outcome, slack);
    }

    // ----- faults --------------------------------------------------------

    /// Put an outage-aborted job back at the front of its disk's queue.
    /// The elapsed abort -> stale-completion time is credited to the
    /// job's pending fetches as failover wait (the requeue is the
    /// issuer's timeout-and-retry in one step).
    fn requeue_aborted(&mut self, disk: usize, job: DiskJob, now: SimTime) {
        let (prio, rid, aborted_at) = if self.aborted[disk].is_empty() {
            debug_assert!(false, "stale completion with no abort record");
            (PRIO_DEMAND, NO_RID, now)
        } else {
            self.aborted[disk].remove(0)
        };
        self.add_failover(job, now.saturating_since(aborted_at));
        let (op, block, blocks) = match job {
            DiskJob::Fetch(key) => (DeviceOp::Read, key.block, 1),
            DiskJob::FetchRun { first, count } => (DeviceOp::Read, first.block, count),
            DiskJob::Write(b) => (DeviceOp::Write, b, 1),
        };
        let spec = JobSpec {
            op,
            pos: self.disk_models[disk].lba_of(block.file.0, block.index),
            bytes: self.config.machine.block_size * u64::from(blocks),
            blocks,
            rid,
        };
        {
            let Simulation { disks, rec, .. } = self;
            disks[disk].requeue_front(now, prio, spec, job, rec);
        }
        let started =
            self.with_disk_model(disk, |st, model, rec| st.dispatch_idle(now, model, rec));
        if let Some(started) = started {
            self.after_start(disk, now, started);
        }
    }

    /// Credit `d` of failover wait to every pending fetch `tag`
    /// carries, so the reads waiting on them attribute outage time to
    /// the `failover` span component. Writes wait on nothing.
    fn add_failover(&mut self, tag: DiskJob, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        match tag {
            DiskJob::Fetch(key) => {
                if let Some(pf) = self.pending.get_mut(&key) {
                    pf.failover += d;
                }
            }
            DiskJob::FetchRun { first, count } => {
                for key in run_keys(first, count) {
                    if let Some(pf) = self.pending.get_mut(&key) {
                        pf.failover += d;
                    }
                }
            }
            DiskJob::Write(_) => {}
        }
    }

    /// A disk outage window opens: abort the in-service job (its stale
    /// completion becomes the requeue trigger) and hold the queue until
    /// [`disk_up`](Self::disk_up).
    fn disk_down(&mut self, disk: usize, now: SimTime) {
        if self.active_procs == 0 {
            return;
        }
        let w = self
            .faults
            .as_ref()
            .expect("disk outage event without fault state")
            .plan
            .outage
            .expect("disk outage event without a window");
        let aborted = {
            let Simulation { disks, rec, .. } = self;
            disks[disk].abort_current(now, rec)
        };
        if let Some((prio, rid)) = aborted {
            self.aborted[disk].push((prio, rid, now));
            // Invalidate the outstanding completion: its arrival now
            // means "requeue", not "done".
            self.done_seq[disk] += 1;
            if let Some(fs) = &mut self.faults {
                fs.stats.failovers += 1;
            }
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::Failover {
                        disk: disk as u32,
                        rid,
                    },
                );
            }
        }
        self.disks[disk].hold();
        self.last_down[disk] = now;
        if let Some(fs) = &mut self.faults {
            fs.stats.disk_outages += 1;
        }
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::DiskOutage {
                    disk: disk as u32,
                    up: false,
                },
            );
        }
        // Always scheduled once the hold took effect, so held queues
        // are guaranteed to drain even if every process finishes during
        // the window.
        self.queue.schedule(now + w.len, Ev::DiskUp { disk });
        self.edge_checks(now);
    }

    /// A disk outage window closes: credit the held jobs' wait as
    /// failover time, release the queue, and restart dispatch.
    fn disk_up(&mut self, disk: usize, now: SimTime) {
        let held: Vec<(DiskJob, SimDuration)> = self.disks[disk]
            .held_overlap(self.last_down[disk], now)
            .into_iter()
            .map(|(tag, d)| (*tag, d))
            .collect();
        for (tag, d) in held {
            self.add_failover(tag, d);
        }
        self.disks[disk].release();
        let started =
            self.with_disk_model(disk, |st, model, rec| st.dispatch_idle(now, model, rec));
        if let Some(started) = started {
            self.after_start(disk, now, started);
        }
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::DiskOutage {
                    disk: disk as u32,
                    up: true,
                },
            );
        }
        if self.active_procs > 0 {
            let w = self
                .faults
                .as_ref()
                .expect("disk outage event without fault state")
                .plan
                .outage
                .expect("disk outage event without a window");
            self.queue
                .schedule(now + (w.period - w.len), Ev::DiskDown { disk });
        }
        self.edge_checks(now);
    }

    /// A node outage window opens: the node disconnects from the
    /// cooperative cache (degraded mode) but keeps running locally.
    fn node_down(&mut self, node: u32, now: SimTime) {
        if self.active_procs == 0 {
            return;
        }
        let w = self
            .faults
            .as_ref()
            .expect("node outage event without fault state")
            .plan
            .node_outage
            .expect("node outage event without a window");
        self.cache.set_degraded(NodeId(node), true);
        if let Some(o) = self.oracle.as_mut() {
            o.set_degraded(node, true);
        }
        if let Some(fs) = &mut self.faults {
            fs.degraded_enter(node as usize, now);
        }
        if self.rec.enabled() {
            self.rec
                .record(now.as_nanos(), Event::DegradedEnter { node });
        }
        self.queue.schedule(now + w.len, Ev::NodeUp { node });
        self.edge_checks(now);
    }

    /// A node outage window closes: the node rejoins the cooperative
    /// cache — with its buffers intact by default, or cold (wiped)
    /// under the `node-outage-wipe` fault mode, which models a crash
    /// and restart rather than a network partition. Wiped dirty blocks
    /// are lost, not written back: the crash took them.
    fn node_up(&mut self, node: u32, now: SimTime) {
        let wipe = self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.plan.node_outage_wipe);
        if wipe {
            self.cache.wipe_node(NodeId(node));
        }
        self.cache.set_degraded(NodeId(node), false);
        if let Some(o) = self.oracle.as_mut() {
            o.set_degraded(node, false);
        }
        if let Some(fs) = &mut self.faults {
            fs.degraded_exit(node as usize, now);
        }
        if self.rec.enabled() {
            self.rec
                .record(now.as_nanos(), Event::DegradedExit { node });
        }
        if self.active_procs > 0 {
            let w = self
                .faults
                .as_ref()
                .expect("node outage event without fault state")
                .plan
                .node_outage
                .expect("node outage event without a window");
            self.queue
                .schedule(now + (w.period - w.len), Ev::NodeDown { node });
        }
        self.edge_checks(now);
    }

    /// Price network faults on one remote delivery of `bytes`: the
    /// zero-byte coordination hop draws against the control retry
    /// budget, the payload against the data budget. Returns the extra
    /// `(retry, delay)` time — both zero when no plan is active, so
    /// fault-free deliveries cost exactly what they always did.
    fn net_fault_extra(
        &mut self,
        bytes: u64,
        rid: u32,
        now: SimTime,
    ) -> (SimDuration, SimDuration) {
        let Some(fs) = &mut self.faults else {
            return (SimDuration::ZERO, SimDuration::ZERO);
        };
        if !fs.plan.net_active() {
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        let total = self.config.machine.remote_transfer(bytes);
        let coord = self.config.machine.remote_transfer(0).min(total);
        let payload = total - coord;
        let e1 = fs.net_extra(NetClass::Control, coord);
        let e2 = fs.net_extra(NetClass::Data, payload);
        let retry = e1.retry + e2.retry;
        let delay = e1.delay + e2.delay;
        let lost = e1.lost + e2.lost;
        if (lost > 0 || delay > SimDuration::ZERO) && self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::NetFault {
                    lost: lost.min(255) as u8,
                    delayed: delay > SimDuration::ZERO,
                    rid,
                },
            );
        }
        (retry, delay)
    }

    fn finish(mut self) -> (SimReport, R) {
        let end = self.queue.now();
        // End-of-run conservation: every issued read completed exactly
        // once, nothing is still in flight, and the cache's copy
        // accounting balances.
        if let Some(o) = self.oracle.as_ref() {
            if let Err(e) = o.end_of_run(self.pending.len()) {
                self.invariant_violation(e, end);
            }
        }
        self.edge_checks(end);
        if let Some(fs) = &mut self.faults {
            fs.degraded_finalize(end);
        }
        self.cache.finalize();
        let cache_stats = *self.cache.stats();

        let mut pf_stats = PrefetchStats::default();
        for engine in self.engines.values() {
            pf_stats.merge(&engine.stats());
        }

        let used = cache_stats.prefetch_used + self.metrics.prefetch_absorbed;
        let wasted = cache_stats.prefetch_wasted;
        let mispredict_ratio = if used + wasted == 0 {
            0.0
        } else {
            wasted as f64 / (used + wasted) as f64
        };

        let disk_utilization = if self.disks.is_empty() {
            0.0
        } else {
            self.disks.iter().map(|d| d.utilization(end)).sum::<f64>() / self.disks.len() as f64
        };

        let wpb = &self.metrics.writes_per_block;
        let writes_per_block = if wpb.is_empty() {
            0.0
        } else {
            // Sum in integers: an f64 sum would depend on the HashMap's
            // iteration order, breaking run-to-run byte stability.
            let total: u64 = wpb.values().map(|&c| u64::from(c)).sum();
            total as f64 / wpb.len() as f64
        };

        let mut obs = lapobs::Registry::default();
        self.metrics.register_into(&mut obs);
        cache_stats.register_into(&mut obs, "cache");
        pf_stats.register_into(&mut obs, "prefetch");
        for (i, d) in self.disks.iter().enumerate() {
            let prefix = format!("disk{i}");
            d.stats().register_into(&mut obs, &prefix);
            obs.time_weighted(format!("{prefix}.queue_len"), d.mean_queue_len(end));
            obs.gauge(format!("{prefix}.utilization"), d.utilization(end));
            if let Some(mech) = self.disk_models[i].stats() {
                mech.register_into(&mut obs, &prefix);
            }
        }
        let fstats = self.faults.as_ref().map(|fs| fs.stats).unwrap_or_default();
        fstats.register_into(&mut obs);
        let degraded_s = self.faults.as_ref().map_or(0.0, |fs| fs.degraded_total_s());
        obs.gauge("fault.degraded_s", degraded_s);
        if let Some(fs) = &self.faults {
            for (n, s) in fs.degraded_residency() {
                obs.gauge(format!("fault.node{n}.degraded_s"), s);
            }
        }
        // Predictor-registry metrics, summed over the per-file
        // predictors in integers (commutative, so the engine map's
        // iteration order cannot leak into results).
        let (mut pred_emits, mut pred_hits, mut pred_table, mut pred_mined) = (0u64, 0, 0, 0);
        for engine in self.engines.values() {
            let p = engine.predictor();
            pred_emits += p.emits();
            pred_hits += p.hits();
            pred_table += p.table_size();
            pred_mined += p.mined();
        }
        obs.counter("pred.emits", pred_emits);
        obs.counter("pred.hits", pred_hits);
        obs.counter("pred.mined", pred_mined);
        obs.gauge("pred.table_size", pred_table as f64);
        obs.text("pred.name", self.config.prefetch.predictor_name());
        obs.gauge("sim.disk_utilization", disk_utilization);
        obs.gauge("sim.mispredict_ratio", mispredict_ratio);
        obs.gauge("sim.seconds", end.as_secs_f64());
        // Identity rows, so an exported metrics file is self-describing
        // (lapreport keys its tables on them).
        obs.text("sim.label", self.config.label());
        obs.text("sim.workload", self.workload.name.as_str());

        let report = SimReport {
            label: self.config.label(),
            workload: self.workload.name.clone(),
            avg_read_ms: self.metrics.read_time.mean(),
            read_p50_ms: self.metrics.read_hist.quantile(0.5).as_millis_f64(),
            read_p95_ms: self.metrics.read_hist.quantile(0.95).as_millis_f64(),
            read_p99_ms: self.metrics.read_hist.quantile(0.99).as_millis_f64(),
            reads: self.metrics.read_time.count(),
            warmup_reads: self.metrics.read_time_warmup.count(),
            avg_write_ms: self.metrics.write_time.mean(),
            writes: self.metrics.write_time.count(),
            warmup_writes: self.metrics.warmup_writes,
            disk_reads_demand: self.metrics.disk_reads_demand,
            disk_reads_prefetch: self.metrics.disk_reads_prefetch,
            disk_writes: self.metrics.disk_writes,
            writes_per_block,
            cache: cache_stats,
            prefetch: pf_stats,
            prefetch_absorbed: self.metrics.prefetch_absorbed,
            mispredict_ratio,
            disk_utilization,
            faults_injected: fstats.injected,
            failovers: fstats.failovers,
            degraded_s,
            sim_seconds: end.as_secs_f64(),
            read_time_series: self
                .metrics
                .read_series
                .iter()
                .enumerate()
                .map(|(i, s)| crate::metrics::TimeBucket {
                    start_s: i as f64 * self.config.metrics_interval.as_secs_f64(),
                    mean_ms: s.mean(),
                    reads: s.count(),
                })
                .collect(),
            obs,
        };
        (report, self.rec)
    }
}
