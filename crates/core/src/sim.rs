//! The trace-driven file-system simulation.
//!
//! This module plays the role DIMEMAS plays in the paper: it replays
//! per-process demand traces against a machine model (CPU bursts,
//! network, priority-queued disks) with a cooperative cache and a
//! prefetching subsystem in the middle, and measures what the paper
//! measures — per-request read times and disk traffic.
//!
//! ## Request life cycle
//!
//! A read request touching blocks `B` at time `t0`:
//!
//! 1. every block is classified against the cooperative cache
//!    (local hit / remote hit / miss — the cache updates recency and
//!    prefetch-usage state as a side effect);
//! 2. missing blocks join an in-flight fetch if one exists in their
//!    coalescing scope (global for PAFS, per-node for xFS; a demand
//!    request joining a *prefetch* fetch promotes it to demand priority
//!    on the disk queue), otherwise a demand-priority disk read is
//!    issued;
//! 3. the prefetcher for the file (PAFS: one per file, at the file's
//!    server; xFS: one per (node, file)) observes the request and is
//!    pumped for new prefetch blocks, which are issued at the lowest
//!    disk priority;
//! 4. when the last missing block lands, the data is handed to the
//!    requester (memory copy if everything was local, a network
//!    transfer otherwise) and the request's latency is recorded.
//!
//! Writes are write-allocate with no fetch-on-write: they dirty cache
//! blocks and cost a transfer, but wait for no disk — matching the
//! paper's observation that writes "are not specially affected" (§5).
//! Dirty blocks reach the disk through the periodic write-back sweep
//! (§5.3) and through dirty evictions, at a middle disk priority:
//! behind demand reads (they are not latency-critical) but ahead of
//! prefetches (the paper's rule is only that prefetching never delays
//! other operations).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use coopcache::{
    CacheStats, CooperativeCache, Evicted, InsertOrigin, LocalOnlyCache, Lookup, PafsCache,
    XfsCache,
};
use devmodel::DiskModel;
use ioworkload::{BlockId, FileId, NodeId, Op, ProcId, Workload};
use lapobs::{Event, NoopRecorder, Obs, Recorder, StationId};
use prefetch::{FilePrefetcher, PrefetchStats, Request};
use simkit::{DeviceOp, EventQueue, JobSpec, Priority, SimDuration, SimTime, Station};

use crate::config::{CacheSystem, SimConfig};
use crate::metrics::{Metrics, SimReport};

/// Disk-queue priorities: demand reads first, write-backs next,
/// prefetches last.
const PRIO_DEMAND: Priority = Priority(0);
const PRIO_WRITEBACK: Priority = Priority(1);
const PRIO_PREFETCH: Priority = Priority(2);

/// Identifier of one outstanding (multi-block) application request.
type ReqId = usize;

/// Coalescing scope of an in-flight fetch: global for PAFS (the file
/// server sees everything), per-node for xFS (nodes cannot see each
/// other's in-flight fetches — the source of duplicated prefetch
/// traffic on shared files).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FetchKey {
    scope: Option<NodeId>,
    block: BlockId,
}

/// Identity of a prefetch engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PfKey {
    node: Option<NodeId>,
    file: FileId,
}

/// An in-flight disk fetch.
struct PendingFetch {
    /// Issued by the prefetcher (still counts as a prefetch unless a
    /// demand request absorbs it).
    prefetch: bool,
    /// A demand request joined while in flight.
    demanded: bool,
    /// Engine to notify on completion (prefetch fetches only).
    pf_owner: Option<PfKey>,
    /// Node whose buffer receives the block.
    node: NodeId,
    /// Requests waiting on this block.
    waiters: Vec<ReqId>,
}

/// Work items on a disk queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DiskJob {
    Fetch(FetchKey),
    Write(BlockId),
}

/// Simulation events.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Continue replaying a process trace.
    Resume(ProcId),
    /// A disk finished its current job.
    DiskDone { disk: usize, job: DiskJob },
    /// A request's last transfer finished; deliver to the process.
    RequestDone(ReqId),
    /// Periodic write-back sweep.
    Sweep,
}

struct ProcState {
    node: NodeId,
    next_op: usize,
    done: bool,
}

struct ReqState {
    proc: ProcId,
    started: SimTime,
    bytes: u64,
    remaining: usize,
    all_local: bool,
}

/// The simulator. Build with [`Simulation::new`], run with
/// [`Simulation::run`] (or use [`crate::run_simulation`]).
///
/// The recorder type parameter selects the observability backend: the
/// default [`NoopRecorder`] compiles every emission site away (the
/// untraced simulation pays nothing), while
/// [`Simulation::with_recorder`] + [`run_traced`](Simulation::run_traced)
/// capture the full event stream.
pub struct Simulation<R: Recorder = NoopRecorder> {
    config: SimConfig,
    workload: Arc<Workload>,
    queue: EventQueue<Ev>,
    cache: Box<dyn CooperativeCache>,
    disks: Vec<Station<DiskJob>>,
    /// One service model per disk, indexed like `disks`. Owns the arm
    /// position / platter state under the geometry model; prices the
    /// fixed constants otherwise.
    disk_models: Vec<DiskModel>,
    pending: HashMap<FetchKey, PendingFetch>,
    engines: HashMap<PfKey, FilePrefetcher>,
    procs: Vec<ProcState>,
    reqs: Vec<ReqState>,
    metrics: Metrics,
    file_blocks: Vec<u64>,
    active_procs: usize,
    rec: R,
}

impl Simulation {
    /// Build a simulation of `workload` under `config`.
    ///
    /// # Panics
    /// Panics if the workload's node count exceeds the machine's, or if
    /// block sizes disagree — mixing those up would silently invalidate
    /// every result.
    pub fn new(config: SimConfig, workload: Workload) -> Self {
        Self::new_shared(config, Arc::new(workload))
    }

    /// Like [`new`](Self::new), but sharing the workload — sweeps that
    /// run one workload under many configurations avoid a deep clone
    /// per run.
    pub fn new_shared(config: SimConfig, workload: Arc<Workload>) -> Self {
        Self::with_recorder(config, workload, NoopRecorder)
    }
}

impl<R: Recorder> Simulation<R> {
    /// Build a simulation that records events into `rec`. The recorder
    /// comes back out of [`run_traced`](Self::run_traced).
    ///
    /// # Panics
    /// Same contract as [`Simulation::new`].
    pub fn with_recorder(config: SimConfig, workload: Arc<Workload>, rec: R) -> Self {
        workload.validate();
        assert!(
            workload.nodes <= config.machine.nodes,
            "workload needs {} nodes, machine has {}",
            workload.nodes,
            config.machine.nodes
        );
        assert_eq!(
            workload.block_size, config.machine.block_size,
            "workload and machine disagree on block size"
        );
        assert!(config.machine.disks > 0, "machine needs at least one disk");
        let cache: Box<dyn CooperativeCache> = match config.system {
            CacheSystem::Pafs => Box::new(PafsCache::with_policy(
                config.machine.nodes,
                config.blocks_per_node(),
                config.replacement,
            )),
            CacheSystem::Xfs => {
                assert_eq!(
                    config.replacement,
                    coopcache::Replacement::Lru,
                    "the xFS model only supports LRU local caches"
                );
                Box::new(XfsCache::new(
                    config.machine.nodes,
                    config.blocks_per_node(),
                ))
            }
            CacheSystem::LocalOnly => Box::new(LocalOnlyCache::with_policy(
                config.machine.nodes,
                config.blocks_per_node(),
                config.replacement,
            )),
        };
        let disks = (0..config.machine.disks)
            .map(|i| Station::with_scheduler(StationId::disk(i), config.machine.disk_sched.build()))
            .collect();
        let disk_models = (0..config.machine.disks)
            .map(|_| config.machine.build_disk_model())
            .collect();
        let procs = workload
            .processes
            .iter()
            .map(|p| ProcState {
                node: p.node,
                next_op: 0,
                done: false,
            })
            .collect::<Vec<_>>();
        let file_blocks = (0..workload.files.len())
            .map(|f| workload.file_blocks(FileId(f as u32)))
            .collect();
        let metrics = Metrics::new(SimTime::ZERO + config.warmup, config.metrics_interval);
        let active_procs = procs.len();
        Simulation {
            config,
            workload,
            queue: EventQueue::new(),
            cache,
            disks,
            disk_models,
            pending: HashMap::new(),
            engines: HashMap::new(),
            procs,
            reqs: Vec::new(),
            metrics,
            file_blocks,
            active_procs,
            rec,
        }
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> SimReport {
        self.run_traced().0
    }

    /// Run to completion, returning the report together with the
    /// recorder (and thus the captured event stream).
    pub fn run_traced(mut self) -> (SimReport, R) {
        for p in 0..self.procs.len() {
            self.queue
                .schedule(SimTime::ZERO, Ev::Resume(ProcId(p as u32)));
        }
        if self.active_procs > 0 {
            let t = SimTime::ZERO + self.config.writeback_period;
            self.queue.schedule(t, Ev::Sweep);
        }
        while let Some((now, ev)) = self.queue.pop() {
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::SimQueueDepth {
                        depth: self.queue.len() as u32,
                    },
                );
            }
            match ev {
                Ev::Resume(p) => self.step_proc(p, now),
                Ev::DiskDone { disk, job } => self.disk_done(disk, job, now),
                Ev::RequestDone(r) => self.request_done(r, now),
                Ev::Sweep => self.sweep(now, true),
            }
        }
        self.finish()
    }

    /// Snapshot the cache counters when tracing — paired with
    /// [`emit_cache_delta`](Self::emit_cache_delta) around cache
    /// operations to surface coordination traffic (forwards,
    /// invalidations) that is only visible through the stats.
    fn snap_stats(&self) -> Option<CacheStats> {
        if self.rec.enabled() {
            Some(*self.cache.stats())
        } else {
            None
        }
    }

    fn emit_cache_delta(&mut self, before: Option<CacheStats>, now: SimTime) {
        if let Some(before) = before {
            let after = *self.cache.stats();
            after.emit_delta(&before, now.as_nanos(), &mut self.rec);
        }
    }

    // ----- process replay ------------------------------------------------

    fn step_proc(&mut self, p: ProcId, now: SimTime) {
        let idx = p.0 as usize;
        debug_assert!(!self.procs[idx].done);
        let op = {
            let st = &mut self.procs[idx];
            let ops = &self.workload.processes[idx].ops;
            if st.next_op >= ops.len() {
                st.done = true;
                self.active_procs -= 1;
                if self.active_procs == 0 {
                    // Final flush so every surviving dirty block is
                    // written once more, as a real shutdown sync would.
                    self.sweep(now, false);
                }
                return;
            }
            let op = ops[st.next_op];
            st.next_op += 1;
            op
        };
        match op {
            Op::Compute(d) => {
                self.queue.schedule(now + d, Ev::Resume(p));
            }
            Op::Read { file, offset, len } => {
                self.handle_read(p, file, offset, len, now);
            }
            Op::Write { file, offset, len } => {
                self.handle_write(p, file, offset, len, now);
            }
        }
    }

    fn handle_read(&mut self, p: ProcId, file: FileId, offset: u64, len: u64, now: SimTime) {
        let bs = self.workload.block_size;
        let req = Request::from_bytes(offset, len, bs).expect("validated non-empty");
        let node = self.procs[p.0 as usize].node;

        let snap = self.snap_stats();
        let mut all_local = true;
        let mut missing: Vec<BlockId> = Vec::new();
        for b in req.blocks() {
            let block = BlockId::new(file, b);
            let outcome = self.cache.access(node, block, false);
            if self.rec.enabled() {
                let ev = match outcome.lookup {
                    Lookup::LocalHit => Event::CacheHitLocal { node: node.0 },
                    Lookup::RemoteHit { holder } => Event::CacheHitRemote {
                        node: node.0,
                        holder: holder.0,
                    },
                    Lookup::Miss => Event::CacheMiss { node: node.0 },
                };
                self.rec.record(now.as_nanos(), ev);
            }
            self.handle_evictions(node, &outcome.evicted, now);
            match outcome.lookup {
                Lookup::LocalHit => {}
                Lookup::RemoteHit { .. } => all_local = false,
                Lookup::Miss => {
                    all_local = false;
                    missing.push(block);
                }
            }
        }
        self.emit_cache_delta(snap, now);

        let rid = self.reqs.len();
        let mut remaining = 0;
        let mut fresh_misses = 0u32;
        for block in missing {
            let key = self.fetch_key(node, block);
            remaining += 1;
            if let Some(pf) = self.pending.get_mut(&key) {
                pf.waiters.push(rid);
                if pf.prefetch && !pf.demanded {
                    pf.demanded = true;
                    self.metrics.prefetch_absorbed += 1;
                    if self.rec.enabled() {
                        self.rec.record(
                            now.as_nanos(),
                            Event::PrefetchAbsorbed {
                                file: block.file.0,
                                block: block.index,
                            },
                        );
                    }
                    // The block is now demand-critical: jump the queue.
                    let disk = self.disk_of(block);
                    self.disks[disk].promote_where(PRIO_DEMAND, |j| *j == DiskJob::Fetch(key));
                } else {
                    // Joined an already-demanded fetch (plain demand
                    // fetch, or a prefetch an earlier demand absorbed).
                    self.metrics.demand_coalesced += 1;
                }
            } else {
                fresh_misses += 1;
                self.pending.insert(
                    key,
                    PendingFetch {
                        prefetch: false,
                        demanded: true,
                        pf_owner: None,
                        node,
                        waiters: vec![rid],
                    },
                );
                self.issue_fetch(key, false, now);
            }
        }

        // Let the prefetcher see the request *after* demand fetches are
        // pending, so it skips blocks already on their way. A request
        // fully covered by residency or in-flight fetches confirms the
        // walk; a fresh miss tells it its prefetched blocks were
        // evicted.
        self.notify_prefetcher(node, file, req, fresh_misses == 0, now);

        let bytes = req.size * bs;
        if remaining == 0 {
            let cost = self.transfer_cost(bytes, all_local);
            self.metrics.record_read(now, cost);
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::ReadDone {
                        proc: p.0,
                        node: node.0,
                        latency: cost.as_nanos(),
                    },
                );
            }
            self.queue.schedule(now + cost, Ev::Resume(p));
        } else {
            self.reqs.push(ReqState {
                proc: p,
                started: now,
                bytes,
                remaining,
                all_local,
            });
        }
    }

    fn handle_write(&mut self, p: ProcId, file: FileId, offset: u64, len: u64, now: SimTime) {
        let bs = self.workload.block_size;
        let req = Request::from_bytes(offset, len, bs).expect("validated non-empty");
        let node = self.procs[p.0 as usize].node;

        let snap = self.snap_stats();
        let mut all_local = true;
        for b in req.blocks() {
            let block = BlockId::new(file, b);
            let outcome = self.cache.access(node, block, true);
            self.handle_evictions(node, &outcome.evicted, now);
            match outcome.lookup {
                Lookup::LocalHit => {}
                Lookup::RemoteHit { .. } => all_local = false,
                Lookup::Miss => {
                    all_local = false;
                    // Write-allocate: the block materialises dirty.
                    let ev = self.cache.insert(node, block, InsertOrigin::Demand, true);
                    if self.rec.enabled() {
                        self.rec.record(
                            now.as_nanos(),
                            Event::CacheInsert {
                                node: node.0,
                                prefetch: false,
                            },
                        );
                    }
                    self.handle_evictions(node, &ev, now);
                }
            }
        }
        self.emit_cache_delta(snap, now);

        // Writes allocate in place and never need the data fetched, so
        // they carry no residency signal for the walk.
        self.notify_prefetcher(node, file, req, true, now);

        let cost = self.transfer_cost(req.size * bs, all_local);
        self.metrics.record_write(now, cost);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::WriteDone {
                    proc: p.0,
                    node: node.0,
                    latency: cost.as_nanos(),
                },
            );
        }
        self.queue.schedule(now + cost, Ev::Resume(p));
    }

    fn request_done(&mut self, rid: ReqId, now: SimTime) {
        let req = &self.reqs[rid];
        debug_assert_eq!(req.remaining, 0);
        // Classify by request *start* time so hit and miss reads use
        // the same clock for the warm-up boundary and the time series.
        let latency = now - req.started;
        self.metrics.record_read(req.started, latency);
        if self.rec.enabled() {
            let proc = req.proc;
            let node = self.procs[proc.0 as usize].node;
            self.rec.record(
                now.as_nanos(),
                Event::ReadDone {
                    proc: proc.0,
                    node: node.0,
                    latency: latency.as_nanos(),
                },
            );
        }
        self.queue.schedule(now, Ev::Resume(self.reqs[rid].proc));
    }

    // ----- disks ---------------------------------------------------------

    fn disk_of(&self, block: BlockId) -> usize {
        // Stripe each file's blocks across all disks, with a per-file
        // rotation so files don't all start on disk 0.
        ((block.file.0 as u64).wrapping_mul(7919) + block.index) as usize % self.disks.len()
    }

    fn issue_fetch(&mut self, key: FetchKey, prefetch: bool, now: SimTime) {
        self.metrics.record_disk_read(now, prefetch);
        let disk = self.disk_of(key.block);
        let prio = if prefetch && self.config.prefetch_priority {
            PRIO_PREFETCH
        } else {
            PRIO_DEMAND
        };
        self.submit_disk_job(
            disk,
            prio,
            DeviceOp::Read,
            key.block,
            DiskJob::Fetch(key),
            now,
        );
    }

    fn issue_disk_write(&mut self, block: BlockId, now: SimTime) {
        self.metrics.record_disk_write(now, block);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::WriteBack {
                    file: block.file.0,
                    block: block.index,
                },
            );
        }
        let disk = self.disk_of(block);
        self.submit_disk_job(
            disk,
            PRIO_WRITEBACK,
            DeviceOp::Write,
            block,
            DiskJob::Write(block),
            now,
        );
    }

    /// Hand one operation on `block` to disk `disk`: the disk's service
    /// model supplies the position (geometry) and later the price.
    fn submit_disk_job(
        &mut self,
        disk: usize,
        prio: Priority,
        op: DeviceOp,
        block: BlockId,
        tag: DiskJob,
        now: SimTime,
    ) {
        let spec = JobSpec {
            op,
            pos: self.disk_models[disk].lba_of(block.file.0, block.index),
            bytes: self.config.machine.block_size,
        };
        let started = {
            let Simulation {
                disks,
                disk_models,
                rec,
                ..
            } = self;
            disks[disk].arrive_job(now, prio, spec, tag, &mut disk_models[disk], rec)
        };
        if let Some(started) = started {
            self.queue.schedule(
                started.completes_at,
                Ev::DiskDone {
                    disk,
                    job: started.tag,
                },
            );
        }
    }

    fn disk_done(&mut self, disk: usize, job: DiskJob, now: SimTime) {
        let started = {
            let Simulation {
                disks,
                disk_models,
                rec,
                ..
            } = self;
            disks[disk].complete_job(now, &mut disk_models[disk], rec)
        };
        if let Some(started) = started {
            self.queue.schedule(
                started.completes_at,
                Ev::DiskDone {
                    disk,
                    job: started.tag,
                },
            );
        }
        match job {
            DiskJob::Write(_) => {}
            DiskJob::Fetch(key) => self.fetch_done(key, now),
        }
    }

    fn fetch_done(&mut self, key: FetchKey, now: SimTime) {
        let pf = self
            .pending
            .remove(&key)
            .expect("completion for unknown fetch");
        // A prefetch absorbed by demand counts as demand-fetched for
        // the cache's usage accounting (it was used the moment it
        // landed); the absorption itself is tracked in the metrics.
        let origin = if pf.prefetch && !pf.demanded {
            InsertOrigin::Prefetch
        } else {
            InsertOrigin::Demand
        };
        let snap = self.snap_stats();
        let ev = self.cache.insert(pf.node, key.block, origin, false);
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::CacheInsert {
                    node: pf.node.0,
                    prefetch: origin == InsertOrigin::Prefetch,
                },
            );
        }
        self.handle_evictions(pf.node, &ev, now);
        self.emit_cache_delta(snap, now);

        for rid in pf.waiters {
            self.reqs[rid].remaining -= 1;
            if self.reqs[rid].remaining == 0 {
                let (bytes, all_local) = (self.reqs[rid].bytes, self.reqs[rid].all_local);
                let cost = self.transfer_cost(bytes, all_local);
                self.queue.schedule(now + cost, Ev::RequestDone(rid));
            }
        }

        if let Some(owner) = pf.pf_owner {
            if let Some(engine) = self.engines.get_mut(&owner) {
                engine.on_prefetch_complete();
            }
            self.pump_prefetcher(owner, now);
        }
    }

    /// Process the fallout of a cache operation performed on behalf of
    /// `node` (the cache does not report which node's buffer each
    /// victim left, so the events are attributed to the acting node).
    fn handle_evictions(&mut self, node: NodeId, evicted: &[Evicted], now: SimTime) {
        for e in evicted {
            if self.rec.enabled() {
                self.rec.record(
                    now.as_nanos(),
                    Event::CacheEvict {
                        node: node.0,
                        dirty: e.dirty,
                        wasted_prefetch: e.wasted_prefetch,
                    },
                );
            }
            if e.dirty {
                self.issue_disk_write(e.block, now);
            }
        }
    }

    // ----- prefetching ---------------------------------------------------

    fn pf_key(&self, node: NodeId, file: FileId) -> PfKey {
        match self.config.system {
            CacheSystem::Pafs => PfKey { node: None, file },
            CacheSystem::Xfs | CacheSystem::LocalOnly => PfKey {
                node: Some(node),
                file,
            },
        }
    }

    fn fetch_key(&self, node: NodeId, block: BlockId) -> FetchKey {
        match self.config.system {
            CacheSystem::Pafs => FetchKey { scope: None, block },
            CacheSystem::Xfs | CacheSystem::LocalOnly => FetchKey {
                scope: Some(node),
                block,
            },
        }
    }

    /// The node whose buffers receive prefetched blocks: the file's
    /// server for PAFS (centralized prefetching), the engine's own node
    /// for xFS (local prefetching).
    fn prefetch_home(&self, key: PfKey) -> NodeId {
        match key.node {
            Some(n) => n,
            None => coopcache::server_node(key.file, self.config.machine.nodes),
        }
    }

    fn notify_prefetcher(
        &mut self,
        node: NodeId,
        file: FileId,
        req: Request,
        fully_cached: bool,
        now: SimTime,
    ) {
        if !self.config.prefetch.prefetches() {
            return;
        }
        let key = self.pf_key(node, file);
        let blocks = self.file_blocks[file.0 as usize];
        let cfg = self.config.prefetch;
        {
            let Simulation { engines, rec, .. } = self;
            let mut obs = Obs::new(now.as_nanos(), file.0, rec);
            engines
                .entry(key)
                .or_insert_with(|| FilePrefetcher::new(cfg, blocks))
                .on_demand_with_residency_obs(req, fully_cached, &mut obs);
        }
        self.pump_prefetcher(key, now);
    }

    /// Pull every block the engine wants to prefetch right now and put
    /// it on the disks.
    fn pump_prefetcher(&mut self, key: PfKey, now: SimTime) {
        let home = self.prefetch_home(key);
        let mut to_issue: Vec<u64> = Vec::new();
        // Companion set for O(1) membership while `to_issue` keeps the
        // deterministic issue order.
        let mut to_issue_set: HashSet<u64> = HashSet::new();
        {
            let Simulation {
                engines,
                cache,
                pending,
                config,
                rec,
                ..
            } = self;
            let Some(engine) = engines.get_mut(&key) else {
                return;
            };
            let mut obs = Obs::new(now.as_nanos(), key.file.0, rec);
            let scope = key.node;
            // Without cooperation a node knows only its own cache; the
            // cooperative systems consult the global state (PAFS's
            // server sees everything; xFS's manager answers residency).
            let local_only = match config.system {
                CacheSystem::LocalOnly => true,
                CacheSystem::Pafs | CacheSystem::Xfs => false,
            };
            loop {
                // A block is skipped if it is cached *anywhere* (on xFS
                // the manager answers this; prefetching a block that a
                // peer caches would be pointless — a demand read gets
                // it as a cheap remote hit) or if this prefetcher's own
                // scope already has a fetch in flight. Other nodes'
                // in-flight fetches are invisible on xFS, which is what
                // duplicates prefetch work on shared files (§4).
                let next = engine.next_block_obs(
                    |idx| {
                        let block = BlockId::new(key.file, idx);
                        let resident = if local_only {
                            cache.contains_local(scope.expect("local scope"), block)
                        } else {
                            cache.contains(block)
                        };
                        resident
                            || pending.contains_key(&FetchKey { scope, block })
                            || to_issue_set.contains(&idx)
                    },
                    &mut obs,
                );
                match next {
                    Some(idx) => {
                        to_issue.push(idx);
                        to_issue_set.insert(idx);
                    }
                    None => break,
                }
            }
        }
        for idx in to_issue {
            // The prefetcher's coalescing scope is its own key scope:
            // global for the PAFS per-file server, per-node for xFS.
            let fkey = FetchKey {
                scope: key.node,
                block: BlockId::new(key.file, idx),
            };
            self.pending.insert(
                fkey,
                PendingFetch {
                    prefetch: true,
                    demanded: false,
                    pf_owner: Some(key),
                    node: home,
                    waiters: Vec::new(),
                },
            );
            self.issue_fetch(fkey, true, now);
        }
    }

    // ----- write-back ----------------------------------------------------

    fn sweep(&mut self, now: SimTime, reschedule: bool) {
        let dirty = self.cache.sweep_dirty();
        if self.rec.enabled() {
            self.rec.record(
                now.as_nanos(),
                Event::SweepStart {
                    dirty: dirty.len() as u32,
                },
            );
        }
        for block in dirty {
            self.issue_disk_write(block, now);
        }
        if reschedule && self.active_procs > 0 {
            self.queue
                .schedule(now + self.config.writeback_period, Ev::Sweep);
        }
    }

    // ----- misc ----------------------------------------------------------

    fn transfer_cost(&self, bytes: u64, all_local: bool) -> SimDuration {
        if all_local {
            self.config.machine.local_transfer(bytes)
        } else {
            self.config.machine.remote_transfer(bytes)
        }
    }

    fn finish(mut self) -> (SimReport, R) {
        let end = self.queue.now();
        self.cache.finalize();
        let cache_stats = *self.cache.stats();

        let mut pf_stats = PrefetchStats::default();
        for engine in self.engines.values() {
            pf_stats.merge(&engine.stats());
        }

        let used = cache_stats.prefetch_used + self.metrics.prefetch_absorbed;
        let wasted = cache_stats.prefetch_wasted;
        let mispredict_ratio = if used + wasted == 0 {
            0.0
        } else {
            wasted as f64 / (used + wasted) as f64
        };

        let disk_utilization = if self.disks.is_empty() {
            0.0
        } else {
            self.disks.iter().map(|d| d.utilization(end)).sum::<f64>() / self.disks.len() as f64
        };

        let wpb = &self.metrics.writes_per_block;
        let writes_per_block = if wpb.is_empty() {
            0.0
        } else {
            // Sum in integers: an f64 sum would depend on the HashMap's
            // iteration order, breaking run-to-run byte stability.
            let total: u64 = wpb.values().map(|&c| u64::from(c)).sum();
            total as f64 / wpb.len() as f64
        };

        let mut obs = lapobs::Registry::default();
        self.metrics.register_into(&mut obs);
        cache_stats.register_into(&mut obs, "cache");
        pf_stats.register_into(&mut obs, "prefetch");
        for (i, d) in self.disks.iter().enumerate() {
            let prefix = format!("disk{i}");
            d.stats().register_into(&mut obs, &prefix);
            obs.time_weighted(format!("{prefix}.queue_len"), d.mean_queue_len(end));
            obs.gauge(format!("{prefix}.utilization"), d.utilization(end));
            if let Some(mech) = self.disk_models[i].stats() {
                mech.register_into(&mut obs, &prefix);
            }
        }
        obs.gauge("sim.disk_utilization", disk_utilization);
        obs.gauge("sim.mispredict_ratio", mispredict_ratio);
        obs.gauge("sim.seconds", end.as_secs_f64());

        let report = SimReport {
            label: self.config.label(),
            workload: self.workload.name.clone(),
            avg_read_ms: self.metrics.read_time.mean(),
            read_p50_ms: self.metrics.read_hist.quantile(0.5).as_millis_f64(),
            read_p95_ms: self.metrics.read_hist.quantile(0.95).as_millis_f64(),
            read_p99_ms: self.metrics.read_hist.quantile(0.99).as_millis_f64(),
            reads: self.metrics.read_time.count(),
            warmup_reads: self.metrics.read_time_warmup.count(),
            avg_write_ms: self.metrics.write_time.mean(),
            writes: self.metrics.write_time.count(),
            disk_reads_demand: self.metrics.disk_reads_demand,
            disk_reads_prefetch: self.metrics.disk_reads_prefetch,
            disk_writes: self.metrics.disk_writes,
            writes_per_block,
            cache: cache_stats,
            prefetch: pf_stats,
            prefetch_absorbed: self.metrics.prefetch_absorbed,
            mispredict_ratio,
            disk_utilization,
            sim_seconds: end.as_secs_f64(),
            read_time_series: self
                .metrics
                .read_series
                .iter()
                .enumerate()
                .map(|(i, s)| crate::metrics::TimeBucket {
                    start_s: i as f64 * self.config.metrics_interval.as_secs_f64(),
                    mean_ms: s.mean(),
                    reads: s.count(),
                })
                .collect(),
            obs,
        };
        (report, self.rec)
    }
}
