//! End-to-end behavioural tests of the full simulation stack on small
//! workloads: the qualitative claims of the paper must hold even at
//! test scale.

use ioworkload::charisma::CharismaParams;
use ioworkload::sprite::SpriteParams;
use ioworkload::Workload;
use lap_core::{run_simulation, CacheSystem, SimConfig, SimReport};
use prefetch::PrefetchConfig;
use simkit::SimDuration;

fn charisma() -> Workload {
    CharismaParams::small().generate(42)
}

fn sprite() -> Workload {
    SpriteParams::small().generate(42)
}

fn pm_config(system: CacheSystem, pf: PrefetchConfig, mb: u64) -> SimConfig {
    let mut cfg = SimConfig::pm(system, pf, mb);
    cfg.machine.nodes = 8;
    cfg.machine.disks = 4;
    cfg
}

fn now_config(system: CacheSystem, pf: PrefetchConfig, mb: u64) -> SimConfig {
    let mut cfg = SimConfig::now(system, pf, mb);
    cfg.machine.nodes = 6;
    cfg.machine.disks = 3;
    cfg
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        run_simulation(
            pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1),
            charisma(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.avg_read_ms, b.avg_read_ms);
    assert_eq!(a.disk_accesses(), b.disk_accesses());
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.prefetch, b.prefetch);
}

#[test]
fn every_paper_config_runs_on_every_system_and_workload() {
    for pf in PrefetchConfig::paper_suite() {
        for system in [CacheSystem::Pafs, CacheSystem::Xfs] {
            let r = run_simulation(pm_config(system, pf, 1), charisma());
            assert!(r.reads > 0, "{}: no reads measured", r.label);
            assert!(r.avg_read_ms > 0.0, "{}: zero read time", r.label);
            let r = run_simulation(now_config(system, pf, 1), sprite());
            assert!(r.reads > 0, "{}: no reads measured", r.label);
        }
    }
}

#[test]
fn prefetching_beats_no_prefetching() {
    // The paper's headline: "All prefetching algorithms achieve a
    // better performance than the original system where no prefetching
    // was done" (§5.2).
    let np = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1),
        charisma(),
    );
    for pf in [
        PrefetchConfig::oba(),
        PrefetchConfig::is_ppm(1),
        PrefetchConfig::ln_agr_oba(),
        PrefetchConfig::ln_agr_is_ppm(1),
    ] {
        let r = run_simulation(pm_config(CacheSystem::Pafs, pf, 1), charisma());
        assert!(
            r.avg_read_ms < np.avg_read_ms * 1.02,
            "{} ({:.3} ms) should not lose to NP ({:.3} ms)",
            r.label,
            r.avg_read_ms,
            np.avg_read_ms
        );
    }
}

#[test]
fn linear_aggressive_beats_simple_prefetching_on_charisma_pafs() {
    // Figure 4's third group: the aggressive algorithms clearly beat
    // their non-aggressive versions.
    let simple = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::is_ppm(1), 2),
        charisma(),
    );
    let aggressive = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 2),
        charisma(),
    );
    assert!(
        aggressive.avg_read_ms < simple.avg_read_ms,
        "Ln_Agr_IS_PPM:1 ({:.3}) must beat IS_PPM:1 ({:.3})",
        aggressive.avg_read_ms,
        simple.avg_read_ms
    );
    // And it raises the hit ratio.
    assert!(aggressive.cache.hit_ratio() > simple.cache.hit_ratio());
}

#[test]
fn np_never_touches_the_prefetcher() {
    let r = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1),
        charisma(),
    );
    assert_eq!(r.prefetch.issued, 0);
    assert_eq!(r.disk_reads_prefetch, 0);
    assert_eq!(r.cache.prefetch_inserts, 0);
    assert_eq!(r.mispredict_ratio, 0.0);
}

#[test]
fn xfs_duplicates_prefetch_work_on_shared_files() {
    // §4/§5.2: per-node linearity means shared files get duplicated
    // prefetch streams — xFS issues more prefetch fetches than PAFS
    // for the same (highly shared) workload.
    let pafs = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 2),
        charisma(),
    );
    let xfs = run_simulation(
        pm_config(CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(1), 2),
        charisma(),
    );
    assert!(
        xfs.prefetch.issued > pafs.prefetch.issued,
        "xFS ({}) must issue more prefetches than PAFS ({})",
        xfs.prefetch.issued,
        pafs.prefetch.issued
    );
}

#[test]
fn writes_reach_disk_through_periodic_sweeps() {
    // Force every app to be a writer so the assertion is seed-proof,
    // and sweep fast enough that re-dirtied blocks are caught by
    // several sweeps within the short test run.
    let mut params = CharismaParams::small();
    params.writer_fraction = 1.0;
    let mut cfg = pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 4);
    cfg.writeback_period = SimDuration::from_secs(2);
    let r = run_simulation(cfg, params.generate(42));
    assert!(r.disk_writes > 0, "dirty blocks must be written back");
    assert!(
        r.writes_per_block >= 1.0,
        "every written block hits the disk at least once"
    );
    // The CHARISMA writers re-dirty their hot region, so some blocks
    // are written to disk more than once (Table 2's statistic).
    assert!(
        r.writes_per_block > 1.05,
        "hot blocks are rewritten: {}",
        r.writes_per_block
    );
}

#[test]
fn warmup_excludes_early_reads() {
    let wl = charisma();
    let full = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1),
        wl.clone(),
    );
    let mut cfg = pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    cfg.warmup = SimDuration::from_secs(5);
    let warmed = run_simulation(cfg, wl);
    assert!(warmed.reads < full.reads, "warm-up reads must be excluded");
    assert!(warmed.reads > 0);
}

#[test]
fn larger_caches_do_not_hurt() {
    let wl = charisma();
    let small = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 1),
        wl.clone(),
    );
    let large = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 16),
        wl,
    );
    assert!(
        large.avg_read_ms <= small.avg_read_ms * 1.05,
        "16MB ({:.3}) should not lose to 1MB ({:.3})",
        large.avg_read_ms,
        small.avg_read_ms
    );
    assert!(large.cache.hit_ratio() >= small.cache.hit_ratio() - 0.01);
}

#[test]
fn sprite_works_on_both_systems_with_similar_results() {
    // Figure 7's observation: with Sprite's minimal sharing, xFS's
    // per-node linearity behaves much like PAFS's global one.
    let wl = sprite();
    let pafs = run_simulation(
        now_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 2),
        wl.clone(),
    );
    let xfs = run_simulation(
        now_config(CacheSystem::Xfs, PrefetchConfig::ln_agr_is_ppm(1), 2),
        wl,
    );
    // Same ballpark (within 3x) — not the 10x blowup a shared workload
    // would show.
    let ratio = xfs.avg_read_ms / pafs.avg_read_ms;
    assert!(
        (0.33..3.0).contains(&ratio),
        "xFS {:.3} vs PAFS {:.3}",
        xfs.avg_read_ms,
        pafs.avg_read_ms
    );
}

#[test]
fn report_accounting_is_consistent() {
    let r: SimReport = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(3), 2),
        charisma(),
    );
    // Cache accesses seen = at least one per read request.
    assert!(r.cache.accesses() >= r.reads);
    // Demand disk reads equal demand misses that actually went to disk,
    // so they can never exceed cache misses.
    assert!(r.disk_reads_demand <= r.cache.misses);
    // Every issued prefetch either hit the disk or was still in flight
    // at the end.
    assert!(r.disk_reads_prefetch <= r.prefetch.issued);
    // Mispredict ratio is a ratio.
    assert!((0.0..=1.0).contains(&r.mispredict_ratio));
    // Utilization is a fraction.
    assert!((0.0..=1.0).contains(&r.disk_utilization));
}

#[test]
fn local_only_baseline_fetches_more_from_disk() {
    // Without cooperation every node fetches its own copy from disk;
    // the cooperative caches fetch once and share. Run at 1 MB per node
    // so the working set does not fit locally — with larger caches both
    // systems converge on the same demand-read count.
    let wl = charisma(); // 100% of files shared between nodes
    let coop = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1),
        wl.clone(),
    );
    let local = run_simulation(
        pm_config(CacheSystem::LocalOnly, PrefetchConfig::np(), 1),
        wl,
    );
    assert!(
        local.disk_reads_demand > coop.disk_reads_demand,
        "local-only {} vs cooperative {}",
        local.disk_reads_demand,
        coop.disk_reads_demand
    );
    assert_eq!(local.cache.remote_hits, 0, "no cooperation, no remote hits");
}

#[test]
fn prefetch_priority_off_still_works() {
    let mut cfg = pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(1), 2);
    cfg.prefetch_priority = false;
    let r = run_simulation(cfg, charisma());
    assert!(r.reads > 0);
    assert!(r.prefetch.issued > 0);
}

#[test]
fn fifo_replacement_runs_and_differs_from_lru_under_pressure() {
    use lap_core::Replacement;
    let wl = charisma();
    // Shrink the cache well below the working set so the replacement
    // policy actually decides victims.
    let mut lru_cfg = pm_config(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    lru_cfg.cache_bytes_per_node = 256 * 1024; // 32 blocks per node
    let mut cfg = lru_cfg.clone();
    let lru = run_simulation(lru_cfg, wl.clone());
    cfg.replacement = Replacement::Fifo;
    let fifo = run_simulation(cfg, wl);
    // Both run; under pressure the hit counts differ (FIFO ignores
    // recency). Equality would mean the policy knob is dead.
    assert!(fifo.reads == lru.reads);
    assert_ne!(
        (fifo.cache.local_hits, fifo.cache.remote_hits),
        (lru.cache.local_hits, lru.cache.remote_hits),
        "FIFO must behave differently from LRU under pressure"
    );
}

#[test]
fn backoff_predictor_runs_through_the_simulator() {
    let r = run_simulation(
        pm_config(
            CacheSystem::Pafs,
            PrefetchConfig::ln_agr_is_ppm_backoff(3),
            2,
        ),
        charisma(),
    );
    assert!(r.prefetch.issued > 0);
    assert!(r.label.contains("IS_PPM*:3"));
    // Back-off escapes to lower orders instead of OBA, so its fallback
    // share must not exceed the plain order-3 predictor's.
    let plain = run_simulation(
        pm_config(CacheSystem::Pafs, PrefetchConfig::ln_agr_is_ppm(3), 2),
        charisma(),
    );
    assert!(
        r.prefetch.fallback_share() <= plain.prefetch.fallback_share() + 1e-9,
        "backoff {:.3} vs plain {:.3}",
        r.prefetch.fallback_share(),
        plain.prefetch.fallback_share()
    );
}

#[test]
fn unbounded_lead_matches_paper_pure_semantics() {
    // lead_cap = None must still terminate and produce sane results
    // (the cycle budget is the only walk bound left).
    let mut pf = PrefetchConfig::ln_agr_is_ppm(1);
    pf.lead_cap = None;
    let r = run_simulation(pm_config(CacheSystem::Pafs, pf, 2), charisma());
    assert!(r.reads > 0);
    assert!((0.0..=1.0).contains(&r.mispredict_ratio));
}

#[test]
fn re_reads_through_a_tiny_cache_keep_prefetching() {
    // Two sequential passes over one file with a cache far smaller than
    // the file: pass 1's prefetched blocks are evicted before pass 2.
    // Pass 2's demands are on the old predicted path, so without the
    // residency-aware restart the walk would stay dormant and pass 2
    // would get no prefetching at all.
    use ioworkload::{FileMeta, Op, ProcessTrace};
    let block = 8192u64;
    let blocks = 64u64;
    let mut ops = Vec::new();
    for _pass in 0..2 {
        for b in 0..blocks {
            ops.push(Op::Compute(SimDuration::from_millis(30)));
            ops.push(Op::Read {
                file: ioworkload::FileId(0),
                offset: b * block,
                len: block,
            });
        }
    }
    let wl = Workload {
        name: "rereads".into(),
        block_size: block,
        nodes: 1,
        files: vec![FileMeta {
            id: ioworkload::FileId(0),
            size: blocks * block,
        }],
        processes: vec![ProcessTrace {
            proc: ioworkload::ProcId(0),
            node: ioworkload::NodeId(0),
            ops,
        }],
    };
    wl.validate();

    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::ln_agr_oba(), 1);
    cfg.machine.nodes = 1;
    cfg.machine.disks = 2;
    cfg.cache_bytes_per_node = 8 * block; // 8 blocks: file never fits
    let r = run_simulation(cfg, wl);

    // The walk restarted when pass 2 found its old path evicted...
    assert!(r.prefetch.restarts > 0, "no restarts: {:?}", r.prefetch);
    // ...and pass 2 was prefetched again: more prefetch fetches than
    // one pass's worth of blocks.
    assert!(
        r.prefetch.issued > blocks,
        "pass 2 not re-prefetched: {} issued",
        r.prefetch.issued
    );
    // With 30 ms gaps (>1 disk service), most pass-2 reads hit.
    assert!(r.cache.hit_ratio() > 0.5, "hit {:.2}", r.cache.hit_ratio());
}
