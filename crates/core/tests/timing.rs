//! Analytic timing tests: tiny hand-built workloads whose latencies can
//! be computed on paper from the Table 1 model, checked to the
//! nanosecond. These pin the machine model itself — if a refactor
//! changes any cost formula, these fail with exact numbers.

use ioworkload::{FileMeta, Op, ProcessTrace, Workload};
use lap_core::{run_simulation, CacheSystem, SimConfig};
use prefetch::PrefetchConfig;
use simkit::SimDuration;

const BLOCK: u64 = 8192;

/// One process on node 0 performing `ops` against a single 64-block file.
fn one_proc_workload(ops: Vec<Op>) -> Workload {
    let wl = Workload {
        name: "timing".into(),
        block_size: BLOCK,
        nodes: 1,
        files: vec![FileMeta {
            id: ioworkload::FileId(0),
            size: 64 * BLOCK,
        }],
        processes: vec![ProcessTrace {
            proc: ioworkload::ProcId(0),
            node: ioworkload::NodeId(0),
            ops,
        }],
    };
    wl.validate();
    wl
}

fn config() -> SimConfig {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 1;
    cfg.machine.disks = 1;
    cfg
}

fn read(blk: u64, nblocks: u64) -> Op {
    Op::Read {
        file: ioworkload::FileId(0),
        offset: blk * BLOCK,
        len: nblocks * BLOCK,
    }
}

/// Expected PM model costs, in nanoseconds (Table 1):
/// - disk read service: 10.5 ms seek + 8 KB / 10 MB/s = 10_500_000 + 819_200
/// - remote transfer of B bytes: 5 us + 10 us + B / 200 MB/s
/// - local transfer of B bytes: 1 us + 2 us + B / 500 MB/s
const DISK_READ_NS: u64 = 10_500_000 + 819_200;

fn remote_ns(bytes: u64) -> u64 {
    15_000 + (bytes as f64 / 200.0e6 * 1e9).round() as u64
}

fn local_ns(bytes: u64) -> u64 {
    3_000 + (bytes as f64 / 500.0e6 * 1e9).round() as u64
}

#[test]
fn cold_single_block_read_costs_disk_plus_transfer() {
    let wl = one_proc_workload(vec![read(0, 1)]);
    let r = run_simulation(config(), wl);
    assert_eq!(r.reads, 1);
    let expect_ms = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    assert!(
        (r.avg_read_ms - expect_ms).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect_ms
    );
    assert_eq!(r.disk_reads_demand, 1);
}

#[test]
fn warm_single_block_read_is_a_local_memory_copy() {
    let wl = one_proc_workload(vec![
        read(0, 1),
        Op::Compute(SimDuration::from_millis(1)),
        read(0, 1),
    ]);
    let r = run_simulation(config(), wl);
    assert_eq!(r.reads, 2);
    // Second read: resident on this node, local transfer only.
    let cold = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    let warm = local_ns(BLOCK) as f64 / 1e6;
    let expect = (cold + warm) / 2.0;
    assert!(
        (r.avg_read_ms - expect).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect
    );
    assert_eq!(r.cache.local_hits, 1);
}

#[test]
fn two_block_cold_read_on_one_disk_serializes_fetches() {
    // Both blocks live on the single disk: service is serial, so the
    // request completes after 2 disk services + one 2-block transfer.
    let wl = one_proc_workload(vec![read(0, 2)]);
    let r = run_simulation(config(), wl);
    let expect_ms = (2 * DISK_READ_NS + remote_ns(2 * BLOCK)) as f64 / 1e6;
    assert!(
        (r.avg_read_ms - expect_ms).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect_ms
    );
}

#[test]
fn two_block_cold_read_parallelizes_across_disks() {
    // With 2 disks the blocks stripe across both: the request completes
    // after ~one disk service + the transfer.
    let mut cfg = config();
    cfg.machine.disks = 2;
    let wl = one_proc_workload(vec![read(0, 2)]);
    let r = run_simulation(cfg, wl);
    let expect_ms = (DISK_READ_NS + remote_ns(2 * BLOCK)) as f64 / 1e6;
    assert!(
        (r.avg_read_ms - expect_ms).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect_ms
    );
}

#[test]
fn writes_never_wait_for_the_disk() {
    // A cold write is write-allocate: it costs only the transfer, and
    // the disk write happens later (final sync), not inline.
    let wl = one_proc_workload(vec![Op::Write {
        file: ioworkload::FileId(0),
        offset: 0,
        len: BLOCK,
    }]);
    let r = run_simulation(config(), wl);
    assert_eq!(r.writes, 1);
    let expect_ms = remote_ns(BLOCK) as f64 / 1e6;
    assert!(
        (r.avg_write_ms - expect_ms).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_write_ms,
        expect_ms
    );
    // The block still reaches the disk through the shutdown sweep.
    assert_eq!(r.disk_writes, 1);
    assert!((r.writes_per_block - 1.0).abs() < 1e-12);
}

#[test]
fn prefetched_block_turns_the_next_read_into_a_hit() {
    // Ln_Agr_OBA: after the first (cold) read of block 0, block 1 is
    // prefetched during the compute gap; the second read costs only a
    // local copy.
    let mut cfg = config();
    cfg.prefetch = PrefetchConfig::ln_agr_oba();
    let wl = one_proc_workload(vec![
        read(0, 1),
        Op::Compute(SimDuration::from_millis(100)), // >> one disk service
        read(1, 1),
    ]);
    let r = run_simulation(cfg, wl);
    let cold = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    // Prefetched blocks land in the global pool tagged to the file's
    // server node — node 0 here — so the hit is local.
    let warm = local_ns(BLOCK) as f64 / 1e6;
    let expect = (cold + warm) / 2.0;
    assert!(
        (r.avg_read_ms - expect).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect
    );
    assert_eq!(r.cache.prefetch_used, 1);
}

#[test]
fn demand_read_joins_an_in_flight_prefetch() {
    // The demand for block 1 arrives while its prefetch is still on the
    // disk: the request joins the fetch (no second disk read) and the
    // absorption is counted.
    let mut cfg = config();
    cfg.prefetch = PrefetchConfig::ln_agr_oba();
    let wl = one_proc_workload(vec![
        read(0, 1),
        Op::Compute(SimDuration::from_millis(1)), // << one disk service
        read(1, 1),
    ]);
    let r = run_simulation(cfg, wl);
    assert_eq!(r.prefetch_absorbed, 1);
    // Exactly two disk reads total: block 0 (demand) and block 1
    // (prefetch, absorbed) — plus whatever the walk fetched beyond
    // block 1, but never block 1 twice.
    assert_eq!(r.disk_reads_demand, 1);
    assert!(r.disk_reads_prefetch >= 1);
}

#[test]
fn compute_time_does_not_count_as_read_latency() {
    let wl = one_proc_workload(vec![
        Op::Compute(SimDuration::from_secs(5)),
        read(0, 1),
        Op::Compute(SimDuration::from_secs(5)),
    ]);
    let r = run_simulation(config(), wl);
    let expect_ms = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    assert!((r.avg_read_ms - expect_ms).abs() < 1e-9);
    // The run ends at the first periodic write-back sweep (30 s), which
    // outlives the ~10 s of process activity.
    assert!((r.sim_seconds - 30.0).abs() < 1e-6, "{}", r.sim_seconds);
}

// ----- xFS-specific paths ------------------------------------------------

/// Two processes on two nodes sharing one file.
fn two_node_workload(ops0: Vec<Op>, ops1: Vec<Op>) -> Workload {
    let wl = Workload {
        name: "timing-2n".into(),
        block_size: BLOCK,
        nodes: 2,
        files: vec![FileMeta {
            id: ioworkload::FileId(0),
            size: 64 * BLOCK,
        }],
        processes: vec![
            ProcessTrace {
                proc: ioworkload::ProcId(0),
                node: ioworkload::NodeId(0),
                ops: ops0,
            },
            ProcessTrace {
                proc: ioworkload::ProcId(1),
                node: ioworkload::NodeId(1),
                ops: ops1,
            },
        ],
    };
    wl.validate();
    wl
}

#[test]
fn xfs_remote_hit_costs_a_network_transfer() {
    // Node 0 faults the block in; node 1 then reads it as a remote hit
    // whose cost is exactly one remote transfer.
    let mut cfg = SimConfig::pm(CacheSystem::Xfs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 2;
    cfg.machine.disks = 1;
    let wl = two_node_workload(
        vec![read(0, 1)],
        vec![Op::Compute(SimDuration::from_millis(100)), read(0, 1)],
    );
    let r = run_simulation(cfg, wl);
    assert_eq!(r.reads, 2);
    assert_eq!(r.cache.remote_hits, 1);
    let cold = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    let remote = remote_ns(BLOCK) as f64 / 1e6;
    let expect = (cold + remote) / 2.0;
    assert!(
        (r.avg_read_ms - expect).abs() < 1e-9,
        "measured {} expected {}",
        r.avg_read_ms,
        expect
    );
    // The remote read left a local duplicate behind: a third read from
    // node 1 would be local. Verified through resident copies: 2.
    assert_eq!(r.cache.demand_inserts, 1, "one disk fill only");
}

#[test]
fn xfs_demand_fetches_do_not_coalesce_across_nodes() {
    // Both nodes miss the same block at the same instant: on xFS each
    // node runs its own fetch (per-node coalescing scope), so the disk
    // serves two reads.
    let mut cfg = SimConfig::pm(CacheSystem::Xfs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 2;
    cfg.machine.disks = 1;
    let wl = two_node_workload(vec![read(0, 1)], vec![read(0, 1)]);
    let r = run_simulation(cfg, wl);
    assert_eq!(r.disk_reads_demand, 2, "duplicate fetches on xFS");

    // On PAFS the same scenario coalesces into one disk read.
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 2;
    cfg.machine.disks = 1;
    let wl = two_node_workload(vec![read(0, 1)], vec![read(0, 1)]);
    let r = run_simulation(cfg, wl);
    assert_eq!(r.disk_reads_demand, 1, "global coalescing on PAFS");
}

#[test]
fn pafs_remote_hit_costs_a_network_transfer() {
    let mut cfg = SimConfig::pm(CacheSystem::Pafs, PrefetchConfig::np(), 1);
    cfg.machine.nodes = 2;
    cfg.machine.disks = 1;
    let wl = two_node_workload(
        vec![read(0, 1)],
        vec![Op::Compute(SimDuration::from_millis(100)), read(0, 1)],
    );
    let r = run_simulation(cfg, wl);
    assert_eq!(r.cache.remote_hits, 1);
    let cold = (DISK_READ_NS + remote_ns(BLOCK)) as f64 / 1e6;
    let remote = remote_ns(BLOCK) as f64 / 1e6;
    let expect = (cold + remote) / 2.0;
    assert!((r.avg_read_ms - expect).abs() < 1e-9);
}

#[test]
fn demand_read_promotes_a_queued_prefetch() {
    // One disk, Ln_Agr_OBA. After the cold read of block 0, the walk
    // queues prefetches for blocks 1, 2, ... one at a time. A demand
    // read for a block whose prefetch is *waiting* in the disk queue
    // must not issue a second disk read.
    let mut cfg = config();
    cfg.prefetch = PrefetchConfig::ln_agr_oba();
    let wl = one_proc_workload(vec![
        read(0, 1),
        // Immediately demand block 2: its prefetch is either queued
        // behind block 1's or not yet issued.
        read(2, 1),
        Op::Compute(SimDuration::from_millis(200)),
        read(3, 1),
    ]);
    let r = run_simulation(cfg, wl);
    // Every distinct block hits the disk at most once.
    assert!(
        r.disk_reads_demand + r.disk_reads_prefetch <= 64,
        "no duplicate fetches possible on one node/file"
    );
    assert!(r.reads == 3);
}
