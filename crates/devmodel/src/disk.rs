//! The disk service model: either the paper's fixed per-operation cost
//! or the geometry-aware model of [`DiskGeometry`].

use lapobs::Registry;
use simkit::{DeviceOp, JobSpec, MechDetail, ServiceCost, ServiceModel, SimDuration, SimTime};

use crate::geometry::DiskGeometry;

/// Mechanical accounting kept by a geometry-aware disk.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DiskModelStats {
    /// Operations priced.
    pub services: u64,
    /// Total cylinders travelled.
    pub seek_cylinders: u64,
    /// Total time spent seeking (incl. write settle).
    pub seek_time: SimDuration,
    /// Total rotational wait.
    pub rot_wait: SimDuration,
}

impl DiskModelStats {
    /// Register the counters under `prefix.` in a metrics registry.
    pub fn register_into(&self, reg: &mut Registry, prefix: &str) {
        reg.counter(format!("{prefix}.seek_cylinders"), self.seek_cylinders);
        reg.gauge(format!("{prefix}.seek_s"), self.seek_time.as_secs_f64());
        reg.gauge(format!("{prefix}.rot_wait_s"), self.rot_wait.as_secs_f64());
    }

    /// Mean seek distance per operation, in cylinders.
    pub fn mean_seek_cylinders(&self) -> f64 {
        if self.services == 0 {
            0.0
        } else {
            self.seek_cylinders as f64 / self.services as f64
        }
    }
}

/// A geometry-aware disk: prices each operation from the arm position
/// it was left in by the previous one and the platter phase of the
/// simulated clock.
#[derive(Clone, Debug)]
pub struct GeomDisk {
    /// The physical parameters.
    pub geom: DiskGeometry,
    /// File-system block size (for LBA layout).
    block_bytes: u64,
    /// Where the arm currently is.
    head_lba: u64,
    stats: DiskModelStats,
}

/// One disk's service model. `Fixed` reproduces the original constant
/// costs bit-for-bit; `Geometry` makes cost depend on placement and
/// history.
#[derive(Clone, Debug)]
pub enum DiskModel {
    /// The paper's Table 1 model: one constant per operation kind,
    /// already including seek, rotation and transfer.
    Fixed {
        /// Full service time of a block read.
        read: SimDuration,
        /// Full service time of a block write.
        write: SimDuration,
        /// Media transfer time of one additional contiguous block —
        /// what each block beyond the first of a multi-block job costs
        /// (the seek/rotation constant is paid once). Single-block jobs
        /// never touch it, so the seed costs are reproduced bit-for-bit.
        transfer: SimDuration,
    },
    /// The mechanical model.
    Geometry(GeomDisk),
}

impl DiskModel {
    /// The fixed model with precomputed full service times; `transfer`
    /// is the per-block media transfer charged for each block beyond
    /// the first of a multi-block job.
    pub fn fixed(read: SimDuration, write: SimDuration, transfer: SimDuration) -> Self {
        DiskModel::Fixed {
            read,
            write,
            transfer,
        }
    }

    /// A geometry model with the head parked at LBA 0.
    pub fn geometry(geom: DiskGeometry, block_bytes: u64) -> Self {
        DiskModel::Geometry(GeomDisk {
            geom,
            block_bytes,
            head_lba: 0,
            stats: DiskModelStats::default(),
        })
    }

    /// LBA of `(file, block)` under this model's layout; `None` for the
    /// fixed model, whose cost is position-independent.
    pub fn lba_of(&self, file: u32, block: u64) -> Option<u64> {
        match self {
            DiskModel::Fixed { .. } => None,
            DiskModel::Geometry(d) => Some(d.geom.lba_of(file, block, d.block_bytes)),
        }
    }

    /// Mechanical accounting, if this model keeps any.
    pub fn stats(&self) -> Option<&DiskModelStats> {
        match self {
            DiskModel::Fixed { .. } => None,
            DiskModel::Geometry(d) => Some(&d.stats),
        }
    }
}

impl ServiceModel for DiskModel {
    fn position(&self) -> u64 {
        match self {
            DiskModel::Fixed { .. } => 0,
            DiskModel::Geometry(d) => d.head_lba,
        }
    }

    fn service(&mut self, now: SimTime, job: &JobSpec) -> ServiceCost {
        match self {
            DiskModel::Fixed {
                read,
                write,
                transfer,
            } => {
                // One positioning constant, then contiguous media
                // transfer for every additional block of the job.
                let base = match job.op {
                    DeviceOp::Write => *write,
                    _ => *read,
                };
                let extra = job.blocks.saturating_sub(1);
                ServiceCost::flat(base + *transfer * extra as u64)
            }
            DiskModel::Geometry(d) => {
                let lba = job.pos.unwrap_or(d.head_lba);
                let from = d.geom.cylinder_of(d.head_lba);
                let to = d.geom.cylinder_of(lba);
                let mut seek = d.geom.seek_time(from, to);
                if job.op == DeviceOp::Write {
                    seek += d.geom.write_settle;
                }
                let rot = d.geom.rot_wait(now + seek, lba);
                // `job.bytes` covers every block of the job, so a
                // multi-block job pays one seek + one rotational wait
                // and then the full contiguous transfer.
                let total = seek + rot + d.geom.transfer_time(job.bytes);
                // A single-block job leaves the head where it landed
                // (seed behaviour, bit-identical); a multi-block job
                // leaves it at the start of its last member block.
                d.head_lba = if job.blocks > 1 {
                    let sectors_per_block = (d.block_bytes / u64::from(d.geom.sector_bytes)).max(1);
                    lba + (job.blocks as u64 - 1) * sectors_per_block
                } else {
                    lba
                };
                d.stats.services += 1;
                d.stats.seek_cylinders += from.abs_diff(to) as u64;
                d.stats.seek_time += seek;
                d.stats.rot_wait += rot;
                ServiceCost {
                    total,
                    retry: SimDuration::ZERO,
                    mech: Some(MechDetail {
                        seek_cylinders: from.abs_diff(to),
                        rot_wait: rot,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_job(pos: Option<u64>) -> JobSpec {
        JobSpec {
            op: DeviceOp::Read,
            pos,
            bytes: 8192,
            blocks: 1,
            rid: 0,
        }
    }

    #[test]
    fn fixed_model_reproduces_constants() {
        let r = SimDuration::from_nanos(11_319_200);
        let w = SimDuration::from_nanos(13_319_200);
        let x = SimDuration::from_nanos(819_200);
        let mut m = DiskModel::fixed(r, w, x);
        assert_eq!(m.service(SimTime::ZERO, &read_job(None)).total, r);
        let wj = JobSpec {
            op: DeviceOp::Write,
            pos: None,
            bytes: 8192,
            blocks: 1,
            rid: 0,
        };
        assert_eq!(m.service(SimTime::ZERO, &wj).total, w);
        assert!(m.service(SimTime::ZERO, &read_job(None)).mech.is_none());
        assert!(m.lba_of(0, 0).is_none());
    }

    #[test]
    fn fixed_model_prices_extra_blocks_at_transfer_cost() {
        let r = SimDuration::from_nanos(11_319_200);
        let w = SimDuration::from_nanos(13_319_200);
        let x = SimDuration::from_nanos(819_200);
        let mut m = DiskModel::fixed(r, w, x);
        let run = JobSpec {
            op: DeviceOp::Read,
            pos: None,
            bytes: 4 * 8192,
            blocks: 4,
            rid: 0,
        };
        assert_eq!(m.service(SimTime::ZERO, &run).total, r + x * 3);
    }

    #[test]
    fn geometry_multi_block_run_pays_one_seek_and_leaves_head_at_last_block() {
        let g = DiskGeometry {
            extent_blocks: 8,
            ..DiskGeometry::pm()
        };
        let spb = 8192 / g.sector_bytes as u64;
        let n = 4u32;

        // A 4-block contiguous run as one job...
        let mut run_model = DiskModel::geometry(g, 8192);
        let first = run_model.lba_of(7, 0).unwrap();
        let run = JobSpec {
            op: DeviceOp::Read,
            pos: Some(first),
            bytes: n as u64 * 8192,
            blocks: n,
            rid: 0,
        };
        let run_cost = run_model.service(SimTime::ZERO, &run);

        // ...vs the same blocks one job at a time.
        let mut blk_model = DiskModel::geometry(g, 8192);
        let mut t = SimTime::ZERO;
        let mut blk_total = SimDuration::ZERO;
        for b in 0..n as u64 {
            let j = read_job(blk_model.lba_of(7, b));
            let c = blk_model.service(t, &j);
            t += c.total;
            blk_total += c.total;
        }

        // One seek + one rotational wait for the whole run: cheaper
        // than per-block issue (which re-waits on the platter phase).
        assert!(run_cost.total < blk_total);
        // The run charges the full contiguous transfer.
        assert!(run_cost.total >= g.transfer_time(n as u64 * 8192));
        // The head ends at the last member block's start LBA, so a
        // follow-up read there is seek-free.
        let next = run_model.service(
            SimTime::ZERO + run_cost.total,
            &read_job(Some(first + (n as u64 - 1) * spb)),
        );
        assert_eq!(next.mech.unwrap().seek_cylinders, 0);
    }

    #[test]
    fn geometry_cost_depends_on_history() {
        let g = DiskGeometry::pm();
        let mut m = DiskModel::geometry(g, 8192);
        let far = g.sectors_per_cylinder() * 2000;
        let a = m.service(SimTime::ZERO, &read_job(Some(far)));
        // Head is now at `far`; re-reading it costs no seek.
        let b = m.service(SimTime::ZERO + a.total, &read_job(Some(far)));
        assert!(a.total > b.total, "seek distance did not matter");
        assert_eq!(b.mech.unwrap().seek_cylinders, 0);
        let stats = m.stats().unwrap();
        assert_eq!(stats.services, 2);
        assert!(stats.seek_cylinders >= 1999);
    }

    #[test]
    fn writes_cost_more_than_reads_at_the_same_place() {
        let g = DiskGeometry::pm();
        let lba = 12_345u64;
        // Same starting state for both:
        let mut mr = DiskModel::geometry(g, 8192);
        let mut mw = DiskModel::geometry(g, 8192);
        let r = mr.service(SimTime::ZERO, &read_job(Some(lba))).total;
        let w = mw
            .service(
                SimTime::ZERO,
                &JobSpec {
                    op: DeviceOp::Write,
                    pos: Some(lba),
                    bytes: 8192,
                    blocks: 1,
                    rid: 0,
                },
            )
            .total;
        // The write settle shifts arrival at the track, so rotational
        // wait differs too; but the write is never cheaper than the
        // read minus a full revolution.
        assert!(w + g.rotation > r + g.write_settle);
    }

    #[test]
    fn sequential_reads_are_much_cheaper_than_scattered() {
        // The calibrated preset scatters every block (see `pm`); give
        // this one real extents so sequential runs stay contiguous.
        let g = DiskGeometry {
            extent_blocks: 64,
            ..DiskGeometry::pm()
        };
        let mut seq = DiskModel::geometry(g, 8192);
        let mut scat = DiskModel::geometry(g, 8192);
        let mut t_seq = SimTime::ZERO;
        let mut t_scat = SimTime::ZERO;
        let mut seq_total = SimDuration::ZERO;
        let mut scat_total = SimDuration::ZERO;
        for b in 0..200u64 {
            let j = read_job(seq.lba_of(1, b));
            let c = seq.service(t_seq, &j);
            t_seq += c.total;
            seq_total += c.total;
            // Scattered: hop between files every request.
            let j = read_job(scat.lba_of((b % 40) as u32, b * 37));
            let c = scat.service(t_scat, &j);
            t_scat += c.total;
            scat_total += c.total;
        }
        assert!(
            seq_total.as_nanos() * 2 < scat_total.as_nanos(),
            "sequential ({seq_total:?}) not clearly cheaper than scattered ({scat_total:?})"
        );
    }
}
