//! Fault hooks at dispatch pricing.
//!
//! A station prices a job the moment it starts service (see
//! [`simkit::ServiceModel`]). [`FaultedModel`] wraps any inner model
//! and lets a [`DispatchFaults`] implementation add a *retry
//! surcharge* at exactly that point: the extra time the device spends
//! on failed attempts and backoff before the final successful attempt.
//! The surcharge travels in [`ServiceCost::retry`], so the span
//! accounting downstream can attribute it separately while the total
//! stays exact.
//!
//! The concrete fault model (seeded draws, burst windows, retry
//! budgets) lives in the `faultkit` crate; this module only defines
//! the contract, mirroring how `simkit` hosts [`simkit::ServiceModel`]
//! without knowing about disks.

use simkit::{JobSpec, ServiceCost, ServiceModel, SimDuration, SimTime};

/// Adds fault-induced retry time to a job priced at dispatch time.
///
/// Implementations must be deterministic in their own state and the
/// arguments, and must return [`SimDuration::ZERO`] without consuming
/// any randomness when no fault source is configured — that is what
/// keeps zero-fault runs bit-identical to runs without a fault layer.
pub trait DispatchFaults {
    /// Surcharge for a job whose successful attempt costs `base`,
    /// starting at `now`: the summed cost of the failed attempts plus
    /// backoff, or zero when no fault fires.
    fn dispatch_surcharge(
        &mut self,
        now: SimTime,
        job: &JobSpec,
        base: &ServiceCost,
    ) -> SimDuration;
}

/// A [`ServiceModel`] wrapper that prices through `inner` and then
/// applies a [`DispatchFaults`] surcharge. The surcharge is added to
/// both `total` and `retry` of the returned cost, so the mechanical
/// breakdown of the successful attempt is untouched.
pub struct FaultedModel<'a> {
    /// The fault-free pricing model (disk or link).
    pub inner: &'a mut dyn ServiceModel,
    /// The fault source consulted after pricing.
    pub faults: &'a mut dyn DispatchFaults,
}

impl ServiceModel for FaultedModel<'_> {
    fn position(&self) -> u64 {
        self.inner.position()
    }

    fn service(&mut self, now: SimTime, job: &JobSpec) -> ServiceCost {
        let mut cost = self.inner.service(now, job);
        let extra = self.faults.dispatch_surcharge(now, job, &cost);
        if extra > SimDuration::ZERO {
            cost.total += extra;
            cost.retry += extra;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;

    struct EveryOther {
        calls: u64,
    }

    impl DispatchFaults for EveryOther {
        fn dispatch_surcharge(
            &mut self,
            _now: SimTime,
            _job: &JobSpec,
            base: &ServiceCost,
        ) -> SimDuration {
            self.calls += 1;
            if self.calls.is_multiple_of(2) {
                base.total + SimDuration::from_millis(1)
            } else {
                SimDuration::ZERO
            }
        }
    }

    fn job() -> JobSpec {
        JobSpec {
            op: simkit::DeviceOp::Read,
            pos: None,
            bytes: 8192,
            blocks: 1,
            rid: 0,
        }
    }

    #[test]
    fn surcharge_lands_in_total_and_retry() {
        let r = SimDuration::from_millis(10);
        let mut inner = DiskModel::fixed(r, r, SimDuration::ZERO);
        let mut faults = EveryOther { calls: 0 };
        let mut m = FaultedModel {
            inner: &mut inner,
            faults: &mut faults,
        };
        let clean = m.service(SimTime::ZERO, &job());
        assert_eq!(clean.total, r);
        assert_eq!(clean.retry, SimDuration::ZERO);
        let faulted = m.service(SimTime::ZERO, &job());
        assert_eq!(faulted.retry, r + SimDuration::from_millis(1));
        assert_eq!(faulted.total, r + faulted.retry);
        // The successful attempt's breakdown is untouched.
        assert_eq!(faulted.mech, clean.mech);
    }
}
