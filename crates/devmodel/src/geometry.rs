//! Physical disk geometry: cylinders, tracks, sectors, the seek curve,
//! rotational position, and the extent-based block→LBA layout.
//!
//! Everything is integer arithmetic on the deterministic simulation
//! clock, so two runs of the same workload produce bit-identical
//! timings. The only floating point is the square root in the seek
//! curve and the bandwidth division in the transfer time — both IEEE
//! operations with fully-determined results.

use simkit::{SimDuration, SimTime};

/// Physical parameters of one disk.
///
/// The seek curve is the classic settle-plus-square-root model
/// (Ruemmler & Wilkes): a seek over `d > 0` cylinders costs
/// `seek_settle + seek_per_sqrt_cyl · √d`, and a zero-distance access
/// costs nothing mechanical. Writes add `write_settle` on top (head
/// settling is longer before a write than a read, which is how the
/// paper's Table 1 charges writes 2 ms more than reads).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DiskGeometry {
    /// Number of cylinders (seek distance domain).
    pub cylinders: u32,
    /// Heads (= tracks per cylinder).
    pub heads: u32,
    /// Sectors per track.
    pub sectors_per_track: u32,
    /// Bytes per sector.
    pub sector_bytes: u32,
    /// Time of one full platter revolution.
    pub rotation: SimDuration,
    /// Fixed part of any non-zero seek (arm acceleration + settle).
    pub seek_settle: SimDuration,
    /// Distance-dependent part: cost per √cylinder travelled.
    pub seek_per_sqrt_cyl: SimDuration,
    /// Extra settle charged on writes.
    pub write_settle: SimDuration,
    /// Sustained media transfer bandwidth, bytes/s.
    pub bandwidth: f64,
    /// File-system blocks per allocation extent. Blocks within one
    /// extent are laid out contiguously; extents are hash-scattered
    /// over the platter, which is what makes seek distance depend on
    /// the access pattern.
    pub extent_blocks: u64,
}

impl DiskGeometry {
    /// The disk of the paper's parallel-machine column, calibrated so
    /// the *mean* FIFO read service matches Table 1's fixed
    /// 10.5 ms + 819.2 µs (8 KB at 10 MB/s) and — equally important —
    /// so the service-time *variance* stays small. The paper's constant
    /// is a deterministic server; queueing delay and prefetch
    /// timeliness are convex in service time, so a geometry with the
    /// right mean but a wide spread still inflates read times several
    /// percent. The calibration therefore folds the mean rotational
    /// latency of a realistic platter into `seek_settle` and keeps only
    /// a small explicit `rotation` term for phase effects:
    /// random-to-random seek distance is triangular with
    /// E[√d] = (8/15)·√2048 ≈ 24.1 cylinders^½, giving
    /// E[seek] ≈ 8.41 ms + 70 µs·24.1 ≈ 10.1 ms, E[rot] ≈ 0.25 ms,
    /// total ≈ 11.2 ms — and, on the seed scenarios, per-op means and
    /// end-to-end read times within 2% of the fixed model (verified by
    /// the workspace-root `tests/devmodel.rs`).
    ///
    /// The preset scatters at block granularity (`extent_blocks = 1`):
    /// Table 1's constant charges *every* operation an average seek, so
    /// matching it requires a layout whose marginal cost has no
    /// sequential discount. Larger extents reward locality (sequential
    /// runs become near-free mechanically) and are fully supported —
    /// they just price runs *below* the paper's constants, breaking
    /// comparability with the seed results.
    pub fn pm() -> Self {
        DiskGeometry {
            cylinders: 2048,
            heads: 8,
            sectors_per_track: 128,
            sector_bytes: 512,
            rotation: SimDuration::from_micros(500),
            seek_settle: SimDuration::from_micros(8410),
            seek_per_sqrt_cyl: SimDuration::from_micros(70),
            write_settle: SimDuration::from_millis(2),
            bandwidth: 10.0e6,
            extent_blocks: 1,
        }
    }

    /// The NOW column uses the same disks as the PM column (Table 1
    /// lists one disk spec), so this is [`pm`](Self::pm) under another
    /// name — kept separate so the presets can diverge later.
    pub fn now() -> Self {
        Self::pm()
    }

    /// The [`pm`](Self::pm) mechanics with an `extent_blocks`-long
    /// allocation extent (`>= 1`; `pm_extent(1)` *is* the calibrated
    /// `pm` preset). The mechanical constants are deliberately kept
    /// identical: the calibration contract (seed scenarios within 2% of
    /// the fixed model under FIFO) is pinned to `extent_blocks = 1`,
    /// where every operation pays an average seek like Table 1's
    /// constant. Larger extents keep sequential runs contiguous, so
    /// both demand reads and extent-granular prefetch batches price
    /// runs *below* the paper's constants — that is the point of the
    /// extent ablation, and why its columns are compared against the
    /// `extent_blocks = 1` column of the *same* geometry rather than
    /// against the fixed model (see `docs/CALIBRATION.md`).
    pub fn pm_extent(extent_blocks: u64) -> Self {
        DiskGeometry {
            extent_blocks: extent_blocks.max(1),
            ..Self::pm()
        }
    }

    /// A small, fast disk for unit tests: 64 cylinders, 1 ms
    /// revolution.
    pub fn tiny() -> Self {
        DiskGeometry {
            cylinders: 64,
            heads: 2,
            sectors_per_track: 32,
            sector_bytes: 512,
            rotation: SimDuration::from_millis(1),
            seek_settle: SimDuration::from_micros(100),
            seek_per_sqrt_cyl: SimDuration::from_micros(50),
            write_settle: SimDuration::from_micros(200),
            bandwidth: 10.0e6,
            extent_blocks: 4,
        }
    }

    /// Sectors in one cylinder.
    pub fn sectors_per_cylinder(&self) -> u64 {
        self.heads as u64 * self.sectors_per_track as u64
    }

    /// Total addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.cylinders as u64 * self.sectors_per_cylinder()
    }

    /// Cylinder containing `lba` (clamped to the last cylinder).
    pub fn cylinder_of(&self, lba: u64) -> u32 {
        ((lba / self.sectors_per_cylinder()) as u32).min(self.cylinders.saturating_sub(1))
    }

    /// Arm travel time over `|to - from|` cylinders.
    pub fn seek_time(&self, from: u32, to: u32) -> SimDuration {
        let d = from.abs_diff(to);
        if d == 0 {
            return SimDuration::ZERO;
        }
        let sqrt_part = (self.seek_per_sqrt_cyl.as_nanos() as f64 * (d as f64).sqrt()).round();
        self.seek_settle + SimDuration::from_nanos(sqrt_part as u64)
    }

    /// Rotational wait until the first sector of `lba` passes under the
    /// head, for a head that is ready to read at time `at`. The platter
    /// phase is `at mod rotation`; the target sector's angular offset
    /// is its index within the track. Always `< rotation`.
    pub fn rot_wait(&self, at: SimTime, lba: u64) -> SimDuration {
        let rot = self.rotation.as_nanos();
        if rot == 0 {
            return SimDuration::ZERO;
        }
        let sector = lba % self.sectors_per_track as u64;
        let target = sector * rot / self.sectors_per_track as u64;
        let phase = at.as_nanos() % rot;
        SimDuration::from_nanos((target + rot - phase) % rot)
    }

    /// Media transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::transfer(bytes, self.bandwidth)
    }

    /// LBA of block `block` of file `file`, for `block_bytes`-sized
    /// file-system blocks. Blocks are grouped into `extent_blocks`-long
    /// extents laid out contiguously; the extent's placement is a hash
    /// of (file, extent index) over the platter, so different files —
    /// and far-apart regions of one file — scatter, while sequential
    /// blocks stay adjacent.
    pub fn lba_of(&self, file: u32, block: u64, block_bytes: u64) -> u64 {
        let sectors_per_block = (block_bytes / self.sector_bytes as u64).max(1);
        let extent_sectors = self.extent_blocks * sectors_per_block;
        let slots = (self.total_sectors() / extent_sectors).max(1);
        let extent = block / self.extent_blocks;
        let slot = mix64(
            (file as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(extent.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        ) % slots;
        slot * extent_sectors + (block % self.extent_blocks) * sectors_per_block
    }
}

/// SplitMix64 finalizer — scatters extent slots uniformly.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_is_zero_at_distance_zero_and_monotone() {
        let g = DiskGeometry::pm();
        assert_eq!(g.seek_time(100, 100), SimDuration::ZERO);
        let mut prev = SimDuration::ZERO;
        for d in [1u32, 4, 16, 64, 256, 1024, 2047] {
            let s = g.seek_time(0, d);
            assert!(s > prev, "seek not monotone at distance {d}");
            prev = s;
        }
        // Full-stroke seek stays in a realistic envelope (< 20 ms).
        assert!(prev < SimDuration::from_millis(20));
    }

    #[test]
    fn rot_wait_is_bounded_and_phase_aligned() {
        let g = DiskGeometry::pm();
        for t in [0u64, 1, 4_166_500, 8_332_999, 8_333_000, 123_456_789] {
            for lba in [0u64, 17, 127, 12_345] {
                let w = g.rot_wait(SimTime::from_nanos(t), lba);
                assert!(w < g.rotation, "wait {w:?} >= one revolution");
                // After waiting, the platter phase is exactly the
                // target sector's angular offset.
                let rot = g.rotation.as_nanos();
                let sector = lba % g.sectors_per_track as u64;
                let target = sector * rot / g.sectors_per_track as u64;
                assert_eq!((t + w.as_nanos()) % rot, target);
            }
        }
    }

    #[test]
    fn transfer_matches_bandwidth() {
        let g = DiskGeometry::pm();
        // 8 KB at 10 MB/s = 819.2 µs — the Table 1 figure.
        assert_eq!(g.transfer_time(8192).as_nanos(), 819_200);
    }

    #[test]
    fn layout_is_contiguous_within_an_extent_and_scattered_across() {
        let g = DiskGeometry {
            extent_blocks: 64,
            ..DiskGeometry::pm()
        };
        let spb = 8192 / g.sector_bytes as u64;
        // Sequential blocks of one extent are adjacent LBAs.
        for b in 0..g.extent_blocks - 1 {
            assert_eq!(g.lba_of(3, b + 1, 8192), g.lba_of(3, b, 8192) + spb);
        }
        // Different files land in different places (with overwhelming
        // probability for these constants).
        assert_ne!(g.lba_of(1, 0, 8192), g.lba_of(2, 0, 8192));
        // Every LBA stays on the platter.
        for f in 0..50u32 {
            for b in (0..4096u64).step_by(61) {
                assert!(g.lba_of(f, b, 8192) < g.total_sectors());
            }
        }
    }

    #[test]
    fn pm_preset_mean_service_matches_table1() {
        // Uniform random blocks: mean(seek + rot + transfer) must land
        // within 2% of the fixed model's 11.3192 ms read service.
        let g = DiskGeometry::pm();
        let mut z = 0x1234_5678u64;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(z)
        };
        let mut head = 0u32;
        let mut t = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        let n = 20_000u64;
        for _ in 0..n {
            let lba = g.lba_of((next() % 100) as u32, next() % 8192, 8192);
            let cyl = g.cylinder_of(lba);
            let seek = g.seek_time(head, cyl);
            let rot = g.rot_wait(t + seek, lba);
            let svc = seek + rot + g.transfer_time(8192);
            head = cyl;
            // Advance by the service plus an arbitrary think gap so the
            // platter phase decorrelates from the service times.
            t = t + svc + SimDuration::from_nanos(next() % 5_000_000);
            total += svc;
        }
        let mean_ns = total.as_nanos() as f64 / n as f64;
        let target = 11_319_200.0;
        let err = (mean_ns - target).abs() / target;
        // The tight (2%) calibration check runs at the workspace root
        // against the real seed scenarios; this guards the uniform-mix
        // ballpark so preset edits can't silently drift.
        assert!(
            err < 0.05,
            "mean geometry service {:.1} µs is {:.2}% off the fixed model's {:.1} µs",
            mean_ns / 1e3,
            err * 100.0,
            target / 1e3
        );
    }
}
