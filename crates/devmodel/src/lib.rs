//! # devmodel — device models for the simulator
//!
//! The paper (and the seed reproduction) prices every disk operation
//! with one constant: `10.5 ms + size / 10 MB/s` for reads. That makes
//! queueing order and block placement invisible — the very effects the
//! paper's per-file linear limit is designed to exploit across files.
//! This crate turns the cost model into a layer:
//!
//! * [`DiskGeometry`] / [`DiskModel`] — a mechanical disk: cylinders,
//!   a settle-plus-√distance seek curve, rotational position derived
//!   from the deterministic simulation clock, media transfer, and an
//!   extent-based block→LBA layout. The `Fixed` variant reproduces the
//!   seed's constants bit-for-bit, so geometry is strictly opt-in.
//! * [`LinkModel`] — startup + bandwidth network links with optional
//!   per-segment overhead for large messages.
//! * [`Sstf`] / [`Clook`] — seek-aware request schedulers plugging
//!   into [`simkit::Station`], reordering only *within* a priority
//!   class (the demand-before-prefetch rule is structural).
//! * [`FaultedModel`] / [`DispatchFaults`] — a pricing wrapper that
//!   lets a fault source (the `faultkit` crate) add retry surcharge at
//!   dispatch time without touching the mechanical model.
//!
//! The [`DiskModelKind`], [`DiskSched`] and [`NetModelKind`] enums are
//! the `Copy` configuration surface that `lap-core`'s `MachineConfig`
//! embeds and the CLIs parse.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disk;
mod fault;
mod geometry;
mod net;
mod sched;

pub use disk::{DiskModel, DiskModelStats, GeomDisk};
pub use fault::{DispatchFaults, FaultedModel};
pub use geometry::DiskGeometry;
pub use net::LinkModel;
pub use sched::{Clook, Sstf};

use simkit::{FifoSched, Scheduler, SimDuration};

/// Which disk cost model a machine uses.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DiskModelKind {
    /// The paper's fixed per-operation cost (seed behaviour).
    Fixed,
    /// The mechanical model with this geometry.
    Geometry(DiskGeometry),
}

impl DiskModelKind {
    /// True for the fixed (constant-cost) model.
    pub fn is_fixed(&self) -> bool {
        matches!(self, DiskModelKind::Fixed)
    }

    /// Name used in reports and CLI round-trips.
    pub fn name(&self) -> &'static str {
        match self {
            DiskModelKind::Fixed => "fixed",
            DiskModelKind::Geometry(_) => "geom",
        }
    }

    /// Instantiate one disk's model. `read`/`write` are the full fixed
    /// single-block service times and `transfer` the per-block media
    /// transfer (used by the `Fixed` variant to price the extra blocks
    /// of a multi-block job); `block_bytes` is the file-system block
    /// size (used by the layout).
    pub fn build(
        &self,
        read: SimDuration,
        write: SimDuration,
        transfer: SimDuration,
        block_bytes: u64,
    ) -> DiskModel {
        match self {
            DiskModelKind::Fixed => DiskModel::fixed(read, write, transfer),
            DiskModelKind::Geometry(g) => DiskModel::geometry(*g, block_bytes),
        }
    }

    /// Blocks per allocation extent under this model — the unit an
    /// extent-granular prefetcher fetches at once. The fixed model has
    /// no layout, so its extent is one block (extent mode degenerates
    /// to the per-block behaviour there).
    pub fn extent_blocks(&self) -> u64 {
        match self {
            DiskModelKind::Fixed => 1,
            DiskModelKind::Geometry(g) => g.extent_blocks.max(1),
        }
    }
}

/// Which within-class dispatch order the disks use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskSched {
    /// Arrival order (seed behaviour).
    Fifo,
    /// Shortest seek time first.
    Sstf,
    /// Circular LOOK.
    Clook,
}

impl DiskSched {
    /// Name used in reports and CLI round-trips.
    pub fn name(&self) -> &'static str {
        match self {
            DiskSched::Fifo => "fifo",
            DiskSched::Sstf => "sstf",
            DiskSched::Clook => "clook",
        }
    }

    /// Parse a CLI spelling (`fifo`, `sstf`, `clook`/`c-look`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(DiskSched::Fifo),
            "sstf" => Some(DiskSched::Sstf),
            "clook" | "c-look" | "look" => Some(DiskSched::Clook),
            _ => None,
        }
    }

    /// All variants, in ablation order.
    pub const ALL: [DiskSched; 3] = [DiskSched::Fifo, DiskSched::Sstf, DiskSched::Clook];

    /// Instantiate the scheduler for one station.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            DiskSched::Fifo => Box::new(FifoSched),
            DiskSched::Sstf => Box::new(Sstf::new()),
            DiskSched::Clook => Box::new(Clook::new()),
        }
    }
}

/// Which network cost model a machine uses.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum NetModelKind {
    /// Flat `startup + size / bandwidth` (seed behaviour).
    Fixed,
    /// Segmented: large messages pay `per_segment` for every
    /// `segment_bytes` hop beyond the first.
    Segmented {
        /// Segment size in bytes.
        segment_bytes: u64,
        /// Extra cost per segment beyond the first.
        per_segment: SimDuration,
    },
}

impl NetModelKind {
    /// Build the [`LinkModel`] for a link with the given flat
    /// parameters.
    pub fn link(&self, startup: SimDuration, bandwidth: f64) -> LinkModel {
        let mut l = LinkModel::flat(startup, bandwidth);
        if let NetModelKind::Segmented {
            segment_bytes,
            per_segment,
        } = *self
        {
            l.segment_bytes = segment_bytes;
            l.per_segment = per_segment;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_parse_round_trips() {
        for s in DiskSched::ALL {
            assert_eq!(DiskSched::parse(s.name()), Some(s));
        }
        assert_eq!(DiskSched::parse("C-LOOK"), Some(DiskSched::Clook));
        assert_eq!(DiskSched::parse("elevator"), None);
    }

    #[test]
    fn kind_builds_matching_model() {
        let r = SimDuration::from_millis(10);
        let w = SimDuration::from_millis(12);
        let x = SimDuration::from_micros(819);
        assert!(DiskModelKind::Fixed
            .build(r, w, x, 8192)
            .lba_of(0, 0)
            .is_none());
        let g = DiskModelKind::Geometry(DiskGeometry::tiny()).build(r, w, x, 8192);
        assert!(g.lba_of(0, 0).is_some());
        assert_eq!(DiskModelKind::Fixed.extent_blocks(), 1);
        assert_eq!(
            DiskModelKind::Geometry(DiskGeometry::tiny()).extent_blocks(),
            4
        );
    }

    #[test]
    fn net_kind_configures_link() {
        let flat = NetModelKind::Fixed.link(SimDuration::from_micros(15), 200.0e6);
        assert_eq!(flat.segment_bytes, 0);
        let seg = NetModelKind::Segmented {
            segment_bytes: 4096,
            per_segment: SimDuration::from_micros(2),
        }
        .link(SimDuration::from_micros(15), 200.0e6);
        assert!(seg.transfer_time(8192) > flat.transfer_time(8192));
    }
}
