//! The network link model: startup + bandwidth, with optional per-hop
//! message segmentation.
//!
//! The paper's communication model (inherited from DIMEMAS) is
//! `startup + size / bandwidth`. Real interconnects move large
//! messages as fixed-size segments, each paying a small per-segment
//! overhead (DMA setup, switch header). [`LinkModel`] generalizes the
//! flat model: with `per_segment = 0` (or messages no larger than one
//! segment) it is bit-identical to the original formula.

use simkit::{JobSpec, ServiceCost, ServiceModel, SimDuration, SimTime};

/// One link's cost model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkModel {
    /// Fixed cost of any message (software + wire startup).
    pub startup: SimDuration,
    /// Link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Segment size; messages larger than this are cut into
    /// `ceil(bytes / segment_bytes)` hops. `0` disables segmentation.
    pub segment_bytes: u64,
    /// Extra cost per segment beyond the first.
    pub per_segment: SimDuration,
}

impl LinkModel {
    /// A flat (unsegmented) link: `startup + bytes / bandwidth`.
    pub fn flat(startup: SimDuration, bandwidth: f64) -> Self {
        LinkModel {
            startup,
            bandwidth,
            segment_bytes: 0,
            per_segment: SimDuration::ZERO,
        }
    }

    /// Number of segments a `bytes`-long message travels as.
    pub fn segments(&self, bytes: u64) -> u64 {
        if self.segment_bytes == 0 || bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.segment_bytes)
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let base = self.startup + SimDuration::transfer(bytes, self.bandwidth);
        let extra_segments = self.segments(bytes) - 1;
        base + SimDuration::from_nanos(self.per_segment.as_nanos() * extra_segments)
    }
}

impl ServiceModel for LinkModel {
    fn service(&mut self, _now: SimTime, job: &JobSpec) -> ServiceCost {
        ServiceCost::flat(self.transfer_time(job.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_link_matches_the_original_formula() {
        // PM remote transfer: 5 µs copy startup + 10 µs startup,
        // 200 MB/s — 8 KB must cost 15 µs + 40.96 µs.
        let l = LinkModel::flat(SimDuration::from_micros(15), 200.0e6);
        assert_eq!(l.transfer_time(8192).as_nanos(), 15_000 + 40_960);
        assert_eq!(l.segments(8192), 1);
    }

    #[test]
    fn segmentation_adds_per_hop_cost() {
        let mut l = LinkModel::flat(SimDuration::from_micros(15), 200.0e6);
        l.segment_bytes = 4096;
        l.per_segment = SimDuration::from_micros(2);
        assert_eq!(l.segments(8192), 2);
        assert_eq!(l.segments(8193), 3);
        // One extra segment beyond the first → +2 µs.
        assert_eq!(l.transfer_time(8192).as_nanos(), 15_000 + 40_960 + 2_000);
        // Small messages are unaffected.
        assert_eq!(l.transfer_time(1024).as_nanos(), 15_000 + 5_120);
    }

    #[test]
    fn zero_segment_bytes_disables_segmentation() {
        let mut l = LinkModel::flat(SimDuration::from_micros(1), 100.0e6);
        l.per_segment = SimDuration::from_micros(99);
        assert_eq!(l.segments(u64::MAX / 2), 1);
    }
}
