//! Seek-aware request schedulers: SSTF and C-LOOK.
//!
//! Both implement [`simkit::Scheduler`], which only ever reorders jobs
//! *within* one priority class — the station picks the class first, so
//! the paper's demand-before-prefetch rule is structural and cannot be
//! violated by any scheduler. Jobs without a position (`None`) are
//! treated as being at the head (they cost nothing mechanical, so
//! serving them first is free).
//!
//! Each scheduler carries a `reorder` switch. With `reorder = false`
//! the scheduler reports itself as FIFO and the station takes the
//! arrival-order fast path, producing byte-identical results to
//! [`FifoSched`](simkit::FifoSched) — the control arm of the
//! scheduling ablation.

use simkit::Scheduler;

/// Shortest-seek-time-first: serve the waiting job whose position is
/// nearest the current head, breaking ties by arrival order.
#[derive(Clone, Copy, Debug)]
pub struct Sstf {
    /// When false, degrade to FIFO (ablation control).
    pub reorder: bool,
}

impl Sstf {
    /// An active SSTF scheduler.
    pub fn new() -> Self {
        Sstf { reorder: true }
    }
}

impl Default for Sstf {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Sstf {
    fn name(&self) -> &'static str {
        "sstf"
    }

    fn is_fifo(&self) -> bool {
        !self.reorder
    }

    fn pick(&mut self, head: u64, queue: &[Option<u64>]) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.map_or(0, |p| p.abs_diff(head)), *i))
            .map(|(i, _)| i)
            .expect("scheduler invoked on an empty queue")
    }
}

/// Circular LOOK: sweep upward from the head serving the lowest
/// position at or above it; when nothing lies ahead, jump back to the
/// lowest waiting position and sweep again. Unlike SSTF it cannot
/// starve an extreme position under sustained load.
#[derive(Clone, Copy, Debug)]
pub struct Clook {
    /// When false, degrade to FIFO (ablation control).
    pub reorder: bool,
}

impl Clook {
    /// An active C-LOOK scheduler.
    pub fn new() -> Self {
        Clook { reorder: true }
    }
}

impl Default for Clook {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Clook {
    fn name(&self) -> &'static str {
        "clook"
    }

    fn is_fifo(&self) -> bool {
        !self.reorder
    }

    fn pick(&mut self, head: u64, queue: &[Option<u64>]) -> usize {
        // Key: (0, distance-ahead) for jobs at/above the head,
        // (1, absolute position) for the wrapped ones; ties by index.
        queue
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| {
                let pos = p.unwrap_or(head);
                if pos >= head {
                    (0u8, pos - head, *i)
                } else {
                    (1u8, pos, *i)
                }
            })
            .map(|(i, _)| i)
            .expect("scheduler invoked on an empty queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sstf_picks_nearest_with_fifo_ties() {
        let mut s = Sstf::new();
        assert_eq!(s.pick(100, &[Some(300), Some(90), Some(110)]), 1);
        // 90 and 110 are equidistant: the earlier arrival wins.
        assert_eq!(s.pick(100, &[Some(110), Some(90)]), 0);
        // Position-free jobs count as distance zero.
        assert_eq!(s.pick(100, &[Some(101), None]), 1);
    }

    #[test]
    fn clook_sweeps_up_then_wraps_to_lowest() {
        let mut c = Clook::new();
        // Ahead of head 100: 150 and 400 → 150 first.
        assert_eq!(c.pick(100, &[Some(400), Some(150), Some(50)]), 1);
        // Nothing ahead → wrap to the lowest position.
        assert_eq!(c.pick(500, &[Some(400), Some(150), Some(50)]), 2);
        // At the head counts as ahead.
        assert_eq!(c.pick(400, &[Some(400), Some(150), Some(50)]), 0);
    }

    #[test]
    fn frozen_schedulers_report_fifo() {
        assert!(Sstf { reorder: false }.is_fifo());
        assert!(Clook { reorder: false }.is_fifo());
        assert!(!Sstf::new().is_fifo());
        assert!(!Clook::new().is_fifo());
    }
}
