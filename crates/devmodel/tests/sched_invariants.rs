//! Seeded-sweep invariants for the reordering schedulers.
//!
//! Three guarantees the scheduling ablation rests on:
//! 1. SSTF/C-LOOK never serve a prefetch while a demand job waits —
//!    the priority class is chosen before the scheduler runs.
//! 2. Under a bounded arrival stream nothing starves: every submitted
//!    job eventually completes, exactly once.
//! 3. With `reorder = false` both schedulers produce byte-identical
//!    completion sequences to the plain FIFO station.

use devmodel::{Clook, DiskGeometry, DiskModel, Sstf};
use simkit::{
    DeviceOp, EventQueue, FifoSched, JobSpec, Priority, Scheduler, SimTime, Station, StationId,
};

/// SplitMix64 — seeded case generation without external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// One generated arrival: (time offset ns, priority, file, block).
type Arrival = (u64, Priority, u32, u64);

fn gen_arrivals(rng: &mut Rng, n: usize) -> Vec<Arrival> {
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            // Bursty arrivals: often back-to-back, sometimes a lull.
            t += if rng.below(0, 4) == 0 {
                rng.below(0, 30_000_000)
            } else {
                rng.below(0, 2_000_000)
            };
            let prio = if rng.below(0, 3) == 0 {
                Priority::PREFETCH
            } else {
                Priority::DEMAND
            };
            (t, prio, rng.below(0, 20) as u32, rng.below(0, 2048))
        })
        .collect()
}

/// Drive one station with `sched` over `arrivals`; returns the
/// completion sequence as (tag, completion time) and asserts the
/// demand-before-prefetch invariant at every dispatch.
fn drive(sched: Box<dyn Scheduler>, arrivals: &[Arrival], seed: u64) -> Vec<(usize, u64)> {
    let mut disk = DiskModel::geometry(DiskGeometry::tiny(), 8192);
    let mut station: Station<usize> = Station::with_scheduler(StationId::disk(0), sched);
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut rec = lapobs::NoopRecorder;
    // Mirror of waiting jobs: tag → priority.
    let mut waiting: std::collections::HashMap<usize, Priority> = std::collections::HashMap::new();
    let mut done: Vec<(usize, u64)> = Vec::new();

    let dispatch = |started: Option<simkit::StartedJob<usize>>,
                    waiting: &mut std::collections::HashMap<usize, Priority>,
                    queue: &mut EventQueue<usize>| {
        if let Some(j) = started {
            let prio = waiting.remove(&j.tag);
            if let Some(prio) = prio {
                // The demand-before-prefetch rule: a prefetch may start
                // only when no demand job is waiting.
                if prio == Priority::PREFETCH {
                    assert!(
                        !waiting.values().any(|&p| p == Priority::DEMAND),
                        "seed {seed}: prefetch {} served while a demand job waited",
                        j.tag
                    );
                }
            }
            queue.schedule(j.completes_at, j.tag);
        }
    };

    for (id, &(at, prio, file, block)) in arrivals.iter().enumerate() {
        let t = SimTime::from_nanos(at);
        // Drain completions that precede this arrival.
        while queue.peek_time().is_some_and(|ct| ct <= t) {
            let (ct, tag) = queue.pop().unwrap();
            done.push((tag, ct.as_nanos()));
            let next = station.complete_job(ct, &mut disk, &mut rec);
            dispatch(next, &mut waiting, &mut queue);
        }
        let spec = JobSpec {
            op: DeviceOp::Read,
            pos: disk.lba_of(file, block),
            bytes: 8192,
            blocks: 1,
            rid: id as u32,
        };
        waiting.insert(id, prio);
        let started = station.arrive_job(t, prio, spec, id, &mut disk, &mut rec);
        if started.is_some() {
            // Started immediately: it was never "waiting" for the
            // invariant's purposes.
            waiting.remove(&id);
        }
        dispatch(started, &mut waiting, &mut queue);
    }
    // Bounded stream over — everything must drain (no starvation).
    while let Some((ct, tag)) = queue.pop() {
        done.push((tag, ct.as_nanos()));
        let next = station.complete_job(ct, &mut disk, &mut rec);
        dispatch(next, &mut waiting, &mut queue);
    }
    assert!(!station.is_busy(), "seed {seed}: station left busy");
    assert_eq!(station.queue_len(), 0, "seed {seed}: jobs left queued");
    done
}

#[test]
fn reordering_never_serves_prefetch_over_waiting_demand() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed ^ 0xD15C);
        let arrivals = gen_arrivals(&mut rng, 150);
        drive(Box::new(Sstf::new()), &arrivals, seed);
        drive(Box::new(Clook::new()), &arrivals, seed);
    }
}

#[test]
fn no_job_starves_under_bounded_arrivals() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed ^ 0x57A4);
        let n = rng.below(20, 250) as usize;
        let arrivals = gen_arrivals(&mut rng, n);
        for sched in [
            Box::new(Sstf::new()) as Box<dyn Scheduler>,
            Box::new(Clook::new()),
        ] {
            let done = drive(sched, &arrivals, seed);
            assert_eq!(done.len(), n, "seed {seed}: jobs lost");
            let mut tags: Vec<usize> = done.iter().map(|&(t, _)| t).collect();
            tags.sort_unstable();
            tags.dedup();
            assert_eq!(tags.len(), n, "seed {seed}: a job completed twice");
        }
    }
}

#[test]
fn frozen_schedulers_are_byte_identical_to_fifo() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed ^ 0xF1F0);
        let arrivals = gen_arrivals(&mut rng, 120);
        let fifo = drive(Box::new(FifoSched), &arrivals, seed);
        let sstf_frozen = drive(Box::new(Sstf { reorder: false }), &arrivals, seed);
        let clook_frozen = drive(Box::new(Clook { reorder: false }), &arrivals, seed);
        assert_eq!(fifo, sstf_frozen, "seed {seed}: frozen SSTF diverged");
        assert_eq!(fifo, clook_frozen, "seed {seed}: frozen C-LOOK diverged");
        // And the live schedulers genuinely reorder on at least some
        // seeds — checked in aggregate below by comparing sequences.
        let sstf = drive(Box::new(Sstf::new()), &arrivals, seed);
        assert_eq!(sstf.len(), fifo.len(), "seed {seed}");
    }
}

/// Across the sweep, live SSTF must actually change the completion
/// order on a healthy fraction of seeds — otherwise the ablation arm
/// is wired to a no-op.
#[test]
fn live_schedulers_reorder_somewhere() {
    let mut changed = 0;
    for seed in 0..40u64 {
        let mut rng = Rng(seed ^ 0x0BEE);
        let arrivals = gen_arrivals(&mut rng, 200);
        let fifo = drive(Box::new(FifoSched), &arrivals, seed);
        let sstf = drive(Box::new(Sstf::new()), &arrivals, seed);
        if fifo != sstf {
            changed += 1;
        }
    }
    assert!(
        changed >= 10,
        "SSTF only diverged from FIFO on {changed}/40 seeds"
    );
}
