//! Scheduler-starvation stress: sustained, spatially *skewed* arrivals
//! against SSTF.
//!
//! SSTF's known failure mode is starving edge cylinders: while a hot
//! band keeps refilling the queue next to the arm, a request parked at
//! the far edge of the platter loses every shortest-seek comparison.
//! The bounded-arrival invariant tests can't see this — any finite
//! stream drains eventually. This stress drives a near-saturation
//! stream (queue almost never empty) where 9 in 10 requests land in a
//! narrow hot band and 1 in 10 at the far edge, and asserts the *max*
//! queue wait of every job stays within a fixed multiple of the whole
//! stream's span — the documented starvation ceiling for this
//! implementation (demand-priority classes and the stream's lulls are
//! what keep it finite). If a future scheduler change makes an edge
//! job wait past this bound, that is real starvation, not noise: the
//! stream is seeded and deterministic.

use devmodel::{DiskGeometry, DiskModel, Sstf};
use simkit::{
    DeviceOp, EventQueue, FifoSched, JobSpec, Priority, Scheduler, SimDuration, SimTime, Station,
    StationId,
};

/// SplitMix64 — seeded case generation without external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// One arrival: (time ns, file, block). All demand priority — the
/// starvation question is *within* a class; across classes the
/// priority queue already decides.
type Arrival = (u64, u32, u64);

/// A sustained skewed stream: inter-arrival times hover around the
/// mean service time (the queue stays busy but does drain), 90% of
/// positions sit in a narrow hot band at the low end of the platter,
/// 10% at the far edge — the victims SSTF would like to postpone.
fn skewed_stream(rng: &mut Rng, n: usize) -> Vec<Arrival> {
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            // Near the mean service time, so the queue keeps a
            // healthy standing population without growing unboundedly.
            t += rng.below(800_000, 2_600_000);
            let (file, block) = if rng.below(0, 10) < 9 {
                (0, rng.below(0, 48))
            } else {
                (0, rng.below(1984, 2048))
            };
            (t, file, block)
        })
        .collect()
}

/// Drive `sched` over the stream and return (max wait, jobs done).
fn max_wait(sched: Box<dyn Scheduler>, arrivals: &[Arrival]) -> (SimDuration, usize) {
    let mut disk = DiskModel::geometry(DiskGeometry::tiny(), 8192);
    let mut station: Station<usize> = Station::with_scheduler(StationId::disk(0), sched);
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut rec = lapobs::NoopRecorder;
    let mut worst = SimDuration::ZERO;
    let mut done = 0usize;

    for (id, &(at, file, block)) in arrivals.iter().enumerate() {
        let t = SimTime::from_nanos(at);
        while queue.peek_time().is_some_and(|ct| ct <= t) {
            let (ct, _) = queue.pop().unwrap();
            done += 1;
            if let Some(j) = station.complete_job(ct, &mut disk, &mut rec) {
                worst = worst.max(j.wait);
                queue.schedule(j.completes_at, j.tag);
            }
        }
        let spec = JobSpec {
            op: DeviceOp::Read,
            pos: disk.lba_of(file, block),
            bytes: 8192,
            blocks: 1,
            rid: id as u32,
        };
        if let Some(j) = station.arrive_job(t, Priority::DEMAND, spec, id, &mut disk, &mut rec) {
            worst = worst.max(j.wait);
            queue.schedule(j.completes_at, j.tag);
        }
    }
    while let Some((ct, _)) = queue.pop() {
        done += 1;
        if let Some(j) = station.complete_job(ct, &mut disk, &mut rec) {
            worst = worst.max(j.wait);
            queue.schedule(j.completes_at, j.tag);
        }
    }
    assert_eq!(station.queue_len(), 0, "jobs left queued");
    (worst, done)
}

#[test]
fn sstf_max_wait_stays_bounded_under_sustained_skew() {
    for seed in 0..8u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        let n = 1500;
        let arrivals = skewed_stream(&mut rng, n);
        let span = SimDuration::from_nanos(arrivals.last().unwrap().0);

        let (fifo_worst, fifo_done) = max_wait(Box::new(FifoSched), &arrivals);
        let (sstf_worst, sstf_done) = max_wait(Box::new(Sstf::new()), &arrivals);
        assert_eq!(fifo_done, n, "seed {seed}: FIFO lost jobs");
        assert_eq!(sstf_done, n, "seed {seed}: SSTF lost jobs");

        // The starvation ceiling: no job — hot or edge — may wait more
        // than a quarter of the whole stream's span. A scheduler that
        // truly starves the edge band parks those jobs until the
        // arrivals stop, which blows well past this.
        let bound = span / 4;
        eprintln!(
            "seed {seed}: sstf max wait {:.2} ms, fifo {:.2} ms, bound {:.1} ms",
            sstf_worst.as_millis_f64(),
            fifo_worst.as_millis_f64(),
            bound.as_millis_f64()
        );
        assert!(
            sstf_worst < bound,
            "seed {seed}: SSTF max wait {:.1} ms exceeds starvation bound {:.1} ms",
            sstf_worst.as_millis_f64(),
            bound.as_millis_f64()
        );
        // And the stress is a real one: the skew must actually bite —
        // SSTF postponing the edge band shows up as a strictly worse
        // max wait than FIFO's (2–7× at this load). If this ever
        // fails, the stream stopped saturating the arm and the bound
        // above is vacuous.
        assert!(
            sstf_worst > fifo_worst,
            "seed {seed}: stress degenerate (sstf {:.2} ms, fifo {:.2} ms)",
            sstf_worst.as_millis_f64(),
            fifo_worst.as_millis_f64()
        );
    }
}
