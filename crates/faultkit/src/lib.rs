//! # faultkit — deterministic, seeded fault injection
//!
//! The paper (and the reproduction so far) only ever simulates the
//! sunny day. This crate adds the failure axis as a *plan*: a small
//! `Copy`-able description of fault sources, all derived from one seed
//! that is independent of the workload stream, so
//!
//! * the same plan + the same workload replays bit-identically, and
//! * an **empty plan consumes no randomness and changes nothing** —
//!   zero-fault runs stay bit-identical to builds without faultkit.
//!
//! Three fault sources:
//!
//! * **Transient disk errors** — at dispatch time each disk operation
//!   draws up to `disk_retries` failed attempts (probability
//!   `disk_error` per attempt, `burst_error` inside phased per-disk
//!   *error-burst windows*); every failed attempt re-pays the attempt
//!   cost plus exponential backoff. The surcharge flows through
//!   [`devmodel::FaultedModel`] into [`simkit::ServiceCost::retry`] so
//!   the span model can attribute it exactly.
//! * **Disk / node outage windows** — phased periodic windows during
//!   which a disk stops dispatching (the event loop aborts the
//!   in-service job and re-queues it: timeout-and-failover) or a cache
//!   node drops out of the cooperative cache (degraded mode).
//! * **Network loss / delay** — remote deliveries draw lost attempts
//!   (re-paying the transfer, bounded by a per-class retry budget) and
//!   an optional fixed extra delay.
//!
//! Windows are *closed-form*: each disk/node gets a deterministic
//! phase in `[0, period)` drawn from its own single-purpose
//! [`Rng64`] stream, so window membership is a pure function of
//! `(plan, entity, time)` and never perturbs the shared draw stream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use devmodel::DispatchFaults;
use ioworkload::util::Rng64;
use lapobs::Registry;
use simkit::{JobSpec, ServiceCost, SimDuration, SimTime};

/// A periodic fault window: every `period`, the affected entity is
/// faulted for the first `len` of it (per-entity phase staggers the
/// start).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Window {
    /// Distance between consecutive window starts.
    pub period: SimDuration,
    /// Length of each window (strictly less than `period`).
    pub len: SimDuration,
}

/// Message class for network fault budgets: small coordination
/// messages vs. block payload transfers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetClass {
    /// Cache-coordination / lookup messages.
    Control,
    /// Block data transfers.
    Data,
}

/// The deterministic fault plan. `FaultPlan::none()` (the default) has
/// every source disabled and is guaranteed to inject nothing and draw
/// nothing.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed of the fault draw stream (independent of the workload
    /// seed).
    pub seed: u64,
    /// Per-attempt transient disk error probability outside bursts.
    pub disk_error: f64,
    /// Per-attempt error probability inside a burst window.
    pub burst_error: f64,
    /// Maximum failed attempts per dispatch; the attempt after the
    /// last retry always succeeds, so no operation is ever lost.
    pub disk_retries: u32,
    /// Base backoff after the first failed attempt; attempt `i` backs
    /// off `backoff · 2^i`.
    pub backoff: SimDuration,
    /// Per-disk error-burst windows (raise the error rate to
    /// `burst_error` while inside).
    pub burst: Option<Window>,
    /// Per-disk outage windows (dispatch suspended, in-service job
    /// aborted and re-queued).
    pub outage: Option<Window>,
    /// Per-node cache outage windows (degraded cooperative caching).
    pub node_outage: Option<Window>,
    /// Node outages are *crashes*: a rejoining node comes back with an
    /// empty cache (its buffers were wiped, dirty copies lost) instead
    /// of reconnecting with its content intact.
    pub node_outage_wipe: bool,
    /// Per-attempt network message loss probability.
    pub net_loss: f64,
    /// Probability a remote delivery is delayed by `net_delay`.
    pub net_delay_p: f64,
    /// Extra delay added to a delayed delivery.
    pub net_delay: SimDuration,
    /// Lost-attempt retry budget for [`NetClass::Data`] messages.
    pub net_retries: u32,
    /// Lost-attempt retry budget for [`NetClass::Control`] messages.
    pub net_ctrl_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            disk_error: 0.0,
            burst_error: 0.0,
            disk_retries: 3,
            backoff: SimDuration::from_millis(1),
            burst: None,
            outage: None,
            node_outage: None,
            node_outage_wipe: false,
            net_loss: 0.0,
            net_delay_p: 0.0,
            net_delay: SimDuration::ZERO,
            net_retries: 3,
            net_ctrl_retries: 1,
        }
    }
}

/// Distinct salts so each window family gets its own phase stream.
const SALT_BURST: u64 = 0xB0B5_7001;
const SALT_OUTAGE: u64 = 0x0007_A6E2;
const SALT_NODE: u64 = 0x40DE_0003;

fn parse_window(v: &str) -> Result<Window, String> {
    let (p, l) = v
        .split_once(':')
        .ok_or_else(|| format!("window '{v}' must be PERIOD_S:LEN_S"))?;
    let period: f64 = p.parse().map_err(|_| format!("bad window period '{p}'"))?;
    let len: f64 = l.parse().map_err(|_| format!("bad window length '{l}'"))?;
    if !(period > 0.0 && len > 0.0 && len < period) {
        return Err(format!("window '{v}' needs 0 < LEN < PERIOD"));
    }
    Ok(Window {
        period: SimDuration::from_secs_f64(period),
        len: SimDuration::from_secs_f64(len),
    })
}

impl FaultPlan {
    /// The empty plan: every fault source disabled.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parse a comma-separated `key=value` plan spec, e.g.
    ///
    /// ```text
    /// seed=7,disk-error=0.02,disk-retries=4,backoff-ms=5,burst=60:5,
    /// burst-error=0.5,outage=120:10,node-outage=300:20,net-loss=0.01,
    /// net-delay=0.05:2,net-retries=3,net-ctrl-retries=1
    /// ```
    ///
    /// Windows are `PERIOD_S:LEN_S` (seconds); `net-delay` is
    /// `PROB:MILLIS`. `node-outage-wipe` takes the same window as
    /// `node-outage` but makes the outages *crashes*: the node rejoins
    /// with an empty cache. Omitted keys keep their defaults; if
    /// `burst` is given without `burst-error`, the in-burst rate
    /// defaults to `max(10 · disk-error, 0.25)` capped at 0.9.
    ///
    /// Errors carry the full key menu, so a malformed spec on a CLI
    /// prints what *would* have parsed.
    pub fn parse(spec: &str) -> Result<Self, String> {
        Self::parse_inner(spec).map_err(|e| format!("{e}\n  fault-plan keys: {}", Self::KEY_MENU))
    }

    /// Every key [`parse`](Self::parse) accepts, with value shapes —
    /// appended to parse errors, menu-style.
    pub const KEY_MENU: &'static str = "seed=N, disk-error=P, burst-error=P, disk-retries=N, \
         backoff-ms=MS, burst=PERIOD_S:LEN_S, outage=PERIOD_S:LEN_S, \
         node-outage=PERIOD_S:LEN_S, node-outage-wipe=PERIOD_S:LEN_S, net-loss=P, \
         net-delay=PROB:MS, net-retries=N, net-ctrl-retries=N";

    fn parse_inner(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        let mut burst_error_set = false;
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("'{part}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let num = |what: &str| -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("bad {what} '{value}'"))
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
                }
                "disk-error" => plan.disk_error = num("probability")?.clamp(0.0, 1.0),
                "burst-error" => {
                    plan.burst_error = num("probability")?.clamp(0.0, 1.0);
                    burst_error_set = true;
                }
                "disk-retries" => {
                    plan.disk_retries = value
                        .parse()
                        .map_err(|_| format!("bad retry count '{value}'"))?;
                }
                "backoff-ms" => plan.backoff = SimDuration::from_millis_f64(num("backoff")?),
                "burst" => plan.burst = Some(parse_window(value)?),
                "outage" => plan.outage = Some(parse_window(value)?),
                "node-outage" => plan.node_outage = Some(parse_window(value)?),
                "node-outage-wipe" => {
                    plan.node_outage = Some(parse_window(value)?);
                    plan.node_outage_wipe = true;
                }
                "net-loss" => plan.net_loss = num("probability")?.clamp(0.0, 1.0),
                "net-delay" => {
                    let (p, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("net-delay '{value}' must be PROB:MILLIS"))?;
                    plan.net_delay_p = p
                        .parse::<f64>()
                        .map_err(|_| format!("bad probability '{p}'"))?
                        .clamp(0.0, 1.0);
                    plan.net_delay = SimDuration::from_millis_f64(
                        ms.parse().map_err(|_| format!("bad delay '{ms}'"))?,
                    );
                }
                "net-retries" => {
                    plan.net_retries = value
                        .parse()
                        .map_err(|_| format!("bad retry count '{value}'"))?;
                }
                "net-ctrl-retries" => {
                    plan.net_ctrl_retries = value
                        .parse()
                        .map_err(|_| format!("bad retry count '{value}'"))?;
                }
                other => return Err(format!("unknown fault-plan key '{other}'")),
            }
        }
        if plan.burst.is_some() && !burst_error_set {
            plan.burst_error = (plan.disk_error * 10.0).clamp(0.25, 0.9);
        }
        Ok(plan)
    }

    /// True when transient disk errors can fire.
    pub fn disk_errors_active(&self) -> bool {
        self.disk_error > 0.0 || (self.burst.is_some() && self.burst_error > 0.0)
    }

    /// True when network loss or delay can fire.
    pub fn net_active(&self) -> bool {
        self.net_loss > 0.0 || (self.net_delay_p > 0.0 && self.net_delay > SimDuration::ZERO)
    }

    /// True when *no* source is enabled — the plan is equivalent to
    /// not having a fault layer at all.
    pub fn is_empty(&self) -> bool {
        !self.disk_errors_active()
            && !self.net_active()
            && self.outage.is_none()
            && self.node_outage.is_none()
            && self.burst.is_none()
    }

    /// Deterministic per-entity window phase in `[0, period)`, from a
    /// single-purpose stream keyed by `(seed, salt, idx)`.
    fn phase(&self, salt: u64, idx: u64, period: SimDuration) -> SimDuration {
        let mut rng = Rng64::new(
            self.seed
                ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ idx.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        SimDuration::from_nanos(rng.range_u64(0, period.as_nanos().saturating_sub(1)))
    }

    /// True while disk `disk` is inside an error-burst window at `t`.
    pub fn in_burst(&self, disk: usize, t: SimTime) -> bool {
        let Some(w) = self.burst else { return false };
        let phase = self.phase(SALT_BURST, disk as u64, w.period);
        let t = t.as_nanos();
        let phase = phase.as_nanos();
        t >= phase && (t - phase) % w.period.as_nanos() < w.len.as_nanos()
    }

    /// When disk `disk` first goes down, if outages are planned.
    pub fn first_disk_down(&self, disk: usize) -> Option<SimTime> {
        let w = self.outage?;
        Some(SimTime::ZERO + self.phase(SALT_OUTAGE, disk as u64, w.period))
    }

    /// When node `node` first drops out, if node outages are planned.
    pub fn first_node_down(&self, node: usize) -> Option<SimTime> {
        let w = self.node_outage?;
        Some(SimTime::ZERO + self.phase(SALT_NODE, node as u64, w.period))
    }

    /// The canonical spec string: parsing it back yields exactly this
    /// plan (`parse(canonical(p)) == p`), and it is a fixed point
    /// (`canonical(parse(canonical(p))) == canonical(p)`). Only
    /// non-default keys are emitted; `burst-error` is always written
    /// out when relevant so the parse-time defaulting rule cannot
    /// change the round-tripped value.
    pub fn canonical(&self) -> String {
        let d = FaultPlan::none();
        let mut parts: Vec<String> = Vec::new();
        if self.seed != d.seed {
            parts.push(format!("seed={}", self.seed));
        }
        if self.disk_error != d.disk_error {
            parts.push(format!("disk-error={}", self.disk_error));
        }
        if let Some(w) = self.burst {
            parts.push(format!(
                "burst={}:{}",
                w.period.as_secs_f64(),
                w.len.as_secs_f64()
            ));
        }
        if self.burst.is_some() || self.burst_error != d.burst_error {
            parts.push(format!("burst-error={}", self.burst_error));
        }
        if self.disk_retries != d.disk_retries {
            parts.push(format!("disk-retries={}", self.disk_retries));
        }
        if self.backoff != d.backoff {
            parts.push(format!("backoff-ms={}", self.backoff.as_millis_f64()));
        }
        if let Some(w) = self.outage {
            parts.push(format!(
                "outage={}:{}",
                w.period.as_secs_f64(),
                w.len.as_secs_f64()
            ));
        }
        if let Some(w) = self.node_outage {
            let key = if self.node_outage_wipe {
                "node-outage-wipe"
            } else {
                "node-outage"
            };
            parts.push(format!(
                "{key}={}:{}",
                w.period.as_secs_f64(),
                w.len.as_secs_f64()
            ));
        }
        if self.net_loss != d.net_loss {
            parts.push(format!("net-loss={}", self.net_loss));
        }
        if self.net_delay_p != d.net_delay_p || self.net_delay != d.net_delay {
            parts.push(format!(
                "net-delay={}:{}",
                self.net_delay_p,
                self.net_delay.as_millis_f64()
            ));
        }
        if self.net_retries != d.net_retries {
            parts.push(format!("net-retries={}", self.net_retries));
        }
        if self.net_ctrl_retries != d.net_ctrl_retries {
            parts.push(format!("net-ctrl-retries={}", self.net_ctrl_retries));
        }
        parts.join(",")
    }

    /// A seeded random *valid* plan spec, drawing every value from
    /// small discrete menus (integral seconds / milliseconds, short
    /// decimal probabilities) so that spec → plan → canonical → plan
    /// is exact. Fuel for the grammar round-trip fuzz and the chaos
    /// sweep; same seed, same spec.
    pub fn random_spec(seed: u64) -> String {
        let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA17_57EC);
        const PROBS: [&str; 6] = ["0.001", "0.005", "0.01", "0.02", "0.05", "0.1"];
        const PERIODS: [u64; 4] = [30, 60, 120, 300];
        let mut parts: Vec<String> = vec![format!("seed={}", rng.range_u64(1, 1 << 20))];
        let pick = |rng: &mut Rng64, xs: &[&str]| {
            xs[rng.range_u64(0, xs.len() as u64 - 1) as usize].to_string()
        };
        let window = |rng: &mut Rng64| {
            let period = PERIODS[rng.range_u64(0, PERIODS.len() as u64 - 1) as usize];
            let len = (period / rng.range_u64(4, 12)).max(1);
            format!("{period}:{len}")
        };
        if rng.chance(0.7) {
            parts.push(format!("disk-error={}", pick(&mut rng, &PROBS)));
            if rng.chance(0.5) {
                parts.push(format!("disk-retries={}", rng.range_u64(1, 5)));
            }
            if rng.chance(0.4) {
                parts.push(format!("backoff-ms={}", rng.range_u64(0, 10)));
            }
        }
        if rng.chance(0.4) {
            parts.push(format!("burst={}", window(&mut rng)));
            if rng.chance(0.5) {
                parts.push(format!("burst-error=0.{}", rng.range_u64(2, 9)));
            }
        }
        if rng.chance(0.5) {
            parts.push(format!("outage={}", window(&mut rng)));
        }
        if rng.chance(0.5) {
            let key = if rng.chance(0.5) {
                "node-outage-wipe"
            } else {
                "node-outage"
            };
            parts.push(format!("{key}={}", window(&mut rng)));
        }
        if rng.chance(0.4) {
            parts.push(format!("net-loss={}", pick(&mut rng, &PROBS)));
            if rng.chance(0.5) {
                parts.push(format!("net-retries={}", rng.range_u64(1, 4)));
            }
            if rng.chance(0.3) {
                parts.push(format!("net-ctrl-retries={}", rng.range_u64(0, 2)));
            }
        }
        if rng.chance(0.4) {
            parts.push(format!(
                "net-delay={}:{}",
                pick(&mut rng, &PROBS),
                rng.range_u64(1, 5)
            ));
        }
        parts.join(",")
    }
}

/// Aggregate fault-injection counters, registered under `fault.*`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultStats {
    /// Dispatches that drew at least one failed attempt.
    pub injected: u64,
    /// Total failed disk attempts (each re-paid the attempt + backoff).
    pub retries: u64,
    /// Jobs aborted mid-service by an outage and re-queued.
    pub failovers: u64,
    /// Disk outage windows entered.
    pub disk_outages: u64,
    /// Node outage windows entered.
    pub node_outages: u64,
    /// Lost network message attempts (each re-paid the transfer).
    pub net_lost: u64,
    /// Remote deliveries that drew the extra delay.
    pub net_delayed: u64,
    /// Prefetch pumps suppressed because the target disk was in an
    /// error burst.
    pub prefetch_suppressed: u64,
}

impl FaultStats {
    /// Register every counter under `fault.*`. Called with
    /// `FaultStats::default()` when no plan is active, so the metrics
    /// schema is identical for fault-free runs.
    pub fn register_into(&self, reg: &mut Registry) {
        reg.counter("fault.injected", self.injected);
        reg.counter("fault.retries", self.retries);
        reg.counter("fault.failovers", self.failovers);
        reg.counter("fault.disk_outages", self.disk_outages);
        reg.counter("fault.node_outages", self.node_outages);
        reg.counter("fault.net_lost", self.net_lost);
        reg.counter("fault.net_delayed", self.net_delayed);
        reg.counter("fault.prefetch_suppressed", self.prefetch_suppressed);
    }
}

/// Extra time a remote delivery pays for network faults.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct NetExtra {
    /// Re-paid transfers for lost attempts (span component: retry).
    pub retry: SimDuration,
    /// Added propagation delay (span component: network).
    pub delay: SimDuration,
    /// Lost attempts drawn (bounded by the class budget).
    pub lost: u32,
}

impl NetExtra {
    /// Total extra latency.
    pub fn total(&self) -> SimDuration {
        self.retry + self.delay
    }
}

/// Runtime fault state: the plan, its private draw stream, counters,
/// and per-node degraded-mode residency tracking.
#[derive(Clone, Debug)]
pub struct FaultState {
    /// The immutable plan this state executes.
    pub plan: FaultPlan,
    /// Counters (incremented here and by the driving event loop).
    pub stats: FaultStats,
    rng: Rng64,
    degraded_since: Vec<Option<SimTime>>,
    degraded_total: Vec<SimDuration>,
}

impl FaultState {
    /// Build the runtime state for a machine with `nodes` cache nodes.
    pub fn new(plan: FaultPlan, nodes: usize) -> Self {
        FaultState {
            rng: Rng64::new(plan.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xFA17),
            plan,
            stats: FaultStats::default(),
            degraded_since: vec![None; nodes],
            degraded_total: vec![SimDuration::ZERO; nodes],
        }
    }

    /// Transient-error surcharge for one dispatch on `disk` whose
    /// successful attempt costs `attempt`. Draws nothing when the
    /// effective error rate is zero.
    pub fn disk_surcharge(
        &mut self,
        disk: usize,
        now: SimTime,
        attempt: SimDuration,
    ) -> SimDuration {
        let p = if self.plan.in_burst(disk, now) {
            self.plan.burst_error.max(self.plan.disk_error)
        } else {
            self.plan.disk_error
        };
        if p <= 0.0 {
            return SimDuration::ZERO;
        }
        let mut extra = SimDuration::ZERO;
        let mut failed = 0u32;
        while failed < self.plan.disk_retries && self.rng.chance(p) {
            extra += attempt + self.plan.backoff * (1u64 << failed.min(16));
            failed += 1;
        }
        if failed > 0 {
            self.stats.injected += 1;
            self.stats.retries += u64::from(failed);
        }
        extra
    }

    /// Network fault draw for one remote delivery whose single attempt
    /// costs `attempt`. Lost attempts re-pay the transfer (bounded by
    /// the class retry budget); the final attempt always succeeds.
    pub fn net_extra(&mut self, class: NetClass, attempt: SimDuration) -> NetExtra {
        let mut out = NetExtra::default();
        let budget = match class {
            NetClass::Control => self.plan.net_ctrl_retries,
            NetClass::Data => self.plan.net_retries,
        };
        if self.plan.net_loss > 0.0 {
            while out.lost < budget && self.rng.chance(self.plan.net_loss) {
                out.retry += attempt;
                out.lost += 1;
            }
            self.stats.net_lost += u64::from(out.lost);
        }
        if self.plan.net_delay_p > 0.0
            && self.plan.net_delay > SimDuration::ZERO
            && self.rng.chance(self.plan.net_delay_p)
        {
            out.delay = self.plan.net_delay;
            self.stats.net_delayed += 1;
        }
        out
    }

    /// Mark node `node` degraded from `now` (idempotent).
    pub fn degraded_enter(&mut self, node: usize, now: SimTime) {
        if self.degraded_since[node].is_none() {
            self.degraded_since[node] = Some(now);
            self.stats.node_outages += 1;
        }
    }

    /// Mark node `node` healthy again at `now`.
    pub fn degraded_exit(&mut self, node: usize, now: SimTime) {
        if let Some(since) = self.degraded_since[node].take() {
            self.degraded_total[node] += now.saturating_since(since);
        }
    }

    /// Close any open degraded intervals at end of run.
    pub fn degraded_finalize(&mut self, now: SimTime) {
        for node in 0..self.degraded_since.len() {
            self.degraded_exit(node, now);
        }
    }

    /// Per-node degraded residency so far (seconds), for nodes with a
    /// nonzero total, in node order.
    pub fn degraded_residency(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.degraded_total
            .iter()
            .enumerate()
            .filter(|(_, d)| **d > SimDuration::ZERO)
            .map(|(n, d)| (n, d.as_secs_f64()))
    }

    /// Total degraded residency summed over nodes (seconds).
    pub fn degraded_total_s(&self) -> f64 {
        self.degraded_total.iter().map(|d| d.as_secs_f64()).sum()
    }
}

/// [`DispatchFaults`] adapter binding a [`FaultState`] to one disk, so
/// a [`devmodel::FaultedModel`] can price that disk's dispatches.
pub struct DiskFaultCtx<'a> {
    /// The shared fault state.
    pub state: &'a mut FaultState,
    /// Which disk is dispatching.
    pub disk: usize,
}

impl DispatchFaults for DiskFaultCtx<'_> {
    fn dispatch_surcharge(
        &mut self,
        now: SimTime,
        _job: &JobSpec,
        base: &ServiceCost,
    ) -> SimDuration {
        self.state.disk_surcharge(self.disk, now, base.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs_f64(s as f64)
    }

    #[test]
    fn parse_round_trips_every_key() {
        let p = FaultPlan::parse(
            "seed=7,disk-error=0.02,disk-retries=4,backoff-ms=5,burst=60:5,burst-error=0.5,\
             outage=120:10,node-outage=300:20,net-loss=0.01,net-delay=0.05:2,net-retries=3,\
             net-ctrl-retries=2",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.disk_error, 0.02);
        assert_eq!(p.disk_retries, 4);
        assert_eq!(p.backoff, SimDuration::from_millis(5));
        assert_eq!(
            p.burst,
            Some(Window {
                period: secs(60),
                len: secs(5)
            })
        );
        assert_eq!(p.burst_error, 0.5);
        assert_eq!(
            p.outage,
            Some(Window {
                period: secs(120),
                len: secs(10)
            })
        );
        assert_eq!(
            p.node_outage,
            Some(Window {
                period: secs(300),
                len: secs(20)
            })
        );
        assert_eq!(p.net_loss, 0.01);
        assert_eq!(p.net_delay_p, 0.05);
        assert_eq!(p.net_delay, SimDuration::from_millis(2));
        assert_eq!((p.net_retries, p.net_ctrl_retries), (3, 2));
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("disk-error").is_err());
        assert!(FaultPlan::parse("frob=1").is_err());
        assert!(FaultPlan::parse("burst=5").is_err());
        assert!(FaultPlan::parse("burst=5:10").is_err(), "len >= period");
        assert!(FaultPlan::parse("net-delay=0.1").is_err());
    }

    #[test]
    fn wipe_key_sets_window_and_flag() {
        let p = FaultPlan::parse("node-outage-wipe=300:20").unwrap();
        assert!(p.node_outage_wipe);
        assert_eq!(
            p.node_outage,
            Some(Window {
                period: secs(300),
                len: secs(20)
            })
        );
        assert!(!p.is_empty());
        let plain = FaultPlan::parse("node-outage=300:20").unwrap();
        assert!(!plain.node_outage_wipe, "plain outages keep content");
    }

    #[test]
    fn parse_errors_carry_key_menu() {
        let e = FaultPlan::parse("frob=1").unwrap_err();
        assert!(e.contains("unknown fault-plan key 'frob'"), "{e}");
        assert!(e.contains("node-outage-wipe"), "menu lists every key: {e}");
        let e = FaultPlan::parse("burst=5").unwrap_err();
        assert!(e.contains("fault-plan keys:"), "all errors carry it: {e}");
    }

    #[test]
    fn canonical_round_trips() {
        let specs = [
            "",
            "seed=7,disk-error=0.02,disk-retries=4,backoff-ms=5,burst=60:5,burst-error=0.5,\
             outage=120:10,node-outage=300:20,net-loss=0.01,net-delay=0.05:2,net-retries=4,\
             net-ctrl-retries=2",
            // The burst-error defaulting rule must be pinned by the
            // canonical form, not re-derived at re-parse time.
            "disk-error=0.01,burst=60:5",
            "node-outage-wipe=120:10",
            "backoff-ms=0,net-delay=0.5:3",
        ];
        for spec in specs {
            let p = FaultPlan::parse(spec).unwrap();
            let c = p.canonical();
            let p2 = FaultPlan::parse(&c).unwrap_or_else(|e| panic!("'{c}': {e}"));
            assert_eq!(p, p2, "'{spec}' -> '{c}'");
            assert_eq!(p2.canonical(), c, "canonical is a fixed point: '{c}'");
        }
    }

    #[test]
    fn random_specs_parse_and_round_trip() {
        for seed in 0..500u64 {
            let spec = FaultPlan::random_spec(seed);
            let p =
                FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("seed {seed}: '{spec}': {e}"));
            let c = p.canonical();
            let p2 = FaultPlan::parse(&c).unwrap_or_else(|e| panic!("seed {seed}: '{c}': {e}"));
            assert_eq!(p, p2, "seed {seed}: '{spec}' -> '{c}'");
            assert_eq!(p2.canonical(), c, "seed {seed}: fixed point");
        }
        assert_eq!(
            FaultPlan::random_spec(9),
            FaultPlan::random_spec(9),
            "same seed, same spec"
        );
    }

    #[test]
    fn burst_error_defaults_from_disk_error() {
        let p = FaultPlan::parse("disk-error=0.01,burst=60:5").unwrap();
        assert_eq!(p.burst_error, 0.25);
        let p = FaultPlan::parse("disk-error=0.05,burst=60:5").unwrap();
        assert_eq!(p.burst_error, 0.5);
    }

    #[test]
    fn empty_plan_is_empty_and_draws_nothing() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.is_empty());
        let mut a = FaultState::new(p, 4);
        let mut b = FaultState::new(p, 4);
        for i in 0..100 {
            assert_eq!(
                a.disk_surcharge(i % 3, SimTime::ZERO + secs(i as u64), secs(1)),
                SimDuration::ZERO
            );
        }
        // No draw was consumed: a later real draw matches a fresh state.
        let mut plan = p;
        plan.disk_error = 1.0;
        a.plan = plan;
        b.plan = plan;
        assert_eq!(
            a.disk_surcharge(0, SimTime::ZERO, secs(1)),
            b.disk_surcharge(0, SimTime::ZERO, secs(1))
        );
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn surcharge_is_bounded_and_counted() {
        let p = FaultPlan::parse("disk-error=1.0,disk-retries=3,backoff-ms=1").unwrap();
        let mut s = FaultState::new(p, 1);
        let attempt = SimDuration::from_millis(10);
        let extra = s.disk_surcharge(0, SimTime::ZERO, attempt);
        // p=1: always the full 3 retries. 3 attempts + 1+2+4 ms backoff.
        assert_eq!(extra, attempt * 3 + SimDuration::from_millis(7));
        assert_eq!(s.stats.injected, 1);
        assert_eq!(s.stats.retries, 3);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let p = FaultPlan::parse("seed=9,disk-error=0.3,net-loss=0.2").unwrap();
        let mut a = FaultState::new(p, 2);
        let mut b = FaultState::new(p, 2);
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(i);
            assert_eq!(
                a.disk_surcharge(0, t, secs(1)),
                b.disk_surcharge(0, t, secs(1))
            );
            assert_eq!(
                a.net_extra(NetClass::Data, SimDuration::from_micros(50)),
                b.net_extra(NetClass::Data, SimDuration::from_micros(50))
            );
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn burst_windows_are_phased_and_periodic() {
        let p = FaultPlan::parse("seed=3,burst=60:5").unwrap();
        // Membership is a pure function of time: one period later, the
        // answer repeats; and across a whole period the window is open
        // for exactly `len` out of `period`.
        let mut open = 0u64;
        for s in 0..60u64 {
            let t = SimTime::ZERO + secs(100) + secs(s);
            if p.in_burst(0, t) {
                open += 1;
            }
            assert_eq!(p.in_burst(0, t), p.in_burst(0, t + secs(60)));
        }
        assert!((4..=6).contains(&open), "window open {open}s of 60s");
        // Different disks get different phases (with overwhelming
        // probability for this seed).
        let d0: Vec<bool> = (0..60)
            .map(|s| p.in_burst(0, SimTime::ZERO + secs(s)))
            .collect();
        let d1: Vec<bool> = (0..60)
            .map(|s| p.in_burst(1, SimTime::ZERO + secs(s)))
            .collect();
        assert_ne!(d0, d1);
    }

    #[test]
    fn outage_schedule_is_deterministic() {
        let p = FaultPlan::parse("seed=5,outage=120:10,node-outage=300:20").unwrap();
        let d = p.first_disk_down(2).unwrap();
        assert_eq!(p.first_disk_down(2), Some(d));
        assert!(d.saturating_since(SimTime::ZERO) < secs(120));
        let n = p.first_node_down(7).unwrap();
        assert!(n.saturating_since(SimTime::ZERO) < secs(300));
        assert!(FaultPlan::none().first_disk_down(0).is_none());
    }

    #[test]
    fn net_budget_bounds_lost_attempts() {
        let p = FaultPlan::parse("net-loss=1.0,net-retries=4,net-ctrl-retries=1").unwrap();
        let mut s = FaultState::new(p, 1);
        let attempt = SimDuration::from_micros(100);
        let data = s.net_extra(NetClass::Data, attempt);
        assert_eq!(data.lost, 4);
        assert_eq!(data.retry, attempt * 4);
        let ctrl = s.net_extra(NetClass::Control, attempt);
        assert_eq!(ctrl.lost, 1);
        assert_eq!(s.stats.net_lost, 5);
    }

    #[test]
    fn degraded_residency_accumulates_per_node() {
        let mut s = FaultState::new(FaultPlan::none(), 3);
        s.degraded_enter(1, SimTime::ZERO + secs(10));
        s.degraded_enter(1, SimTime::ZERO + secs(12)); // idempotent
        s.degraded_exit(1, SimTime::ZERO + secs(15));
        s.degraded_enter(2, SimTime::ZERO + secs(20));
        s.degraded_finalize(SimTime::ZERO + secs(30));
        let rows: Vec<_> = s.degraded_residency().collect();
        assert_eq!(rows, vec![(1, 5.0), (2, 10.0)]);
        assert_eq!(s.degraded_total_s(), 15.0);
        assert_eq!(s.stats.node_outages, 2);
    }

    #[test]
    fn dispatch_faults_adapter_prices_through() {
        let p = FaultPlan::parse("disk-error=1.0,disk-retries=1,backoff-ms=0").unwrap();
        let mut state = FaultState::new(p, 1);
        let mut ctx = DiskFaultCtx {
            state: &mut state,
            disk: 0,
        };
        let base = ServiceCost::flat(SimDuration::from_millis(10));
        let job = JobSpec {
            op: simkit::DeviceOp::Read,
            pos: None,
            bytes: 8192,
            blocks: 1,
            rid: 0,
        };
        let extra = ctx.dispatch_surcharge(SimTime::ZERO, &job, &base);
        assert_eq!(extra, SimDuration::from_millis(10));
    }

    #[test]
    fn fault_stats_register_stable_schema() {
        let mut reg = Registry::new();
        FaultStats::default().register_into(&mut reg);
        let keys: Vec<&str> = reg.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                "fault.injected",
                "fault.retries",
                "fault.failovers",
                "fault.disk_outages",
                "fault.node_outages",
                "fault.net_lost",
                "fault.net_delayed",
                "fault.prefetch_suppressed",
            ]
        );
    }
}
