//! Synthetic CHARISMA-like workload: a parallel machine running
//! scientific applications.
//!
//! The CHARISMA traces (Nieuwejaar et al., iPSC/860 at NASA Ames) are
//! not redistributable, so this generator synthesises a workload with
//! the published characteristics the paper's analysis relies on:
//!
//! * few, large files, each produced/consumed by one parallel
//!   application whose processes span many nodes;
//! * *regular* access: sequential segments, interleaved strides, and
//!   broadcast (all processes read the same data) — the patterns the
//!   CHARISMA study classified;
//! * large requests ("many large user requests", §5.2);
//! * **bursty phase behaviour**: long compute phases separated by I/O
//!   bursts of many closely spaced requests. This is what gives
//!   aggressive prefetching its edge — during a compute phase the
//!   prefetcher works far ahead one block at a time, so the next burst
//!   hits; a one-request-ahead prefetcher covers only the first request
//!   of a burst;
//! * applications that access only the *first part* of a file and never
//!   return to the tail (§5.2 uses this to explain Ln_Agr_OBA vs
//!   Ln_Agr_IS_PPM at small cache sizes);
//! * multiple passes over the data (time-steps), giving temporal reuse;
//! * writers that keep re-dirtying a *hot region* throughout the run —
//!   the repeatedly-modified blocks whose periodic write-backs Table 2
//!   counts;
//! * long compute phases, as befits compute-bound scientific codes on
//!   10 MB/s disks.
//!
//! Everything is driven by a seeded [`Rng64`], so a `(params, seed)`
//! pair always produces the identical workload.

use simkit::SimDuration;

use crate::trace::{FileMeta, Op, ProcessTrace, Workload};
use crate::types::{FileId, NodeId, ProcId};
use crate::util::{jitter, ms, Rng64};

/// How one application's processes divide a file among themselves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AppPattern {
    /// Process `p` of `P` reads records `p, p+P, p+2P, …` — a regular
    /// stride of `P * record` blocks between its consecutive requests.
    Interleaved,
    /// Process `p` reads the contiguous segment `p` of the accessed
    /// region sequentially.
    Segmented,
    /// Every process reads the whole accessed region sequentially
    /// (input decks, redundant reads) — the inter-process sharing that
    /// cooperative caches exploit.
    Broadcast,
}

/// Parameters of the CHARISMA-like generator.
#[derive(Clone, Debug)]
pub struct CharismaParams {
    /// Machine nodes (the paper's PM has 128).
    pub nodes: u32,
    /// Concurrently running applications.
    pub apps: usize,
    /// Processes per application (spread round-robin over nodes).
    pub procs_per_app: u32,
    /// File size range in blocks (inclusive).
    pub file_blocks: (u64, u64),
    /// Passes over the data per application (inclusive range).
    pub passes: (u32, u32),
    /// Record (request) size range in blocks (inclusive).
    pub record_blocks: (u64, u64),
    /// Range of the fraction of each file that is ever accessed.
    pub accessed_fraction: (f64, f64),
    /// Requests per I/O burst (inclusive range).
    pub burst_requests: (u32, u32),
    /// Think time between requests inside a burst, ms range (small —
    /// comparable to one disk access, so un-prefetched bursts stall).
    pub burst_gap_ms: (f64, f64),
    /// Compute phase between bursts, ms range (long — this is the slack
    /// an aggressive prefetcher exploits). SPMD processes of one
    /// application share the phase schedule (loosely synchronized I/O
    /// rounds), with a per-process jitter of ±10%.
    pub compute_phase_ms: (f64, f64),
    /// Extra compute between passes, ms range.
    pub pass_gap_ms: (f64, f64),
    /// Fraction of applications that are writers.
    pub writer_fraction: f64,
    /// Writers re-dirty a hot region of this many blocks (range).
    pub hot_blocks: (u64, u64),
    /// Writers checkpoint (rewrite) their hot slice this many times
    /// per pass, evenly spaced. Together with the write-back period
    /// this controls Table 2's writes-per-block statistic: each
    /// checkpoint leaves the slice dirty until the next sweep.
    pub hot_rewrites_per_pass: u32,
    /// Pattern mix weights: (interleaved, segmented, broadcast).
    pub pattern_weights: (f64, f64, f64),
}

impl CharismaParams {
    /// Paper-scale parameters: the PM of Table 1 (128 nodes), with an
    /// aggregate accessed footprint (~1.5 GB) that sweeps the 1–16 MB
    /// per-node cache range without saturating early.
    pub fn paper() -> Self {
        CharismaParams {
            nodes: 128,
            apps: 16,
            procs_per_app: 16,
            file_blocks: (14_336, 28_672), // 112–224 MB at 8 KB blocks
            passes: (2, 3),
            record_blocks: (2, 12),
            accessed_fraction: (0.55, 1.0),
            burst_requests: (4, 10),
            burst_gap_ms: (0.5, 4.0),
            compute_phase_ms: (8_000.0, 16_000.0),
            pass_gap_ms: (500.0, 3_000.0),
            writer_fraction: 0.4,
            hot_blocks: (64, 256),
            hot_rewrites_per_pass: 5,
            pattern_weights: (0.5, 0.3, 0.2),
        }
    }

    /// A scaled-down variant for unit tests and quick examples.
    pub fn small() -> Self {
        CharismaParams {
            nodes: 8,
            apps: 3,
            procs_per_app: 4,
            file_blocks: (192, 512),
            passes: (2, 3),
            record_blocks: (2, 8),
            accessed_fraction: (0.6, 1.0),
            burst_requests: (3, 6),
            burst_gap_ms: (0.5, 4.0),
            compute_phase_ms: (400.0, 1_200.0),
            pass_gap_ms: (100.0, 400.0),
            writer_fraction: 0.4,
            hot_blocks: (8, 24),
            hot_rewrites_per_pass: 3,
            pattern_weights: (0.5, 0.3, 0.2),
        }
    }

    /// Generate the workload for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.apps > 0 && self.procs_per_app > 0 && self.nodes > 0);
        let mut rng = Rng64::new(seed);
        let block_size = 8192u64;

        let mut files = Vec::with_capacity(self.apps);
        let mut processes: Vec<ProcessTrace> = Vec::new();

        for app in 0..self.apps {
            let file = FileId(app as u32);
            let blocks = rng.range_u64(self.file_blocks.0, self.file_blocks.1);
            files.push(FileMeta {
                id: file,
                size: blocks * block_size,
            });

            let pattern = self.pick_pattern(&mut rng);
            let record = rng
                .range_u64(self.record_blocks.0, self.record_blocks.1)
                .min(blocks);
            let frac = rng.range_f64(self.accessed_fraction.0, self.accessed_fraction.1);
            let accessed = ((blocks as f64 * frac) as u64).max(record).min(blocks);
            let passes = rng.range_u32(self.passes.0, self.passes.1);
            let writer = rng.chance(self.writer_fraction);
            let hot = rng
                .range_u64(self.hot_blocks.0, self.hot_blocks.1)
                .min(accessed);
            let procs = self.procs_per_app;

            // SPMD processes synchronize loosely at I/O rounds: the
            // compute-phase/burst schedule is drawn once per (app,
            // pass) and shared by every process, with per-process
            // jitter applied at emission.
            let max_reads_per_proc = match pattern {
                AppPattern::Interleaved => accessed.div_ceil(record).div_ceil(procs as u64),
                AppPattern::Segmented => accessed.div_ceil(procs as u64).div_ceil(record),
                AppPattern::Broadcast => accessed.div_ceil(record),
            };
            let mut schedules: Vec<Vec<(SimDuration, usize)>> = Vec::new();
            let mut pass_gaps: Vec<SimDuration> = Vec::new();
            for _ in 0..passes {
                let mut rounds = Vec::new();
                let mut covered = 0u64;
                while covered < max_reads_per_proc {
                    let phase = ms(&mut rng, self.compute_phase_ms);
                    let burst =
                        rng.range_u32(self.burst_requests.0, self.burst_requests.1) as usize;
                    rounds.push((phase, burst));
                    covered += burst as u64;
                }
                schedules.push(rounds);
                pass_gaps.push(ms(&mut rng, self.pass_gap_ms));
            }
            let app_start = ms(&mut rng, (0.0, 2000.0));

            // Spread the app's processes across the machine.
            let first_node = (app as u32 * procs) % self.nodes;

            for p in 0..procs {
                let proc_id = ProcId(processes.len() as u32);
                let node = NodeId((first_node + p) % self.nodes);
                let mut ops = Vec::new();
                // All processes of the app start near the same instant.
                ops.push(Op::Compute(jitter(&mut rng, app_start)));
                for (pass, schedule) in schedules.iter().enumerate() {
                    if pass > 0 {
                        ops.push(Op::Compute(jitter(&mut rng, pass_gaps[pass])));
                    }
                    self.emit_pass(
                        &mut rng, &mut ops, pattern, file, block_size, accessed, record, p, procs,
                        writer, hot, schedule,
                    );
                }
                processes.push(ProcessTrace {
                    proc: proc_id,
                    node,
                    ops,
                });
            }
        }

        let wl = Workload {
            name: format!("charisma-{}n-{}apps", self.nodes, self.apps),
            block_size,
            nodes: self.nodes,
            files,
            processes,
        };
        wl.validate();
        wl
    }

    fn pick_pattern(&self, rng: &mut Rng64) -> AppPattern {
        let (wi, ws, wb) = self.pattern_weights;
        let total = wi + ws + wb;
        let x = rng.range_f64(0.0, total);
        if x < wi {
            AppPattern::Interleaved
        } else if x < wi + ws {
            AppPattern::Segmented
        } else {
            AppPattern::Broadcast
        }
    }

    /// Emit one pass of process `p` (of `procs`) over the accessed
    /// region: the pattern's reads grouped into the app-wide burst
    /// `schedule` (jittered per process), and (for writers) periodic
    /// rewrites of the process's slice of the hot region.
    #[allow(clippy::too_many_arguments)]
    fn emit_pass(
        &self,
        rng: &mut Rng64,
        ops: &mut Vec<Op>,
        pattern: AppPattern,
        file: FileId,
        block_size: u64,
        accessed: u64,
        record: u64,
        p: u32,
        procs: u32,
        writer: bool,
        hot: u64,
        schedule: &[(SimDuration, usize)],
    ) {
        // Reads of this pass, as (start_block, nblocks).
        let mut reads: Vec<(u64, u64)> = Vec::new();
        match pattern {
            AppPattern::Interleaved => {
                let mut rec = p as u64;
                loop {
                    let start = rec * record;
                    if start >= accessed {
                        break;
                    }
                    reads.push((start, record.min(accessed - start)));
                    rec += procs as u64;
                }
            }
            AppPattern::Segmented => {
                let seg = accessed.div_ceil(procs as u64);
                let start = (p as u64 * seg).min(accessed);
                let end = ((p as u64 + 1) * seg).min(accessed);
                let mut blk = start;
                while blk < end {
                    let n = record.min(end - blk);
                    reads.push((blk, n));
                    blk += n;
                }
            }
            AppPattern::Broadcast => {
                let mut blk = 0;
                while blk < accessed {
                    let n = record.min(accessed - blk);
                    reads.push((blk, n));
                    blk += n;
                }
            }
        }

        // The process's slice of the hot region (writers only).
        let hot_slice = if writer && hot > 0 {
            let per = hot.div_ceil(procs as u64).max(1);
            let start = (p as u64 * per).min(hot.saturating_sub(1));
            let end = ((p as u64 + 1) * per).min(hot);
            (start < end).then_some((start, end))
        } else {
            None
        };

        // Rounds at which the hot slice is checkpointed: evenly spaced
        // through the pass.
        let rewrite_stride = if self.hot_rewrites_per_pass > 0 {
            (schedule.len() / self.hot_rewrites_per_pass as usize).max(1)
        } else {
            usize::MAX
        };

        let mut i = 0usize;
        let mut burst_no = 0usize;
        for &(phase, burst) in schedule {
            if i >= reads.len() {
                break;
            }
            // Shared compute phase (jittered), then a burst of closely
            // spaced requests.
            ops.push(Op::Compute(jitter(rng, phase)));
            for (start, n) in reads[i..reads.len().min(i + burst)].iter().copied() {
                ops.push(Op::Compute(ms(rng, self.burst_gap_ms)));
                ops.push(Op::Read {
                    file,
                    offset: start * block_size,
                    len: n * block_size,
                });
            }
            i += burst;
            burst_no += 1;
            // Writers checkpoint their hot slice at the scheduled rounds.
            if let Some((hs, he)) = hot_slice {
                if burst_no.is_multiple_of(rewrite_stride) {
                    let mut blk = hs;
                    while blk < he {
                        let n = record.min(he - blk);
                        ops.push(Op::Compute(ms(rng, self.burst_gap_ms)));
                        ops.push(Op::Write {
                            file,
                            offset: blk * block_size,
                            len: n * block_size,
                        });
                        blk += n;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = CharismaParams::small();
        let a = p.generate(7);
        let b = p.generate(7);
        assert_eq!(a.to_text(), b.to_text());
        let c = p.generate(8);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn generated_workload_validates_for_many_seeds() {
        let p = CharismaParams::small();
        for seed in 0..20 {
            let wl = p.generate(seed);
            wl.validate(); // panics on inconsistency
            assert_eq!(wl.files.len(), p.apps);
            assert_eq!(wl.processes.len(), p.apps * p.procs_per_app as usize);
        }
    }

    #[test]
    fn workload_has_large_requests_and_sharing() {
        let wl = CharismaParams::small().generate(3);
        let s = wl.stats();
        assert!(s.mean_read_blocks > 1.5, "mean {}", s.mean_read_blocks);
        // Every app file is touched from several nodes.
        assert!(s.shared_file_fraction > 0.8);
        assert!(s.writes > 0, "writer apps must produce writes");
    }

    #[test]
    fn respects_accessed_fraction_upper_part_untouched() {
        // With accessed_fraction < 1, no access goes past ~50% of any
        // file (+1 record of slack).
        let mut p = CharismaParams::small();
        p.accessed_fraction = (0.5, 0.5);
        let wl = p.generate(1);
        let bs = wl.block_size;
        for proc in &wl.processes {
            for op in &proc.ops {
                if let Op::Read { file, offset, len } | Op::Write { file, offset, len } = op {
                    let fsize = wl.files[file.0 as usize].size;
                    assert!(
                        offset + len <= fsize / 2 + 16 * bs,
                        "access at {}..{} of {}",
                        offset,
                        offset + len,
                        fsize
                    );
                }
            }
        }
    }

    #[test]
    fn traces_are_bursty() {
        // Inside a burst the gaps are tiny; between bursts they are
        // hundreds of ms. Verify a bimodal gap distribution.
        let wl = CharismaParams::small().generate(5);
        let mut small_gaps = 0usize;
        let mut large_gaps = 0usize;
        for proc in &wl.processes {
            for op in &proc.ops {
                if let Op::Compute(d) = op {
                    if d.as_millis() < 10 {
                        small_gaps += 1;
                    } else if d.as_millis() > 100 {
                        large_gaps += 1;
                    }
                }
            }
        }
        assert!(small_gaps > large_gaps, "{small_gaps} vs {large_gaps}");
        assert!(large_gaps > 10, "need real compute phases: {large_gaps}");
    }

    #[test]
    fn writers_rewrite_hot_blocks_repeatedly() {
        let mut p = CharismaParams::small();
        p.writer_fraction = 1.0;
        let wl = p.generate(9);
        // Some block must be written more than once by some process.
        use std::collections::HashMap;
        let mut writes: HashMap<(u32, u64), u32> = HashMap::new();
        for proc in &wl.processes {
            for op in &proc.ops {
                if let Op::Write { file, offset, .. } = op {
                    *writes.entry((file.0, offset / wl.block_size)).or_default() += 1;
                }
            }
        }
        let max = writes.values().copied().max().unwrap_or(0);
        assert!(max >= 2, "hot blocks must be rewritten, max={max}");
    }

    #[test]
    fn paper_preset_matches_table1_machine() {
        let p = CharismaParams::paper();
        assert_eq!(p.nodes, 128);
        let wl = p.generate(1);
        assert_eq!(wl.nodes, 128);
        assert_eq!(wl.block_size, 8192);
    }
}
