//! # ioworkload — trace model and synthetic workload generators
//!
//! The paper evaluates its prefetching algorithms with two trace
//! workloads:
//!
//! * **CHARISMA** — file-system traces of the Intel iPSC/860 at NASA
//!   Ames (Nieuwejaar et al.): a parallel machine running scientific
//!   applications with few, large, *shared* files accessed through
//!   large sequential and regularly strided requests.
//! * **Sprite** — the Berkeley Sprite distributed-OS traces (Baker et
//!   al.): a network of workstations with many users, many *small*
//!   files, mostly whole-file sequential reads and very little
//!   inter-client sharing.
//!
//! Neither trace set is redistributable, so this crate provides
//! *synthetic generators* that reproduce the published characteristics
//! the paper's analysis depends on (request sizes, stride patterns,
//! sharing, partial-file access, file sizes, read/write mix). The
//! generators are seeded and fully deterministic, and the resulting
//! [`Workload`] can also be saved/loaded in a simple line-oriented text
//! format for inspection and reuse.
//!
//! ```
//! use ioworkload::charisma::{CharismaParams};
//!
//! let wl = CharismaParams::small().generate(42);
//! assert!(wl.processes.len() > 0);
//! let stats = wl.stats();
//! assert!(stats.reads > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod charisma;
pub mod mix;
mod named;
pub mod sprite;
mod stats;
pub mod streams;
mod text;
mod trace;
mod types;
pub mod util;

pub use named::generate_named;
pub use stats::WorkloadStats;
pub use text::ParseError;
pub use trace::{FileMeta, Op, ProcessTrace, Workload};
pub use types::{BlockId, FileId, NodeId, ProcId};
