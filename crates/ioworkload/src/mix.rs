//! Combine workloads onto one machine.
//!
//! Parallel machines rarely run a single workload class; mixing the
//! CHARISMA-like and Sprite-like generators (or several instances of
//! one) onto the same node set produces interference studies the paper
//! hints at ("a system where many applications are running
//! concurrently", §1) but does not evaluate.

use crate::trace::{Op, Workload};
use crate::types::{FileId, ProcId};

/// Merge several workloads into one: file and process ids are
/// re-numbered into one dense space, node ids are kept (all inputs must
/// target the same machine width or narrower), block sizes must agree.
///
/// ```
/// use ioworkload::charisma::CharismaParams;
/// use ioworkload::mix::merge;
///
/// let a = CharismaParams::small().generate(1);
/// let b = CharismaParams::small().generate(2);
/// let n = a.processes.len() + b.processes.len();
/// let mixed = merge("both", vec![a, b]);
/// assert_eq!(mixed.processes.len(), n);
/// ```
///
/// # Panics
/// Panics if `parts` is empty or block sizes differ.
pub fn merge(name: &str, parts: Vec<Workload>) -> Workload {
    assert!(!parts.is_empty(), "nothing to merge");
    let block_size = parts[0].block_size;
    let nodes = parts.iter().map(|w| w.nodes).max().unwrap();
    let mut files = Vec::new();
    let mut processes = Vec::new();

    for part in parts {
        assert_eq!(
            part.block_size, block_size,
            "cannot merge workloads with different block sizes"
        );
        let file_base = files.len() as u32;
        for mut f in part.files {
            f.id = FileId(file_base + f.id.0);
            files.push(f);
        }
        for mut p in part.processes {
            p.proc = ProcId(processes.len() as u32);
            for op in &mut p.ops {
                match op {
                    Op::Read { file, .. } | Op::Write { file, .. } => {
                        *file = FileId(file_base + file.0);
                    }
                    Op::Compute(_) => {}
                }
            }
            processes.push(p);
        }
    }

    let wl = Workload {
        name: name.to_string(),
        block_size,
        nodes,
        files,
        processes,
    };
    wl.validate();
    wl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charisma::CharismaParams;
    use crate::sprite::SpriteParams;

    #[test]
    fn merge_renumbers_everything_densely() {
        let a = CharismaParams::small().generate(1);
        let b = SpriteParams::small().generate(2);
        let (fa, pa) = (a.files.len(), a.processes.len());
        let (fb, pb) = (b.files.len(), b.processes.len());
        let m = merge("mixed", vec![a, b]);
        assert_eq!(m.files.len(), fa + fb);
        assert_eq!(m.processes.len(), pa + pb);
        m.validate(); // dense ids, in-bounds accesses
    }

    #[test]
    fn merged_accesses_point_at_the_right_files() {
        let a = CharismaParams::small().generate(3);
        let b = CharismaParams::small().generate(3);
        let io_before = a.io_ops() + b.io_ops();
        let fa = a.files.len() as u32;
        let m = merge("two-charismas", vec![a, b]);
        assert_eq!(m.io_ops(), io_before);
        // The second instance's ops all target files >= fa.
        let second_half = &m.processes[m.processes.len() / 2..];
        let mut saw_offset_file = false;
        for p in second_half {
            for op in &p.ops {
                if let Op::Read { file, .. } | Op::Write { file, .. } = op {
                    assert!(file.0 >= fa);
                    saw_offset_file = true;
                }
            }
        }
        assert!(saw_offset_file);
    }

    #[test]
    fn merge_takes_the_widest_machine() {
        let mut small = CharismaParams::small();
        small.nodes = 4;
        small.procs_per_app = 2;
        let a = small.generate(1);
        let mut wide = CharismaParams::small();
        wide.nodes = 8;
        let b = wide.generate(1);
        let m = merge("mixed-width", vec![a, b]);
        assert_eq!(m.nodes, 8);
    }

    #[test]
    #[should_panic(expected = "nothing to merge")]
    fn empty_merge_panics() {
        merge("empty", vec![]);
    }

    #[test]
    fn merge_is_identity_for_one_part() {
        let a = SpriteParams::small().generate(9);
        let text = a.to_text();
        let m = merge(&a.name.clone(), vec![a]);
        assert_eq!(m.to_text(), text);
    }
}
