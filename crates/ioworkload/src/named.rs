//! Generate the built-in workloads by name — the single dispatch the
//! CLI tools and harnesses share.

use crate::charisma::CharismaParams;
use crate::sprite::SpriteParams;
use crate::trace::Workload;

/// Generate a built-in workload by `(kind, scale)` name.
///
/// `kind` is `"charisma"` or `"sprite"`; `scale` is `"small"` or
/// `"paper"`. Returns `None` for unknown names.
///
/// ```
/// use ioworkload::generate_named;
///
/// let wl = generate_named("sprite", "small", 7).unwrap();
/// assert!(wl.processes.len() > 0);
/// assert!(generate_named("minix", "small", 7).is_none());
/// ```
pub fn generate_named(kind: &str, scale: &str, seed: u64) -> Option<Workload> {
    Some(match (kind, scale) {
        ("charisma", "small") => CharismaParams::small().generate(seed),
        ("charisma", "paper") => CharismaParams::paper().generate(seed),
        ("sprite", "small") => SpriteParams::small().generate(seed),
        ("sprite", "paper") => SpriteParams::paper().generate(seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_covers_all_builtins() {
        for kind in ["charisma", "sprite"] {
            for scale in ["small", "paper"] {
                assert!(
                    generate_named(kind, scale, 1).is_some(),
                    "{kind}/{scale} must dispatch"
                );
            }
        }
        assert!(generate_named("charisma", "huge", 1).is_none());
        assert!(generate_named("", "small", 1).is_none());
    }

    #[test]
    fn named_matches_direct_generation() {
        let a = generate_named("charisma", "small", 9).unwrap();
        let b = CharismaParams::small().generate(9);
        assert_eq!(a.to_text(), b.to_text());
    }
}
