//! Synthetic Sprite-like workload: a network of workstations.
//!
//! The Berkeley Sprite traces (Baker et al., SOSP'91) captured ~50
//! client workstations used by ~70 users over two days. The published
//! characteristics this generator reproduces:
//!
//! * many *small* files (most a handful of blocks);
//! * accesses dominated by whole-file or prefix sequential reads with
//!   small requests;
//! * strong per-user temporal locality (the same files are re-opened
//!   again and again) but **very little inter-client sharing** — the
//!   property §5.2 uses to explain why xFS's per-node linearity is
//!   almost as good as PAFS's global linearity on this workload;
//! * a minority of files accessed through *structured* non-sequential
//!   patterns (strided scans, backward scans) that a one-block-ahead
//!   heuristic cannot follow but a pattern learner can — the source of
//!   the Ln_Agr_OBA 32% vs Ln_Agr_IS_PPM 15% miss-prediction gap;
//! * a moderate write share (temporary files, edits).
//!
//! Each file gets a fixed *access profile* at creation; every open of
//! the file replays that profile. This mirrors reality (a given file
//! tends to be read the same way every time) and is what makes learned
//! per-file prediction graphs useful across opens.

use crate::trace::{FileMeta, Op, ProcessTrace, Workload};
use crate::types::{FileId, NodeId, ProcId};
use crate::util::{log_uniform, ms, Rng64};

/// How a file is accessed on every open.
#[derive(Clone, Copy, Debug)]
enum Profile {
    /// Sequential prefix read: blocks `0 .. frac*blocks`, `req` blocks
    /// per request.
    Sequential {
        /// Fraction of the file read before stopping.
        frac: f64,
        /// Request size in blocks.
        req: u64,
    },
    /// Strided scan: one `req`-block request every `stride` blocks.
    Strided {
        /// Distance between request starts, in blocks (> req).
        stride: u64,
        /// Request size in blocks.
        req: u64,
    },
    /// Backward scan from the end of the file to the beginning.
    Backward {
        /// Request size in blocks.
        req: u64,
    },
}

/// Parameters of the Sprite-like generator.
#[derive(Clone, Debug)]
pub struct SpriteParams {
    /// Client workstations (the paper's NOW has 50).
    pub nodes: u32,
    /// Users; each user is one trace process pinned to a node.
    pub users: u32,
    /// Private files per user.
    pub files_per_user: u32,
    /// File size range in blocks (inclusive); sizes are drawn
    /// log-uniformly so small files dominate.
    pub file_blocks: (u64, u64),
    /// File opens per user.
    pub opens_per_user: u32,
    /// Geometric parameter of per-user file popularity (higher = more
    /// reuse of the hottest files).
    pub reuse_bias: f64,
    /// Globally shared files (system binaries etc.).
    pub shared_files: u32,
    /// Probability an open goes to a shared file.
    pub shared_open_prob: f64,
    /// Profile mix weights: (sequential, strided, backward).
    pub profile_weights: (f64, f64, f64),
    /// Sequential profiles read this fraction range of the file.
    pub prefix_fraction: (f64, f64),
    /// Probability an open rewrites the file instead of reading it.
    pub write_open_prob: f64,
    /// Think time between requests, ms range.
    pub think_ms: (f64, f64),
    /// Idle gap between opens, ms range.
    pub open_gap_ms: (f64, f64),
}

impl SpriteParams {
    /// Paper-scale parameters: the NOW of Table 1 (50 nodes).
    pub fn paper() -> Self {
        SpriteParams {
            nodes: 50,
            users: 70,
            files_per_user: 64,
            file_blocks: (1, 64),
            opens_per_user: 200,
            reuse_bias: 0.18,
            shared_files: 6,
            shared_open_prob: 0.08,
            profile_weights: (0.6, 0.25, 0.15),
            prefix_fraction: (0.4, 1.0),
            write_open_prob: 0.25,
            think_ms: (2.0, 25.0),
            open_gap_ms: (400.0, 4000.0),
        }
    }

    /// A scaled-down variant for unit tests and quick examples.
    pub fn small() -> Self {
        SpriteParams {
            nodes: 6,
            users: 8,
            files_per_user: 10,
            file_blocks: (1, 32),
            opens_per_user: 30,
            reuse_bias: 0.2,
            shared_files: 2,
            shared_open_prob: 0.08,
            profile_weights: (0.6, 0.25, 0.15),
            prefix_fraction: (0.4, 1.0),
            write_open_prob: 0.25,
            think_ms: (5.0, 30.0),
            open_gap_ms: (50.0, 500.0),
        }
    }

    /// Generate the workload for a seed.
    pub fn generate(&self, seed: u64) -> Workload {
        assert!(self.users > 0 && self.nodes > 0 && self.files_per_user > 0);
        let mut rng = Rng64::new(seed);
        let block_size = 8192u64;

        // Shared files first, then each user's private files.
        let total_files = self.shared_files + self.users * self.files_per_user;
        let mut files = Vec::with_capacity(total_files as usize);
        let mut profiles = Vec::with_capacity(total_files as usize);
        for id in 0..total_files {
            let blocks = log_uniform(&mut rng, self.file_blocks);
            files.push(FileMeta {
                id: FileId(id),
                size: blocks * block_size,
            });
            profiles.push(self.pick_profile(&mut rng, blocks));
        }

        let mut processes = Vec::with_capacity(self.users as usize);
        for u in 0..self.users {
            let proc_id = ProcId(u);
            let node = NodeId(u % self.nodes);
            let my_first = self.shared_files + u * self.files_per_user;
            let mut ops = Vec::new();
            ops.push(Op::Compute(ms(&mut rng, (0.0, 3000.0))));
            for _ in 0..self.opens_per_user {
                ops.push(Op::Compute(ms(&mut rng, self.open_gap_ms)));
                let file = if self.shared_files > 0 && rng.chance(self.shared_open_prob) {
                    FileId(rng.range_u32(0, self.shared_files - 1))
                } else {
                    // Geometric popularity over the user's own files:
                    // file k chosen with probability ∝ (1-b)^k.
                    let mut k = 0;
                    while k + 1 < self.files_per_user && !rng.chance(self.reuse_bias) {
                        k += 1;
                    }
                    FileId(my_first + k)
                };
                let write = rng.chance(self.write_open_prob);
                self.emit_open(
                    &mut rng,
                    &mut ops,
                    file,
                    files[file.0 as usize].size / block_size,
                    profiles[file.0 as usize],
                    block_size,
                    write,
                );
            }
            processes.push(ProcessTrace {
                proc: proc_id,
                node,
                ops,
            });
        }

        let wl = Workload {
            name: format!("sprite-{}n-{}u", self.nodes, self.users),
            block_size,
            nodes: self.nodes,
            files,
            processes,
        };
        wl.validate();
        wl
    }

    fn pick_profile(&self, rng: &mut Rng64, blocks: u64) -> Profile {
        let (ws, wt, wb) = self.profile_weights;
        let x = rng.range_f64(0.0, ws + wt + wb);
        if x < ws || blocks < 6 {
            // Tiny files are always read sequentially.
            Profile::Sequential {
                frac: rng.range_f64(self.prefix_fraction.0, self.prefix_fraction.1),
                req: rng.range_u64(1, 2u64.min(blocks).max(1)),
            }
        } else if x < ws + wt {
            let stride = rng.range_u64(3, 6);
            Profile::Strided {
                stride,
                req: rng.range_u64(1, 2),
            }
        } else {
            Profile::Backward {
                req: rng.range_u64(1, 2),
            }
        }
    }

    /// Emit the request sequence of one open.
    #[allow(clippy::too_many_arguments)]
    fn emit_open(
        &self,
        rng: &mut Rng64,
        ops: &mut Vec<Op>,
        file: FileId,
        blocks: u64,
        profile: Profile,
        block_size: u64,
        write: bool,
    ) {
        let emit = |rng: &mut Rng64, ops: &mut Vec<Op>, start_blk: u64, nblk: u64| {
            if nblk == 0 {
                return;
            }
            ops.push(Op::Compute(ms(rng, self.think_ms)));
            let offset = start_blk * block_size;
            let len = nblk * block_size;
            if write {
                ops.push(Op::Write { file, offset, len });
            } else {
                ops.push(Op::Read { file, offset, len });
            }
        };

        match profile {
            Profile::Sequential { frac, req } => {
                let end = ((blocks as f64 * frac).ceil() as u64).clamp(1, blocks);
                let mut blk = 0;
                while blk < end {
                    let n = req.min(end - blk);
                    emit(rng, ops, blk, n);
                    blk += n;
                }
            }
            Profile::Strided { stride, req } => {
                let mut blk = 0;
                while blk < blocks {
                    let n = req.min(blocks - blk);
                    emit(rng, ops, blk, n);
                    blk += stride;
                }
            }
            Profile::Backward { req } => {
                let mut blk = blocks;
                while blk > 0 {
                    let n = req.min(blk);
                    emit(rng, ops, blk - n, n);
                    blk -= n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = SpriteParams::small();
        assert_eq!(p.generate(5).to_text(), p.generate(5).to_text());
        assert_ne!(p.generate(5).to_text(), p.generate(6).to_text());
    }

    #[test]
    fn validates_for_many_seeds() {
        let p = SpriteParams::small();
        for seed in 0..20 {
            p.generate(seed).validate();
        }
    }

    #[test]
    fn small_files_and_little_sharing() {
        let wl = SpriteParams::small().generate(11);
        let s = wl.stats();
        // Requests are small...
        assert!(s.mean_read_blocks < 3.0, "mean {}", s.mean_read_blocks);
        // ...files are small...
        assert!(s.mean_file_blocks < 40.0);
        // ...and few files are shared between nodes (only the shared
        // system files plus users co-located by chance).
        assert!(
            s.shared_file_fraction < 0.3,
            "sharing {}",
            s.shared_file_fraction
        );
        assert!(s.writes > 0);
    }

    #[test]
    fn reuse_concentrates_on_hot_files() {
        let wl = SpriteParams::small().generate(3);
        // Count opens per file for user 0 by scanning its trace.
        use std::collections::HashMap;
        let mut touches: HashMap<u32, usize> = HashMap::new();
        for op in &wl.processes[0].ops {
            if let Op::Read { file, .. } | Op::Write { file, .. } = op {
                *touches.entry(file.0).or_default() += 1;
            }
        }
        // The most-touched file should clearly dominate the median one.
        let mut counts: Vec<usize> = touches.values().copied().collect();
        counts.sort_unstable();
        let max = *counts.last().unwrap();
        let median = counts[counts.len() / 2];
        assert!(max >= median, "max {max} median {median}");
    }

    #[test]
    fn paper_preset_matches_table1_machine() {
        let p = SpriteParams::paper();
        assert_eq!(p.nodes, 50);
        let wl = p.generate(1);
        assert_eq!(wl.nodes, 50);
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = Rng64::new(1);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, (1, 64));
            assert!((1..=64).contains(&v));
        }
    }
}
