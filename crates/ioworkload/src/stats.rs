//! Workload summary statistics, for sanity checks and reports.

use std::collections::{HashMap, HashSet};

use crate::trace::{Op, Workload};
use crate::types::FileId;

/// Aggregate characteristics of a workload, mirroring the properties
/// the CHARISMA and Sprite papers report (request sizes, sharing,
/// read/write mix).
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Number of read operations.
    pub reads: usize,
    /// Number of write operations.
    pub writes: usize,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Mean read size in blocks.
    pub mean_read_blocks: f64,
    /// Number of files.
    pub files: usize,
    /// Mean file size in blocks.
    pub mean_file_blocks: f64,
    /// Fraction of files accessed by more than one node (inter-node
    /// sharing, the property that separates CHARISMA from Sprite).
    pub shared_file_fraction: f64,
    /// Distinct blocks touched across all files.
    pub distinct_blocks: u64,
    /// Total compute time across processes, in seconds.
    pub compute_seconds: f64,
}

impl Workload {
    /// Compute summary statistics.
    pub fn stats(&self) -> WorkloadStats {
        let mut s = WorkloadStats {
            files: self.files.len(),
            ..Default::default()
        };
        let bs = self.block_size;
        let mut read_blocks_total = 0u64;
        let mut file_nodes: HashMap<FileId, HashSet<u32>> = HashMap::new();
        let mut touched: HashSet<(u32, u64)> = HashSet::new();
        for p in &self.processes {
            for op in &p.ops {
                match *op {
                    Op::Compute(d) => s.compute_seconds += d.as_secs_f64(),
                    Op::Read { file, offset, len } => {
                        s.reads += 1;
                        s.bytes_read += len;
                        let first = offset / bs;
                        let last = (offset + len - 1) / bs;
                        read_blocks_total += last - first + 1;
                        file_nodes.entry(file).or_default().insert(p.node.0);
                        for b in first..=last {
                            touched.insert((file.0, b));
                        }
                    }
                    Op::Write { file, offset, len } => {
                        s.writes += 1;
                        s.bytes_written += len;
                        let first = offset / bs;
                        let last = (offset + len - 1) / bs;
                        file_nodes.entry(file).or_default().insert(p.node.0);
                        for b in first..=last {
                            touched.insert((file.0, b));
                        }
                    }
                }
            }
        }
        s.mean_read_blocks = if s.reads == 0 {
            0.0
        } else {
            read_blocks_total as f64 / s.reads as f64
        };
        s.mean_file_blocks = if self.files.is_empty() {
            0.0
        } else {
            self.files
                .iter()
                .map(|f| f.size.div_ceil(bs) as f64)
                .sum::<f64>()
                / self.files.len() as f64
        };
        let shared = file_nodes.values().filter(|nodes| nodes.len() > 1).count();
        s.shared_file_fraction = if file_nodes.is_empty() {
            0.0
        } else {
            shared as f64 / file_nodes.len() as f64
        };
        s.distinct_blocks = touched.len() as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FileMeta, ProcessTrace};
    use crate::types::{NodeId, ProcId};
    use simkit::SimDuration;

    #[test]
    fn stats_of_simple_workload() {
        let wl = Workload {
            name: "t".into(),
            block_size: 8192,
            nodes: 2,
            files: vec![
                FileMeta {
                    id: FileId(0),
                    size: 8192 * 4,
                },
                FileMeta {
                    id: FileId(1),
                    size: 8192 * 2,
                },
            ],
            processes: vec![
                ProcessTrace {
                    proc: ProcId(0),
                    node: NodeId(0),
                    ops: vec![
                        Op::Compute(SimDuration::from_secs(1)),
                        Op::Read {
                            file: FileId(0),
                            offset: 0,
                            len: 8192 * 2,
                        },
                    ],
                },
                ProcessTrace {
                    proc: ProcId(1),
                    node: NodeId(1),
                    ops: vec![
                        Op::Read {
                            file: FileId(0),
                            offset: 8192,
                            len: 8192,
                        },
                        Op::Write {
                            file: FileId(1),
                            offset: 0,
                            len: 100,
                        },
                    ],
                },
            ],
        };
        let s = wl.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 8192 * 3);
        assert_eq!(s.bytes_written, 100);
        assert!((s.mean_read_blocks - 1.5).abs() < 1e-12);
        // File 0 touched from both nodes; file 1 from one.
        assert!((s.shared_file_fraction - 0.5).abs() < 1e-12);
        // Blocks: f0 b0,b1 (proc0), f0 b1 (proc1, dup), f1 b0 => 3.
        assert_eq!(s.distinct_blocks, 3);
        assert!((s.compute_seconds - 1.0).abs() < 1e-12);
        assert!((s.mean_file_blocks - 3.0).abs() < 1e-12);
    }
}
