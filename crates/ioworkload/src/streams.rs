//! Synthetic single-file request streams, for predictor evaluation and
//! stress testing.
//!
//! [`crate::charisma`] and [`crate::sprite`] generate *machine-wide*
//! workloads; this module generates *per-file block-request streams*
//! with controlled structure — exactly what
//! [`prefetch::replay`](https://docs.rs/prefetch)-style offline
//! evaluation and property tests want. Each generator is seeded and
//! deterministic.

use crate::util::Rng64;

/// One block-granular request of a stream: `(first_block, num_blocks)`.
pub type StreamRequest = (u64, u64);

/// A structured request-stream generator.
///
/// ```
/// use ioworkload::streams::StreamKind;
///
/// let reqs = StreamKind::Strided { stride: 8, req: 2 }.generate(1 << 20, 3, 0);
/// assert_eq!(reqs, vec![(0, 2), (8, 2), (16, 2)]);
/// ```
#[derive(Clone, Debug)]
pub enum StreamKind {
    /// Contiguous sequential scan with a fixed request size.
    Sequential {
        /// Request size in blocks.
        req: u64,
    },
    /// Fixed-stride scan: requests of `req` blocks every `stride`
    /// blocks (`stride >= req` keeps them disjoint).
    Strided {
        /// Distance between request starts.
        stride: u64,
        /// Request size in blocks.
        req: u64,
    },
    /// The paper's Figure 1 pattern: alternating (+3, 3 blocks) and
    /// (+5, 2 blocks) steps starting with a 2-block request at 0.
    Figure1,
    /// A repeating cycle of (interval, size) pairs — arbitrary regular
    /// patterns.
    Cycle {
        /// The repeated (interval, size) steps.
        steps: Vec<(i64, u64)>,
    },
    /// Uniformly random offsets and sizes — structureless worst case.
    Random {
        /// Maximum request size in blocks.
        max_req: u64,
    },
    /// Mostly sequential with occasional random jumps (probability
    /// `jump_per_mille`/1000 per request) — tests miss-prediction
    /// recovery.
    NoisySequential {
        /// Request size in blocks.
        req: u64,
        /// Jump probability in 1/1000 units.
        jump_per_mille: u32,
    },
}

impl StreamKind {
    /// Generate `n` requests inside a file of `file_blocks` blocks.
    ///
    /// Streams that walk off the end of the file wrap to the beginning
    /// (re-read), like long-running applications do.
    ///
    /// # Panics
    /// Panics if `file_blocks == 0` or a configured size is zero.
    pub fn generate(&self, file_blocks: u64, n: usize, seed: u64) -> Vec<StreamRequest> {
        assert!(file_blocks > 0, "empty file");
        let mut rng = Rng64::new(seed);
        let mut out = Vec::with_capacity(n);
        match self {
            StreamKind::Sequential { req } => {
                assert!(*req > 0);
                let mut off = 0u64;
                for _ in 0..n {
                    if off + req > file_blocks {
                        off = 0;
                    }
                    out.push((off, (*req).min(file_blocks - off)));
                    off += req;
                }
            }
            StreamKind::Strided { stride, req } => {
                assert!(*req > 0 && *stride > 0);
                let mut off = 0u64;
                for _ in 0..n {
                    if off + req > file_blocks {
                        off %= (*stride).min(file_blocks);
                        if off + req > file_blocks {
                            off = 0;
                        }
                    }
                    out.push((off, (*req).min(file_blocks - off)));
                    off += stride;
                }
            }
            StreamKind::Figure1 => {
                let steps = [(3i64, 3u64), (5, 2)];
                let mut off = 0i64;
                let mut size = 2u64;
                for i in 0..n {
                    if off < 0 || off as u64 + size > file_blocks {
                        off = 0;
                        size = 2;
                    }
                    out.push((off as u64, size));
                    let (interval, next_size) = steps[i % 2];
                    off += interval;
                    size = next_size;
                }
            }
            StreamKind::Cycle { steps } => {
                assert!(!steps.is_empty(), "empty cycle");
                let mut off = 0i64;
                let mut size = steps.last().map(|&(_, s)| s).unwrap_or(1).max(1);
                for i in 0..n {
                    if off < 0 || off as u64 + size > file_blocks {
                        off = 0;
                    }
                    out.push((off as u64, size.min(file_blocks - off as u64).max(1)));
                    let (interval, next_size) = steps[i % steps.len()];
                    off += interval;
                    size = next_size.max(1);
                }
            }
            StreamKind::Random { max_req } => {
                assert!(*max_req > 0);
                for _ in 0..n {
                    let size = rng.range_u64(1, *max_req).min(file_blocks);
                    let off = rng.range_u64(0, file_blocks - size);
                    out.push((off, size));
                }
            }
            StreamKind::NoisySequential {
                req,
                jump_per_mille,
            } => {
                assert!(*req > 0);
                let mut off = 0u64;
                for _ in 0..n {
                    if rng.range_u64(0, 999) < *jump_per_mille as u64 {
                        off = rng.range_u64(0, file_blocks - 1);
                    }
                    if off + req > file_blocks {
                        off = 0;
                    }
                    out.push((off, (*req).min(file_blocks - off)));
                    off += req;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_bounds(reqs: &[StreamRequest], file_blocks: u64) -> bool {
        reqs.iter().all(|&(o, s)| s >= 1 && o + s <= file_blocks)
    }

    #[test]
    fn sequential_wraps_at_eof() {
        let reqs = StreamKind::Sequential { req: 4 }.generate(10, 6, 0);
        assert_eq!(reqs, vec![(0, 4), (4, 4), (0, 4), (4, 4), (0, 4), (4, 4)]);
    }

    #[test]
    fn strided_is_regular_and_in_bounds() {
        let reqs = StreamKind::Strided { stride: 8, req: 2 }.generate(64, 20, 0);
        assert!(in_bounds(&reqs, 64));
        // Consecutive non-wrapped requests differ by the stride.
        assert_eq!(reqs[1].0 - reqs[0].0, 8);
    }

    #[test]
    fn figure1_matches_the_paper_prefix() {
        let reqs = StreamKind::Figure1.generate(1 << 20, 5, 0);
        assert_eq!(reqs, vec![(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)]);
    }

    #[test]
    fn cycle_repeats_custom_steps() {
        let reqs = StreamKind::Cycle {
            steps: vec![(10, 1), (-5, 2)],
        }
        .generate(1 << 20, 5, 0);
        // start size = last step's size = 2
        assert_eq!(reqs[0], (0, 2));
        assert_eq!(reqs[1], (10, 1));
        assert_eq!(reqs[2], (5, 2));
        assert_eq!(reqs[3], (15, 1));
    }

    #[test]
    fn random_is_in_bounds_and_deterministic() {
        let a = StreamKind::Random { max_req: 4 }.generate(100, 50, 7);
        let b = StreamKind::Random { max_req: 4 }.generate(100, 50, 7);
        assert_eq!(a, b);
        assert!(in_bounds(&a, 100));
        let c = StreamKind::Random { max_req: 4 }.generate(100, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn noisy_sequential_jumps_sometimes() {
        let clean = StreamKind::NoisySequential {
            req: 1,
            jump_per_mille: 0,
        }
        .generate(1000, 100, 3);
        let noisy = StreamKind::NoisySequential {
            req: 1,
            jump_per_mille: 300,
        }
        .generate(1000, 100, 3);
        assert_ne!(clean, noisy);
        assert!(in_bounds(&noisy, 1000));
        // The clean stream is strictly sequential.
        for w in clean.windows(2) {
            assert!(w[1].0 == w[0].0 + 1 || w[1].0 == 0);
        }
    }
}
