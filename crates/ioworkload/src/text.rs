//! A simple line-oriented text format for workload traces.
//!
//! The format is self-describing and diff-friendly:
//!
//! ```text
//! # anything after '#' is a comment
//! workload charisma-small
//! blocksize 8192
//! nodes 128
//! file 0 33554432          # id, size in bytes
//! proc 0 5                 # id, node
//! c 250000                 # compute 250000 ns
//! r 0 0 65536              # read  file 0, offset 0, 64 KB
//! w 0 65536 8192           # write file 0, offset 64K, 8 KB
//! ```
//!
//! Operations attach to the most recently declared `proc`.

use std::fmt::Write as _;
use std::str::FromStr;

use simkit::SimDuration;

use crate::trace::{FileMeta, Op, ProcessTrace, Workload};
use crate::types::{FileId, NodeId, ProcId};

/// Parsing failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Workload {
    /// Render the workload in the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "workload {}", self.name).unwrap();
        writeln!(out, "blocksize {}", self.block_size).unwrap();
        writeln!(out, "nodes {}", self.nodes).unwrap();
        for f in &self.files {
            writeln!(out, "file {} {}", f.id.0, f.size).unwrap();
        }
        for p in &self.processes {
            writeln!(out, "proc {} {}", p.proc.0, p.node.0).unwrap();
            for op in &p.ops {
                match op {
                    Op::Compute(d) => writeln!(out, "c {}", d.as_nanos()).unwrap(),
                    Op::Read { file, offset, len } => {
                        writeln!(out, "r {} {} {}", file.0, offset, len).unwrap()
                    }
                    Op::Write { file, offset, len } => {
                        writeln!(out, "w {} {} {}", file.0, offset, len).unwrap()
                    }
                }
            }
        }
        out
    }

    /// Parse a workload from the text format and validate it.
    pub fn from_text(text: &str) -> Result<Workload, ParseError> {
        let mut name = None;
        let mut block_size = None;
        let mut nodes = None;
        let mut files = Vec::new();
        let mut processes: Vec<ProcessTrace> = Vec::new();

        fn field<T: FromStr>(
            parts: &[&str],
            idx: usize,
            what: &str,
            line: usize,
        ) -> Result<T, ParseError> {
            parts
                .get(idx)
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|_| ParseError {
                    line,
                    message: format!("invalid {what}: {:?}", parts[idx]),
                })
        }

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts[0] {
                "workload" => {
                    name = Some(parts.get(1).map(|s| s.to_string()).ok_or(ParseError {
                        line: lineno,
                        message: "missing workload name".into(),
                    })?)
                }
                "blocksize" => block_size = Some(field(&parts, 1, "block size", lineno)?),
                "nodes" => nodes = Some(field(&parts, 1, "node count", lineno)?),
                "file" => {
                    let id: u32 = field(&parts, 1, "file id", lineno)?;
                    let size: u64 = field(&parts, 2, "file size", lineno)?;
                    files.push(FileMeta {
                        id: FileId(id),
                        size,
                    });
                }
                "proc" => {
                    let id: u32 = field(&parts, 1, "proc id", lineno)?;
                    let node: u32 = field(&parts, 2, "proc node", lineno)?;
                    processes.push(ProcessTrace {
                        proc: ProcId(id),
                        node: NodeId(node),
                        ops: Vec::new(),
                    });
                }
                "c" | "r" | "w" => {
                    let cur = processes.last_mut().ok_or(ParseError {
                        line: lineno,
                        message: "operation before any 'proc' line".into(),
                    })?;
                    let op = match parts[0] {
                        "c" => Op::Compute(SimDuration::from_nanos(field(
                            &parts, 1, "duration", lineno,
                        )?)),
                        kind => {
                            let file: u32 = field(&parts, 1, "file id", lineno)?;
                            let offset = field(&parts, 2, "offset", lineno)?;
                            let len = field(&parts, 3, "length", lineno)?;
                            let file = FileId(file);
                            if kind == "r" {
                                Op::Read { file, offset, len }
                            } else {
                                Op::Write { file, offset, len }
                            }
                        }
                    };
                    cur.ops.push(op);
                }
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown directive {other:?}"),
                    })
                }
            }
        }

        let wl = Workload {
            name: name.ok_or(ParseError {
                line: 0,
                message: "missing 'workload' line".into(),
            })?,
            block_size: block_size.ok_or(ParseError {
                line: 0,
                message: "missing 'blocksize' line".into(),
            })?,
            nodes: nodes.ok_or(ParseError {
                line: 0,
                message: "missing 'nodes' line".into(),
            })?,
            files,
            processes,
        };
        wl.validate();
        Ok(wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload {
            name: "sample".into(),
            block_size: 8192,
            nodes: 4,
            files: vec![
                FileMeta {
                    id: FileId(0),
                    size: 32768,
                },
                FileMeta {
                    id: FileId(1),
                    size: 8192,
                },
            ],
            processes: vec![
                ProcessTrace {
                    proc: ProcId(0),
                    node: NodeId(0),
                    ops: vec![
                        Op::Compute(SimDuration::from_micros(5)),
                        Op::Read {
                            file: FileId(0),
                            offset: 0,
                            len: 8192,
                        },
                    ],
                },
                ProcessTrace {
                    proc: ProcId(1),
                    node: NodeId(3),
                    ops: vec![Op::Write {
                        file: FileId(1),
                        offset: 0,
                        len: 4096,
                    }],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let wl = sample();
        let text = wl.to_text();
        let back = Workload::from_text(&text).unwrap();
        assert_eq!(back.name, wl.name);
        assert_eq!(back.block_size, wl.block_size);
        assert_eq!(back.nodes, wl.nodes);
        assert_eq!(back.files.len(), wl.files.len());
        assert_eq!(back.processes.len(), wl.processes.len());
        assert_eq!(back.processes[0].ops, wl.processes[0].ops);
        assert_eq!(back.processes[1].ops, wl.processes[1].ops);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nworkload t\nblocksize 8192\nnodes 1\nfile 0 8192\nproc 0 0 # on node 0\nr 0 0 10\n";
        let wl = Workload::from_text(text).unwrap();
        assert_eq!(wl.processes[0].ops.len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let text = "workload t\nblocksize 8192\nnodes 1\nbogus 1 2\n";
        let err = Workload::from_text(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn op_before_proc_is_rejected() {
        let text = "workload t\nblocksize 8192\nnodes 1\nr 0 0 10\n";
        let err = Workload::from_text(text).unwrap_err();
        assert!(err.message.contains("before any 'proc'"));
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = Workload::from_text("nodes 1\nblocksize 1\n").unwrap_err();
        assert!(err.message.contains("workload"));
    }
}
