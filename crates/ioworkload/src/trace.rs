//! The trace model: per-process demand sequences.
//!
//! Like the DIMEMAS traces the paper uses, a trace records *demand*
//! sequences — CPU bursts and I/O operations — per process, not
//! absolute event times: "traces contain CPU, communication and I/O
//! demand sequences for every process instead of the absolute time for
//! each event" (§5.1). The simulator replays demands and computes the
//! times itself, so the same workload can be run against any machine,
//! cache or prefetching configuration.

use simkit::SimDuration;

use crate::types::{FileId, NodeId, ProcId};

/// One demand record of a process trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Compute for the given time before the next demand.
    Compute(SimDuration),
    /// Read `len` bytes at byte `offset` of `file`.
    Read {
        /// File read from.
        file: FileId,
        /// Byte offset of the first byte read.
        offset: u64,
        /// Number of bytes read (> 0).
        len: u64,
    },
    /// Write `len` bytes at byte `offset` of `file`.
    Write {
        /// File written to.
        file: FileId,
        /// Byte offset of the first byte written.
        offset: u64,
        /// Number of bytes written (> 0).
        len: u64,
    },
}

/// Static description of one file used by a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileMeta {
    /// File identifier (dense: `0..files.len()`).
    pub id: FileId,
    /// File size in bytes.
    pub size: u64,
}

/// The demand sequence of one process, pinned to a node.
#[derive(Clone, Debug)]
pub struct ProcessTrace {
    /// Process identifier (dense across the workload).
    pub proc: ProcId,
    /// Node the process runs on.
    pub node: NodeId,
    /// Demand records, replayed in order.
    pub ops: Vec<Op>,
}

/// A complete machine-wide workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name (used in reports).
    pub name: String,
    /// File-system block size in bytes (8 KB in the paper, Table 1).
    pub block_size: u64,
    /// Number of machine nodes the workload expects.
    pub nodes: u32,
    /// Files, indexed by `FileId`.
    pub files: Vec<FileMeta>,
    /// Per-process traces.
    pub processes: Vec<ProcessTrace>,
}

impl Workload {
    /// Size of `file` in blocks (rounded up).
    pub fn file_blocks(&self, file: FileId) -> u64 {
        let size = self.files[file.0 as usize].size;
        size.div_ceil(self.block_size)
    }

    /// Validate internal consistency: dense ids, in-bounds accesses,
    /// non-empty operations. Generators call this before returning and
    /// the text loader calls it after parsing.
    ///
    /// # Panics
    /// Panics with a description of the first inconsistency found.
    pub fn validate(&self) {
        assert!(self.block_size > 0, "zero block size");
        assert!(self.nodes > 0, "zero nodes");
        for (i, f) in self.files.iter().enumerate() {
            assert_eq!(f.id.0 as usize, i, "file ids must be dense");
            assert!(f.size > 0, "empty file {i}");
        }
        for (i, p) in self.processes.iter().enumerate() {
            assert_eq!(p.proc.0 as usize, i, "process ids must be dense");
            assert!(
                p.node.0 < self.nodes,
                "process {i} on out-of-range node {}",
                p.node
            );
            for op in &p.ops {
                if let Op::Read { file, offset, len } | Op::Write { file, offset, len } = op {
                    let meta = self
                        .files
                        .get(file.0 as usize)
                        .unwrap_or_else(|| panic!("process {i} touches unknown {file}"));
                    assert!(*len > 0, "zero-length access in process {i}");
                    let end = offset.checked_add(*len).unwrap_or_else(|| {
                        panic!("process {i} access offset+len overflows on {file}")
                    });
                    assert!(
                        end <= meta.size,
                        "process {i} accesses past EOF of {file}: {}+{} > {}",
                        offset,
                        len,
                        meta.size
                    );
                }
            }
        }
    }

    /// Total number of I/O operations across all processes.
    pub fn io_ops(&self) -> usize {
        self.processes
            .iter()
            .map(|p| {
                p.ops
                    .iter()
                    .filter(|o| !matches!(o, Op::Compute(_)))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_workload() -> Workload {
        Workload {
            name: "tiny".into(),
            block_size: 8192,
            nodes: 2,
            files: vec![FileMeta {
                id: FileId(0),
                size: 65536,
            }],
            processes: vec![ProcessTrace {
                proc: ProcId(0),
                node: NodeId(1),
                ops: vec![
                    Op::Compute(SimDuration::from_micros(100)),
                    Op::Read {
                        file: FileId(0),
                        offset: 0,
                        len: 16384,
                    },
                    Op::Write {
                        file: FileId(0),
                        offset: 16384,
                        len: 100,
                    },
                ],
            }],
        }
    }

    #[test]
    fn validate_accepts_consistent_workload() {
        tiny_workload().validate();
    }

    #[test]
    fn file_blocks_rounds_up() {
        let mut wl = tiny_workload();
        wl.files[0].size = 8193;
        assert_eq!(wl.file_blocks(FileId(0)), 2);
        wl.files[0].size = 8192;
        assert_eq!(wl.file_blocks(FileId(0)), 1);
    }

    #[test]
    fn io_ops_counts_only_io() {
        assert_eq!(tiny_workload().io_ops(), 2);
    }

    #[test]
    #[should_panic(expected = "past EOF")]
    fn validate_rejects_out_of_bounds_access() {
        let mut wl = tiny_workload();
        wl.processes[0].ops.push(Op::Read {
            file: FileId(0),
            offset: 65536,
            len: 1,
        });
        wl.validate();
    }

    #[test]
    #[should_panic(expected = "out-of-range node")]
    fn validate_rejects_bad_node() {
        let mut wl = tiny_workload();
        wl.processes[0].node = NodeId(7);
        wl.validate();
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn validate_rejects_sparse_file_ids() {
        let mut wl = tiny_workload();
        wl.files[0].id = FileId(5);
        wl.validate();
    }
}
