//! Identifiers shared across the simulation stack.

use std::fmt;

/// A machine node (compute node of the PM, workstation of the NOW).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// A simulated process (one trace stream).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// A file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u32);

/// One block of one file — the unit of caching, prefetching and disk
/// transfer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Block index within the file (0-based).
    pub index: u64,
}

impl BlockId {
    /// Construct a block id.
    pub fn new(file: FileId, index: u64) -> Self {
        BlockId { file, index }
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}b{}", self.file.0, self.index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_ordering_groups_by_file() {
        let a = BlockId::new(FileId(1), 9);
        let b = BlockId::new(FileId(2), 0);
        assert!(a < b);
        assert_eq!(format!("{a:?}"), "f1b9");
    }
}
