//! Shared random-draw helpers for the workload generators.

use rand::rngs::StdRng;
use rand::Rng;
use simkit::SimDuration;

/// A random duration drawn uniformly from a millisecond range
/// (degenerate ranges return the lower bound).
pub(crate) fn ms(rng: &mut StdRng, range: (f64, f64)) -> SimDuration {
    let v = if range.0 >= range.1 {
        range.0
    } else {
        rng.gen_range(range.0..range.1)
    };
    SimDuration::from_millis_f64(v)
}

/// Apply ±10% per-process jitter to a shared schedule entry.
pub(crate) fn jitter(rng: &mut StdRng, d: SimDuration) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * rng.gen_range(0.9..1.1))
}

/// Log-uniform draw over an inclusive range: small values dominate, as
/// in real file-size distributions.
pub(crate) fn log_uniform(rng: &mut StdRng, range: (u64, u64)) -> u64 {
    let (lo, hi) = range;
    assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let x = rng.gen_range(llo..lhi).exp();
    (x as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ms_handles_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ms(&mut rng, (5.0, 5.0)).as_millis(), 5);
        let v = ms(&mut rng, (1.0, 2.0));
        assert!(v.as_millis_f64() >= 1.0 && v.as_millis_f64() < 2.0);
    }

    #[test]
    fn jitter_stays_within_ten_percent() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = jitter(&mut rng, SimDuration::from_millis(100));
            assert!(d.as_millis_f64() >= 90.0 && d.as_millis_f64() <= 110.0);
        }
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, (1, 64));
            assert!((1..=64).contains(&v));
        }
    }
}
