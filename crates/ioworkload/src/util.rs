//! The in-repo seeded PRNG and shared random-draw helpers for the
//! workload generators.
//!
//! The repo must build and test on machines with no network access, so
//! instead of depending on an external `rand` crate the generators draw
//! from [`Rng64`], a xoshiro256** generator seeded via SplitMix64
//! (Blackman & Vigna, <https://prng.di.unimi.it/>). The stream for a
//! given seed is part of the repo's golden values: changing it changes
//! every generated workload, so it is pinned by unit tests below.

use simkit::SimDuration;

/// SplitMix64 step — used to expand a 64-bit seed into the xoshiro
/// state, and good enough as a standalone mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG: xoshiro256** seeded with
/// SplitMix64. Same seed ⇒ same stream, on every platform, forever.
///
/// ```
/// use ioworkload::util::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Build a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open range `[lo, hi)`; degenerate or
    /// inverted ranges return `lo`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            lo
        } else {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Uniform draw from the inclusive integer range `[lo, hi]`.
    /// Inverted ranges return `lo`. Uses Lemire's multiply-shift
    /// reduction (bias < 2⁻⁶⁴·span — irrelevant for simulation draws).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        let span = hi - lo + 1;
        if span == 0 {
            // [0, u64::MAX]: the full range.
            return self.next_u64();
        }
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform draw from the inclusive integer range `[lo, hi]`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A random duration drawn uniformly from a millisecond range
/// (degenerate ranges return the lower bound).
pub(crate) fn ms(rng: &mut Rng64, range: (f64, f64)) -> SimDuration {
    SimDuration::from_millis_f64(rng.range_f64(range.0, range.1))
}

/// Apply ±10% per-process jitter to a shared schedule entry.
pub(crate) fn jitter(rng: &mut Rng64, d: SimDuration) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * rng.range_f64(0.9, 1.1))
}

/// Log-uniform draw over an inclusive range: small values dominate, as
/// in real file-size distributions.
pub(crate) fn log_uniform(rng: &mut Rng64, range: (u64, u64)) -> u64 {
    let (lo, hi) = range;
    assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let x = rng.range_f64(llo, lhi).exp();
    (x as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PRNG stream is a golden value: generated workloads (and the
    /// golden trace fixtures downstream) depend on it bit-for-bit.
    #[test]
    fn stream_is_pinned_per_seed() {
        let mut r = Rng64::new(0);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64()],
            [
                11091344671253066420,
                13793997310169335082,
                1900383378846508768
            ]
        );
        let mut r = Rng64::new(42);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64()],
            [
                1546998764402558742,
                6990951692964543102,
                12544586762248559009
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let w = r.range_u32(5, 5);
            assert_eq!(w, 5);
            let x = r.range_f64(2.0, 4.0);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
        assert_eq!(r.range_u64(9, 3), 9, "inverted range returns lo");
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = Rng64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn ms_handles_degenerate_range() {
        let mut rng = Rng64::new(0);
        assert_eq!(ms(&mut rng, (5.0, 5.0)).as_millis(), 5);
        let v = ms(&mut rng, (1.0, 2.0));
        assert!(v.as_millis_f64() >= 1.0 && v.as_millis_f64() < 2.0);
    }

    #[test]
    fn jitter_stays_within_ten_percent() {
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            let d = jitter(&mut rng, SimDuration::from_millis(100));
            assert!(d.as_millis_f64() >= 90.0 && d.as_millis_f64() <= 110.0);
        }
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = Rng64::new(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, (1, 64));
            assert!((1..=64).contains(&v));
        }
    }
}
