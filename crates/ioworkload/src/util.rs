//! The in-repo seeded PRNG and shared random-draw helpers for the
//! workload generators.
//!
//! The repo must build and test on machines with no network access, so
//! instead of depending on an external `rand` crate the generators draw
//! from [`Rng64`], a xoshiro256** generator seeded via SplitMix64
//! (Blackman & Vigna, <https://prng.di.unimi.it/>). The stream for a
//! given seed is part of the repo's golden values: changing it changes
//! every generated workload, so it is pinned by unit tests below.

use simkit::SimDuration;

/// SplitMix64 step — used to expand a 64-bit seed into the xoshiro
/// state, and good enough as a standalone mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG: xoshiro256** seeded with
/// SplitMix64. Same seed ⇒ same stream, on every platform, forever.
///
/// ```
/// use ioworkload::util::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Build a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open range `[lo, hi)`; degenerate or
    /// inverted ranges return `lo`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            lo
        } else {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Uniform draw from the inclusive integer range `[lo, hi]`.
    /// Inverted ranges return `lo`. Uses Lemire's multiply-shift
    /// reduction (bias < 2⁻⁶⁴·span — irrelevant for simulation draws).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        let span = hi - lo + 1;
        if span == 0 {
            // [0, u64::MAX]: the full range.
            return self.next_u64();
        }
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform draw from the inclusive integer range `[lo, hi]`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A random duration drawn uniformly from a millisecond range
/// (degenerate ranges return the lower bound).
pub(crate) fn ms(rng: &mut Rng64, range: (f64, f64)) -> SimDuration {
    SimDuration::from_millis_f64(rng.range_f64(range.0, range.1))
}

/// Apply ±10% per-process jitter to a shared schedule entry.
pub(crate) fn jitter(rng: &mut Rng64, d: SimDuration) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * rng.range_f64(0.9, 1.1))
}

/// A Zipf(s) sampler over `{0, …, n-1}`: rank `i` is drawn with
/// probability proportional to `1 / (i + 1)^s`.
///
/// Built once (O(n) table), sampled by inverse-CDF binary search
/// (O(log n) per draw) over [`Rng64`], so a `(n, s, seed)` triple
/// always yields the same rank stream — the sampler is part of the
/// repo's golden values, like the PRNG itself. `s = 0` degenerates to
/// the uniform distribution; larger `s` concentrates mass on the low
/// ranks (`s ≈ 0.6–1.0` fits observed web-object and database-key
/// popularity).
///
/// ```
/// use ioworkload::util::{Rng64, Zipf};
///
/// let zipf = Zipf::new(100, 0.9);
/// let mut rng = Rng64::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with skew `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty Zipf support");
        assert!(s >= 0.0 && s.is_finite(), "bad Zipf skew {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `[0, n)`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.next_f64();
        // First rank whose cumulative mass exceeds the draw; the final
        // `min` guards the u ≈ 1.0 edge against rounding in the CDF.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// In-place Fisher–Yates shuffle driven by [`Rng64`] — the
/// deterministic permutation the epoch-replay workload generators (and
/// future cluster-scale scenarios) share.
pub fn shuffle<T>(rng: &mut Rng64, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.range_u64(0, i as u64) as usize;
        xs.swap(i, j);
    }
}

/// Log-uniform draw over an inclusive range: small values dominate, as
/// in real file-size distributions.
pub fn log_uniform(rng: &mut Rng64, range: (u64, u64)) -> u64 {
    let (lo, hi) = range;
    assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let x = rng.range_f64(llo, lhi).exp();
    (x as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PRNG stream is a golden value: generated workloads (and the
    /// golden trace fixtures downstream) depend on it bit-for-bit.
    #[test]
    fn stream_is_pinned_per_seed() {
        let mut r = Rng64::new(0);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64()],
            [
                11091344671253066420,
                13793997310169335082,
                1900383378846508768
            ]
        );
        let mut r = Rng64::new(42);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64()],
            [
                1546998764402558742,
                6990951692964543102,
                12544586762248559009
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let w = r.range_u32(5, 5);
            assert_eq!(w, 5);
            let x = r.range_f64(2.0, 4.0);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
        assert_eq!(r.range_u64(9, 3), 9, "inverted range returns lo");
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = Rng64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn ms_handles_degenerate_range() {
        let mut rng = Rng64::new(0);
        assert_eq!(ms(&mut rng, (5.0, 5.0)).as_millis(), 5);
        let v = ms(&mut rng, (1.0, 2.0));
        assert!(v.as_millis_f64() >= 1.0 && v.as_millis_f64() < 2.0);
    }

    #[test]
    fn jitter_stays_within_ten_percent() {
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            let d = jitter(&mut rng, SimDuration::from_millis(100));
            assert!(d.as_millis_f64() >= 90.0 && d.as_millis_f64() <= 110.0);
        }
    }

    /// Like the PRNG stream, the Zipf rank stream is a golden value:
    /// the zoo workload generators depend on it draw-for-draw.
    #[test]
    fn zipf_stream_is_pinned_per_seed() {
        let zipf = Zipf::new(100, 0.9);
        let mut r = Rng64::new(0);
        let draws: Vec<usize> = (0..8).map(|_| zipf.sample(&mut r)).collect();
        assert_eq!(draws, vec![16, 33, 0, 6, 31, 99, 6, 11], "seed 0");
        let mut r = Rng64::new(42);
        let draws: Vec<usize> = (0..8).map(|_| zipf.sample(&mut r)).collect();
        assert_eq!(draws, vec![0, 5, 24, 73, 96, 37, 29, 53], "seed 42");
    }

    #[test]
    fn zipf_same_seed_same_stream() {
        let zipf = Zipf::new(1000, 0.8);
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        for _ in 0..200 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn zipf_bounds_and_skew() {
        let mut rng = Rng64::new(3);
        let zipf = Zipf::new(50, 1.0);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 50);
            counts[rank] += 1;
        }
        // Rank 0 carries ~1/H_50 ≈ 22% of the mass; rank 49 ~0.45%.
        assert!(counts[0] > counts[1] && counts[1] > counts[4]);
        assert!(counts[0] > 3_500, "head too light: {}", counts[0]);
        assert!(counts[49] < 400, "tail too heavy: {}", counts[49]);
        // s = 0 is uniform: the head carries no extra mass.
        let uniform = Zipf::new(50, 0.0);
        let mut head = 0usize;
        for _ in 0..20_000 {
            if uniform.sample(&mut rng) == 0 {
                head += 1;
            }
        }
        assert!((200..600).contains(&head), "uniform head {head}");
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = Rng64::new(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn shuffle_is_a_pinned_permutation() {
        let mut xs: Vec<u32> = (0..10).collect();
        let mut rng = Rng64::new(0);
        shuffle(&mut rng, &mut xs);
        // Golden value: pinned like the PRNG stream itself.
        assert_eq!(xs, vec![7, 8, 3, 1, 5, 4, 2, 0, 9, 6]);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = Rng64::new(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, (1, 64));
            assert!((1..=64).contains(&v));
        }
    }
}
