//! Property-based tests for the workload generators and the trace
//! format.

use ioworkload::charisma::CharismaParams;
use ioworkload::sprite::SpriteParams;
use ioworkload::{Op, Workload};
use proptest::prelude::*;

fn arb_charisma() -> impl Strategy<Value = CharismaParams> {
    (
        1u32..6,    // nodes ..
        1usize..4,  // apps
        1u32..5,    // procs per app
        16u64..128, // min file blocks
        1u64..6,    // record max
        1u32..3,    // passes max
    )
        .prop_map(|(nodes, apps, procs, fmin, rmax, pmax)| {
            let mut p = CharismaParams::small();
            p.nodes = nodes;
            p.apps = apps;
            p.procs_per_app = procs;
            p.file_blocks = (fmin, fmin * 2);
            p.record_blocks = (1, rmax);
            p.passes = (1, pmax);
            p
        })
}

fn arb_sprite() -> impl Strategy<Value = SpriteParams> {
    (
        1u32..6,  // nodes
        1u32..8,  // users
        1u32..8,  // files per user
        1u64..40, // max file blocks
        1u32..20, // opens
        0u32..3,  // shared files
    )
        .prop_map(|(nodes, users, files, fmax, opens, shared)| {
            let mut p = SpriteParams::small();
            p.nodes = nodes;
            p.users = users;
            p.files_per_user = files;
            p.file_blocks = (1, fmax);
            p.opens_per_user = opens;
            p.shared_files = shared;
            if shared == 0 {
                p.shared_open_prob = 0.0;
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any parameterisation produces a valid workload (validate()
    /// panics internally on inconsistency) that survives a text
    /// round-trip bit-exactly.
    #[test]
    fn charisma_generates_valid_workloads(params in arb_charisma(), seed in 0u64..500) {
        let wl = params.generate(seed);
        let text = wl.to_text();
        let back = Workload::from_text(&text).unwrap();
        prop_assert_eq!(back.to_text(), text);
    }

    #[test]
    fn sprite_generates_valid_workloads(params in arb_sprite(), seed in 0u64..500) {
        let wl = params.generate(seed);
        let text = wl.to_text();
        let back = Workload::from_text(&text).unwrap();
        prop_assert_eq!(back.to_text(), text);
    }

    /// Reads in a CHARISMA interleaved/segmented/broadcast pass never
    /// overlap *within one process* in a single pass more blocks than
    /// the file has, and every access respects the accessed fraction
    /// upper bound plus one record of slack.
    #[test]
    fn charisma_accesses_respect_fraction(seed in 0u64..200) {
        let mut params = CharismaParams::small();
        params.accessed_fraction = (0.5, 0.7);
        let wl = params.generate(seed);
        for proc in &wl.processes {
            for op in &proc.ops {
                if let Op::Read { file, offset, len } | Op::Write { file, offset, len } = op {
                    let fsize = wl.files[file.0 as usize].size;
                    let slack = 16 * wl.block_size;
                    prop_assert!(
                        offset + len <= (fsize as f64 * 0.7) as u64 + slack,
                        "access past accessed fraction: {}..{} of {}",
                        offset, offset + len, fsize
                    );
                }
            }
        }
    }

    /// Workload statistics are internally consistent for any seed.
    #[test]
    fn stats_are_consistent(seed in 0u64..200) {
        let wl = SpriteParams::small().generate(seed);
        let s = wl.stats();
        prop_assert_eq!(s.files, wl.files.len());
        prop_assert!(s.bytes_read >= s.reads as u64); // every read >= 1 byte
        let min_mean = if s.reads > 0 { 1.0 } else { 0.0 };
        prop_assert!(s.mean_read_blocks >= min_mean);
        prop_assert!((0.0..=1.0).contains(&s.shared_file_fraction));
        let total_io: usize = s.reads + s.writes;
        prop_assert_eq!(total_io, wl.io_ops());
    }

    /// The text parser never panics on mangled input (errors instead).
    #[test]
    fn parser_rejects_garbage_gracefully(
        mut text in "[a-z0-9 \\n#]{0,200}",
    ) {
        text.insert_str(0, "workload t\nblocksize 8192\nnodes 1\n");
        // Must not panic; any Result is fine unless it parses, in which
        // case validate() already ran.
        let _ = Workload::from_text(&text);
    }
}
