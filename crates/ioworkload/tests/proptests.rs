//! Property tests for the workload generators and the trace format,
//! driven by the in-repo seeded PRNG (no external dependencies).

use ioworkload::charisma::CharismaParams;
use ioworkload::sprite::SpriteParams;
use ioworkload::util::Rng64;
use ioworkload::{Op, Workload};

fn random_charisma(rng: &mut Rng64) -> CharismaParams {
    let mut p = CharismaParams::small();
    p.nodes = rng.range_u32(1, 5);
    p.apps = rng.range_u32(1, 3) as usize;
    p.procs_per_app = rng.range_u32(1, 4);
    let fmin = rng.range_u64(16, 127);
    p.file_blocks = (fmin, fmin * 2);
    p.record_blocks = (1, rng.range_u64(1, 5));
    p.passes = (1, rng.range_u32(1, 2));
    p
}

fn random_sprite(rng: &mut Rng64) -> SpriteParams {
    let mut p = SpriteParams::small();
    p.nodes = rng.range_u32(1, 5);
    p.users = rng.range_u32(1, 7);
    p.files_per_user = rng.range_u32(1, 7);
    p.file_blocks = (1, rng.range_u64(1, 39));
    p.opens_per_user = rng.range_u32(1, 19);
    p.shared_files = rng.range_u32(0, 2);
    if p.shared_files == 0 {
        p.shared_open_prob = 0.0;
    }
    p
}

/// Any parameterisation produces a valid workload (validate() panics
/// internally on inconsistency) that survives a text round-trip
/// bit-exactly.
#[test]
fn charisma_generates_valid_workloads() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(case);
        let params = random_charisma(&mut rng);
        let seed = rng.range_u64(0, 499);
        let wl = params.generate(seed);
        let text = wl.to_text();
        let back = Workload::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text, "case {case}");
    }
}

#[test]
fn sprite_generates_valid_workloads() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(case ^ 0x5B41);
        let params = random_sprite(&mut rng);
        let seed = rng.range_u64(0, 499);
        let wl = params.generate(seed);
        let text = wl.to_text();
        let back = Workload::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text, "case {case}");
    }
}

/// Every access respects the accessed-fraction upper bound plus one
/// record of slack.
#[test]
fn charisma_accesses_respect_fraction() {
    for seed in 0..48u64 {
        let mut params = CharismaParams::small();
        params.accessed_fraction = (0.5, 0.7);
        let wl = params.generate(seed);
        for proc in &wl.processes {
            for op in &proc.ops {
                if let Op::Read { file, offset, len } | Op::Write { file, offset, len } = op {
                    let fsize = wl.files[file.0 as usize].size;
                    let slack = 16 * wl.block_size;
                    assert!(
                        offset + len <= (fsize as f64 * 0.7) as u64 + slack,
                        "access past accessed fraction: {}..{} of {} (seed {seed})",
                        offset,
                        offset + len,
                        fsize
                    );
                }
            }
        }
    }
}

/// Workload statistics are internally consistent for any seed.
#[test]
fn stats_are_consistent() {
    for seed in 0..48u64 {
        let wl = SpriteParams::small().generate(seed);
        let s = wl.stats();
        assert_eq!(s.files, wl.files.len(), "seed {seed}");
        assert!(s.bytes_read >= s.reads as u64, "seed {seed}");
        let min_mean = if s.reads > 0 { 1.0 } else { 0.0 };
        assert!(s.mean_read_blocks >= min_mean, "seed {seed}");
        assert!((0.0..=1.0).contains(&s.shared_file_fraction), "seed {seed}");
        let total_io: usize = s.reads + s.writes;
        assert_eq!(total_io, wl.io_ops(), "seed {seed}");
    }
}

/// The text parser never panics on mangled input (errors instead).
#[test]
fn parser_rejects_garbage_gracefully() {
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789 \n#".chars().collect();
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x6A4B);
        let len = rng.range_u64(0, 200) as usize;
        let mut text = String::from("workload t\nblocksize 8192\nnodes 1\n");
        for _ in 0..len {
            text.push(alphabet[rng.range_u64(0, alphabet.len() as u64 - 1) as usize]);
        }
        // Must not panic; any Result is fine unless it parses, in which
        // case validate() already ran.
        let _ = Workload::from_text(&text);
    }
}
