//! Chrome trace-event JSON exporter.
//!
//! Produces the classic `chrome://tracing` / Perfetto "JSON object
//! format": a `traceEvents` array of `B`/`E` span pairs (station
//! service), `i` instants (cache activity, prefetch decisions,
//! write-backs), and `C` counters (queue depths). Tracks:
//!
//! * one thread track per disk/network station (`disk 0`, `net 1`...);
//! * one thread track per node (`node 0`...) carrying its cache and
//!   request-completion instants;
//! * a `prefetch` track (walk lifecycle, miss-predictions) and a
//!   `writeback` track;
//! * counter tracks for per-station queue depth and the central event
//!   list.
//!
//! The exporter is a single forward pass that emits thread-name
//! metadata at each track's first appearance, so identical event
//! streams export to identical bytes — the golden-file test in the
//! root crate depends on that.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::event::{Event, Nanos, StationId, StationKind, WalkStopReason};

const PID: u32 = 1;
/// Track ids. Stations and nodes get disjoint ranges so a trace can
/// hold (say) disk 0 and node 0 as separate tracks.
const TID_PREFETCH: u32 = 3;
const TID_WRITEBACK: u32 = 4;
const TID_FAULTS: u32 = 5;
const TID_DISK_BASE: u32 = 10;
const TID_NET_BASE: u32 = 1000;
const TID_NODE_BASE: u32 = 5000;

fn station_tid(s: StationId) -> u32 {
    match s.kind {
        StationKind::Disk => TID_DISK_BASE + s.index,
        StationKind::Net => TID_NET_BASE + s.index,
    }
}

fn station_name(s: StationId) -> String {
    match s.kind {
        StationKind::Disk => format!("disk {}", s.index),
        StationKind::Net => format!("net {}", s.index),
    }
}

/// Priority-class display names (simkit's disk priority convention).
fn class_name(class: u8) -> &'static str {
    match class {
        0 => "demand",
        1 => "writeback",
        2 => "prefetch",
        _ => "other",
    }
}

fn stop_reason(r: WalkStopReason) -> &'static str {
    match r {
        WalkStopReason::Exhausted => "exhausted",
        WalkStopReason::Budget => "budget",
        WalkStopReason::CachedRun => "cached-run",
    }
}

/// Format simulated nanoseconds as the microsecond timestamps chrome
/// tracing expects, with fixed three-decimal precision (byte-stable).
fn ts(t: Nanos) -> String {
    format!("{}.{:03}", t / 1_000, t % 1_000)
}

struct Writer {
    out: String,
    named: HashSet<u32>,
}

impl Writer {
    fn new() -> Self {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"args\":{{\"name\":\"lapsim\"}}}}"
        );
        Writer {
            out,
            named: HashSet::new(),
        }
    }

    /// Emit the thread-name metadata record the first time a track is
    /// used.
    fn ensure_track(&mut self, tid: u32, name: &str) {
        if self.named.insert(tid) {
            let _ = write!(
                self.out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
    }

    fn span(&mut self, phase: char, t: Nanos, tid: u32, name: &str, args: &str) {
        let _ = write!(
            self.out,
            ",\n{{\"name\":\"{name}\",\"ph\":\"{phase}\",\"pid\":{PID},\"tid\":{tid},\"ts\":{}{args}}}",
            ts(t)
        );
    }

    fn instant(&mut self, t: Nanos, tid: u32, name: &str, args: &str) {
        let _ = write!(
            self.out,
            ",\n{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{tid},\"ts\":{}{args}}}",
            ts(t)
        );
    }

    fn counter(&mut self, t: Nanos, name: &str, key: &str, value: u32) {
        let _ = write!(
            self.out,
            ",\n{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"ts\":{},\"args\":{{\"{key}\":{value}}}}}",
            ts(t)
        );
    }

    fn node_track(&mut self, node: u32) -> u32 {
        let tid = TID_NODE_BASE + node;
        self.ensure_track(tid, &format!("node {node}"));
        tid
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Export an event stream (oldest first) as Chrome trace-event JSON.
///
/// ```
/// use lapobs::{chrome, Event};
///
/// let events = vec![(1_000u64, Event::CacheMiss { node: 0, rid: 0 })];
/// let json = chrome::export(events.iter());
/// assert!(json.contains("\"traceEvents\""));
/// ```
pub fn export<'a>(events: impl IntoIterator<Item = &'a (Nanos, Event)>) -> String {
    let mut w = Writer::new();
    for &(t, ev) in events {
        match ev {
            Event::QueuePush { station, depth, .. } | Event::QueuePop { station, depth, .. } => {
                let name = format!("{} queue", station_name(station));
                w.counter(t, &name, "len", depth);
            }
            Event::ServiceBegin { station, class, .. } => {
                let tid = station_tid(station);
                w.ensure_track(tid, &station_name(station));
                let args = format!(",\"args\":{{\"class\":{class}}}");
                w.span('B', t, tid, class_name(class), &args);
            }
            Event::ServiceEnd { station, class, .. } => {
                let tid = station_tid(station);
                w.ensure_track(tid, &station_name(station));
                w.span('E', t, tid, class_name(class), "");
            }
            Event::Cancelled { station, count } => {
                let tid = station_tid(station);
                w.ensure_track(tid, &station_name(station));
                let args = format!(",\"args\":{{\"count\":{count}}}");
                w.instant(t, tid, "cancelled", &args);
            }
            Event::SimQueueDepth { depth } => {
                w.counter(t, "event-loop", "pending", depth);
            }
            Event::DiskService {
                station,
                seek_cylinders,
                rot_wait_ns,
                ..
            } => {
                let tid = station_tid(station);
                w.ensure_track(tid, &station_name(station));
                let args = format!(
                    ",\"args\":{{\"seek_cyls\":{seek_cylinders},\"rot_wait_ns\":{rot_wait_ns}}}"
                );
                w.instant(t, tid, "mech", &args);
            }
            Event::QueueReorder {
                station,
                class,
                picked,
                ..
            } => {
                let tid = station_tid(station);
                w.ensure_track(tid, &station_name(station));
                let args = format!(
                    ",\"args\":{{\"class\":\"{}\",\"picked\":{picked}}}",
                    class_name(class)
                );
                w.instant(t, tid, "reorder", &args);
            }
            Event::CacheHitLocal { node, .. } => {
                let tid = w.node_track(node);
                w.instant(t, tid, "hit local", "");
            }
            Event::CacheHitRemote { node, holder, .. } => {
                let tid = w.node_track(node);
                let args = format!(",\"args\":{{\"holder\":{holder}}}");
                w.instant(t, tid, "hit remote", &args);
            }
            Event::CacheMiss { node, .. } => {
                let tid = w.node_track(node);
                w.instant(t, tid, "miss", "");
            }
            Event::CacheInsert { node, prefetch } => {
                let tid = w.node_track(node);
                let args = format!(",\"args\":{{\"prefetch\":{prefetch}}}");
                w.instant(t, tid, "insert", &args);
            }
            Event::CacheEvict {
                node,
                dirty,
                wasted_prefetch,
            } => {
                let tid = w.node_track(node);
                let args = format!(
                    ",\"args\":{{\"dirty\":{dirty},\"wasted_prefetch\":{wasted_prefetch}}}"
                );
                w.instant(t, tid, "evict", &args);
            }
            Event::CacheForward { count } => {
                w.ensure_track(TID_WRITEBACK, "writeback");
                let args = format!(",\"args\":{{\"count\":{count}}}");
                w.instant(t, TID_WRITEBACK, "forward", &args);
            }
            Event::CacheForwardDrop { count } => {
                w.ensure_track(TID_WRITEBACK, "writeback");
                let args = format!(",\"args\":{{\"count\":{count}}}");
                w.instant(t, TID_WRITEBACK, "forward drop", &args);
            }
            Event::CacheInvalidate { count } => {
                w.ensure_track(TID_WRITEBACK, "writeback");
                let args = format!(",\"args\":{{\"count\":{count}}}");
                w.instant(t, TID_WRITEBACK, "invalidate", &args);
            }
            Event::WalkStart { file, block, .. } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_PREFETCH, "walk start", &args);
            }
            Event::WalkRestart { file, block, .. } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_PREFETCH, "walk restart", &args);
            }
            Event::WalkStop { file, reason } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(
                    ",\"args\":{{\"file\":{file},\"reason\":\"{}\"}}",
                    stop_reason(reason)
                );
                w.instant(t, TID_PREFETCH, "walk stop", &args);
            }
            Event::Mispredict { file, block, .. } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_PREFETCH, "mispredict", &args);
            }
            Event::PrefetchIssue { file, block, .. } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_PREFETCH, "issue", &args);
            }
            Event::ExtentIssue {
                file,
                first_block,
                blocks,
                ..
            } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(
                    ",\"args\":{{\"file\":{file},\"first_block\":{first_block},\"blocks\":{blocks}}}"
                );
                w.instant(t, TID_PREFETCH, "extent issue", &args);
            }
            Event::PrefetchAbsorbed { file, block, .. } => {
                w.ensure_track(TID_PREFETCH, "prefetch");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_PREFETCH, "absorbed", &args);
            }
            Event::WriteBack { file, block } => {
                w.ensure_track(TID_WRITEBACK, "writeback");
                let args = format!(",\"args\":{{\"file\":{file},\"block\":{block}}}");
                w.instant(t, TID_WRITEBACK, "write-back", &args);
            }
            Event::SweepStart { dirty } => {
                w.ensure_track(TID_WRITEBACK, "writeback");
                let args = format!(",\"args\":{{\"dirty\":{dirty}}}");
                w.instant(t, TID_WRITEBACK, "sweep", &args);
            }
            Event::FaultInjected { disk, retry_us, .. } => {
                let sid = StationId::disk(disk);
                let tid = station_tid(sid);
                w.ensure_track(tid, &station_name(sid));
                let args = format!(",\"args\":{{\"retry_us\":{retry_us}}}");
                w.instant(t, tid, "fault", &args);
            }
            Event::Failover { disk, .. } => {
                let sid = StationId::disk(disk);
                let tid = station_tid(sid);
                w.ensure_track(tid, &station_name(sid));
                w.instant(t, tid, "failover", "");
            }
            Event::DiskOutage { disk, up } => {
                let sid = StationId::disk(disk);
                let tid = station_tid(sid);
                w.ensure_track(tid, &station_name(sid));
                w.instant(t, tid, if up { "outage end" } else { "outage start" }, "");
            }
            Event::DegradedEnter { node } => {
                let tid = w.node_track(node);
                w.instant(t, tid, "degraded enter", "");
            }
            Event::DegradedExit { node } => {
                let tid = w.node_track(node);
                w.instant(t, tid, "degraded exit", "");
            }
            Event::NetFault { lost, delayed, .. } => {
                w.ensure_track(TID_FAULTS, "faults");
                let args = format!(",\"args\":{{\"lost\":{lost},\"delayed\":{delayed}}}");
                w.instant(t, TID_FAULTS, "net fault", &args);
            }
            Event::ReadDone {
                proc,
                node,
                latency,
                ..
            } => {
                let tid = w.node_track(node);
                let args = format!(
                    ",\"args\":{{\"proc\":{proc},\"latency_us\":{}}}",
                    ts(latency)
                );
                w.instant(t, tid, "read done", &args);
            }
            Event::WriteDone {
                proc,
                node,
                latency,
            } => {
                let tid = w.node_track(node);
                let args = format!(
                    ",\"args\":{{\"proc\":{proc},\"latency_us\":{}}}",
                    ts(latency)
                );
                w.instant(t, tid, "write done", &args);
            }
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_RID;

    fn disk(i: u32) -> StationId {
        StationId {
            kind: StationKind::Disk,
            index: i,
        }
    }

    /// A dependency-free structural JSON check: balanced braces and
    /// brackets outside strings, and no trailing commas before
    /// closers. Good enough to catch exporter syntax regressions.
    fn assert_valid_json_shape(s: &str) {
        let mut depth_obj = 0i32;
        let mut depth_arr = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' => depth_obj += 1,
                    '}' => {
                        assert_ne!(prev, ',', "trailing comma before }}");
                        depth_obj -= 1;
                    }
                    '[' => depth_arr += 1,
                    ']' => {
                        assert_ne!(prev, ',', "trailing comma before ]");
                        depth_arr -= 1;
                    }
                    _ => {}
                }
                assert!(depth_obj >= 0 && depth_arr >= 0);
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth_obj, 0, "unbalanced objects");
        assert_eq!(depth_arr, 0, "unbalanced arrays");
    }

    #[test]
    fn exports_spans_instants_and_counters() {
        let events = [
            (
                1_000u64,
                Event::QueuePush {
                    station: disk(0),
                    class: 2,
                    depth: 1,
                    rid: NO_RID,
                },
            ),
            (
                2_000,
                Event::ServiceBegin {
                    station: disk(0),
                    class: 0,
                    rid: 0,
                },
            ),
            (
                3_500,
                Event::Mispredict {
                    file: 4,
                    block: 17,
                    rid: 0,
                },
            ),
            (
                9_000,
                Event::ServiceEnd {
                    station: disk(0),
                    class: 0,
                    rid: 0,
                },
            ),
            (9_000, Event::SimQueueDepth { depth: 3 }),
        ];
        let json = export(events.iter());
        assert_valid_json_shape(&json);
        assert!(json.contains("\"name\":\"disk 0\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"mispredict\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":2.000"), "µs timestamps: {json}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = export(std::iter::empty());
        assert_valid_json_shape(&json);
        assert!(json.contains("process_name"));
    }

    #[test]
    fn export_is_deterministic() {
        let events = [
            (5u64, Event::CacheMiss { node: 1, rid: 0 }),
            (
                6,
                Event::CacheHitRemote {
                    node: 0,
                    holder: 1,
                    rid: 1,
                },
            ),
            (
                7,
                Event::WalkStop {
                    file: 0,
                    reason: WalkStopReason::Budget,
                },
            ),
        ];
        assert_eq!(export(events.iter()), export(events.iter()));
    }

    #[test]
    fn thread_metadata_appears_once_per_track() {
        let events = [
            (1u64, Event::CacheMiss { node: 2, rid: 0 }),
            (2, Event::CacheMiss { node: 2, rid: 1 }),
            (3, Event::CacheHitLocal { node: 2, rid: 2 }),
        ];
        let json = export(events.iter());
        assert_eq!(json.matches("\"name\":\"node 2\"").count(), 1);
    }
}
