//! The typed simulation event model.
//!
//! Events are small `Copy` values with plain-integer ids so they can be
//! emitted from any crate in the workspace without pulling in that
//! crate's types. Timestamps travel separately (see
//! [`Recorder::record`](crate::Recorder::record)) as simulated
//! nanoseconds.

/// A simulated timestamp in nanoseconds since the start of the run.
pub type Nanos = u64;

/// Sentinel request id for events that cannot be attributed to one
/// demand read (write-backs, sweeps, background prefetch refills).
///
/// Real ids are allocated densely from zero by the `lap-core` event
/// loop — one per demand read, including pure cache hits — and threaded
/// through every layer so a trace can be grouped into causal spans.
pub const NO_RID: u32 = u32::MAX;

/// What kind of service station an event refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StationKind {
    /// A disk (one per storage node).
    Disk,
    /// A network link / NIC station.
    Net,
}

/// Identifies one service station (e.g. disk 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StationId {
    /// The station family.
    pub kind: StationKind,
    /// Index within the family (disk number, link number).
    pub index: u32,
}

impl StationId {
    /// The id of disk `index`.
    pub const fn disk(index: u32) -> Self {
        StationId {
            kind: StationKind::Disk,
            index,
        }
    }

    /// The id of network link `index`.
    pub const fn net(index: u32) -> Self {
        StationId {
            kind: StationKind::Net,
            index,
        }
    }
}

/// Why a prefetch walk stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalkStopReason {
    /// The predictor ran out of predictions (end of file / no edge).
    Exhausted,
    /// The per-demand walk budget was used up.
    Budget,
    /// A long run of already-cached blocks ended the walk early.
    CachedRun,
}

/// One simulation event. Every variant is flat `Copy` data: recording
/// an event never allocates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// A job joined a station queue (the server was busy). `depth` is
    /// the queue length after the push.
    QueuePush {
        /// Station whose queue grew.
        station: StationId,
        /// Priority class of the queued job (0 = demand, 1 =
        /// write-back, 2 = prefetch).
        class: u8,
        /// Queue length after the push.
        depth: u32,
        /// Demand read the job serves ([`NO_RID`] when none).
        rid: u32,
    },
    /// A queued job left the queue to start service.
    QueuePop {
        /// Station whose queue shrank.
        station: StationId,
        /// Priority class of the dequeued job.
        class: u8,
        /// Queue length after the pop.
        depth: u32,
        /// Demand read the job serves ([`NO_RID`] when none).
        rid: u32,
    },
    /// A station began serving a job (span opens).
    ServiceBegin {
        /// The serving station.
        station: StationId,
        /// Priority class of the job being served.
        class: u8,
        /// Demand read the job serves ([`NO_RID`] when none).
        rid: u32,
    },
    /// A station finished serving a job (span closes).
    ServiceEnd {
        /// The serving station.
        station: StationId,
        /// Priority class of the finished job.
        class: u8,
        /// Demand read the job served ([`NO_RID`] when none).
        rid: u32,
    },
    /// Queued jobs were cancelled (e.g. in-flight prefetches absorbed
    /// by a demand fetch).
    Cancelled {
        /// The station whose queue was purged.
        station: StationId,
        /// How many jobs were removed.
        count: u32,
    },
    /// Sampled depth of the central simulation event list.
    SimQueueDepth {
        /// Pending events after the sample point.
        depth: u32,
    },
    /// A geometry-aware disk model costed one operation: the mechanical
    /// breakdown of the service time (the transfer part is implicit in
    /// the surrounding `ServiceBegin`/`ServiceEnd` span).
    DiskService {
        /// The serving disk.
        station: StationId,
        /// Cylinders the arm travelled to reach the target.
        seek_cylinders: u32,
        /// Rotational wait after the seek, in nanoseconds (always well
        /// under one revolution, so `u32` never saturates).
        rot_wait_ns: u32,
        /// Demand read the priced job serves ([`NO_RID`] when none).
        rid: u32,
    },
    /// A request scheduler served a job out of arrival order (SSTF,
    /// C-LOOK). Only reorders *within* a priority class — the
    /// demand-before-prefetch rule is structural.
    QueueReorder {
        /// The station whose queue was reordered.
        station: StationId,
        /// Priority class the pick happened in.
        class: u8,
        /// Arrival-order index of the job that was served (≥ 1; index 0
        /// would be FIFO order and is not reported).
        picked: u32,
        /// Demand read of the picked job ([`NO_RID`] when none).
        rid: u32,
    },

    /// A demand access hit in the requesting node's own buffers.
    CacheHitLocal {
        /// The requesting node.
        node: u32,
        /// The demand read performing the lookup.
        rid: u32,
    },
    /// A demand access was served from another node's buffers.
    CacheHitRemote {
        /// The requesting node.
        node: u32,
        /// The node whose copy served the request.
        holder: u32,
        /// The demand read performing the lookup.
        rid: u32,
    },
    /// A demand access missed everywhere and goes to disk.
    CacheMiss {
        /// The requesting node.
        node: u32,
        /// The demand read performing the lookup.
        rid: u32,
    },
    /// A block was inserted into the cache.
    CacheInsert {
        /// The node receiving the copy.
        node: u32,
        /// True when the insert was prefetch-initiated.
        prefetch: bool,
    },
    /// A block copy left the cache.
    CacheEvict {
        /// The node that lost the copy.
        node: u32,
        /// The copy was dirty (a write-back is due).
        dirty: bool,
        /// The copy was prefetched and never used — a materialized
        /// miss-prediction (§5.2).
        wasted_prefetch: bool,
    },
    /// Singlet copies were forwarded to a peer (xFS N-chance).
    CacheForward {
        /// How many forwards happened during this cache operation.
        count: u32,
    },
    /// Singlets whose recirculation count expired were dropped.
    CacheForwardDrop {
        /// How many drops happened during this cache operation.
        count: u32,
    },
    /// Stale copies were invalidated by a write.
    CacheInvalidate {
        /// How many copies were invalidated.
        count: u32,
    },

    /// An aggressive walk started on a fresh prediction path.
    WalkStart {
        /// The file being walked.
        file: u32,
        /// The block the walk starts from.
        block: u64,
        /// The demand read that triggered the walk.
        rid: u32,
        /// Walk generation (increments on every start/restart).
        gen: u32,
    },
    /// The walk was restarted because the application left the
    /// predicted path (§3.1's restart rule).
    WalkRestart {
        /// The file being walked.
        file: u32,
        /// The demand block the walk restarts from.
        block: u64,
        /// The demand read that triggered the restart.
        rid: u32,
        /// Walk generation (increments on every start/restart).
        gen: u32,
    },
    /// The walk stopped.
    WalkStop {
        /// The file that was being walked.
        file: u32,
        /// Why it stopped.
        reason: WalkStopReason,
    },
    /// A demand request fell off the predicted path — a predictor
    /// miss-prediction observed at demand time.
    Mispredict {
        /// The file.
        file: u32,
        /// The off-path demand block.
        block: u64,
        /// The off-path demand read.
        rid: u32,
    },
    /// The engine issued a prefetch for a block.
    PrefetchIssue {
        /// The file.
        file: u32,
        /// The block being prefetched.
        block: u64,
        /// Parent demand read whose walk issued this prefetch.
        rid: u32,
        /// Walk generation the prefetch belongs to.
        gen: u32,
    },
    /// The engine issued an extent-granular prefetch batch: `blocks`
    /// contiguous blocks of one extent fetched as a single multi-block
    /// disk job. A per-block [`PrefetchIssue`](Event::PrefetchIssue)
    /// still accompanies every member block; this event marks the batch
    /// boundary so a trace can attribute coverage to batching.
    ExtentIssue {
        /// The file.
        file: u32,
        /// First block of the batch.
        first_block: u64,
        /// Member blocks fetched by the single disk job.
        blocks: u32,
        /// Parent demand read whose walk issued this batch.
        rid: u32,
    },
    /// A demand arrived for a block whose prefetch was still in flight;
    /// the demand absorbed it.
    PrefetchAbsorbed {
        /// The file.
        file: u32,
        /// The absorbed block.
        block: u64,
        /// The absorbing demand read.
        rid: u32,
    },

    /// The write-back daemon queued one dirty block to disk.
    WriteBack {
        /// The file the block belongs to.
        file: u32,
        /// The block being written.
        block: u64,
    },
    /// A periodic write-back sweep fired.
    SweepStart {
        /// Number of dirty blocks collected by the sweep.
        dirty: u32,
    },

    /// A dispatch drew transient disk errors: the priced job carries
    /// `retry_us` of failed attempts plus backoff on top of its
    /// successful attempt.
    FaultInjected {
        /// The faulting disk.
        disk: u32,
        /// Retry surcharge in microseconds (saturating).
        retry_us: u32,
        /// Demand read the job serves ([`NO_RID`] when none).
        rid: u32,
    },
    /// A disk outage aborted the in-service job; the event loop
    /// re-queues it at the front of its class (timeout-and-failover).
    Failover {
        /// The disk whose job was aborted.
        disk: u32,
        /// Demand read of the aborted job ([`NO_RID`] when none).
        rid: u32,
    },
    /// A disk outage window opened (`up: false`) or closed
    /// (`up: true`).
    DiskOutage {
        /// The affected disk.
        disk: u32,
        /// True when the disk comes back.
        up: bool,
    },
    /// A cache node dropped out of the cooperative cache: degraded
    /// mode begins (PAFS fails the node's files over to the next
    /// server; xFS stops forwarding to it).
    DegradedEnter {
        /// The node that went down.
        node: u32,
    },
    /// A cache node rejoined the cooperative cache.
    DegradedExit {
        /// The node that came back.
        node: u32,
    },
    /// Network faults hit a remote delivery: `lost` attempts re-paid
    /// the transfer and/or the delivery drew an extra delay.
    NetFault {
        /// Lost attempts (bounded by the class retry budget).
        lost: u8,
        /// True when the extra propagation delay fired.
        delayed: bool,
        /// The demand read being delivered ([`NO_RID`] when none).
        rid: u32,
    },

    /// A read request completed.
    ReadDone {
        /// The issuing process.
        proc: u32,
        /// The node it runs on.
        node: u32,
        /// Wall-clock (simulated) latency of the whole request.
        latency: Nanos,
        /// The completed demand read.
        rid: u32,
    },
    /// A write request completed.
    WriteDone {
        /// The issuing process.
        proc: u32,
        /// The node it runs on.
        node: u32,
        /// Wall-clock (simulated) latency of the whole request.
        latency: Nanos,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_copy_values() {
        // Recording must stay allocation-free; a fat event enum would
        // bloat the ring buffer. 24 bytes is the current layout even
        // with the request-id/generation causal fields.
        assert!(std::mem::size_of::<Event>() <= 24);
        let e = Event::CacheMiss { node: 3, rid: 7 };
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
