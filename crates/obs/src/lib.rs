//! # lapobs — observability for the simulation stack
//!
//! Every layer of the simulator (the `simkit` stations, the `lap-core`
//! event loop, the `prefetch` engine, the `coopcache` backends) emits
//! typed [`Event`]s through a [`Recorder`]. Two recorders ship:
//!
//! * [`NoopRecorder`] — the default. `enabled()` is a compile-time
//!   `false`, every emission site is guarded by it, and the recorder is
//!   a zero-sized type, so with static dispatch the entire subsystem
//!   compiles to nothing in the hot path: no branches survive, no
//!   allocation happens, and (by the A/B determinism test in the root
//!   crate) no simulation result changes.
//! * [`TraceRecorder`] — a bounded ring buffer of timestamped events,
//!   exportable as Chrome trace-event JSON ([`chrome::export`]) for
//!   Perfetto / `chrome://tracing`.
//!
//! Aggregated statistics flow through the [`Registry`]: the four stats
//! modules (`simkit::stats`, `lap_core`'s metrics, `prefetch::stats`,
//! `coopcache::stats`) register their counters, gauges, time-weighted
//! series, and latency histograms into one namespace, which exports as
//! CSV ([`Registry::to_csv`]) or a human-readable summary
//! ([`Registry::render_summary`]).
//!
//! This crate is a leaf: timestamps are plain nanosecond `u64`s and ids
//! are plain integers, so every other crate can depend on it without
//! cycles.
//!
//! ```
//! use lapobs::{Event, Recorder, StationId, StationKind, TraceRecorder};
//!
//! let mut rec = TraceRecorder::with_capacity(16);
//! let disk0 = StationId { kind: StationKind::Disk, index: 0 };
//! if rec.enabled() {
//!     rec.record(1_000, Event::ServiceBegin { station: disk0, class: 0, rid: 0 });
//!     rec.record(9_000, Event::ServiceEnd { station: disk0, class: 0, rid: 0 });
//! }
//! let json = lapobs::chrome::export(rec.events());
//! assert!(json.contains("\"ph\":\"B\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
mod event;
mod record;
mod registry;

pub use event::{Event, Nanos, StationId, StationKind, WalkStopReason, NO_RID};
pub use record::{NoopRecorder, Obs, Recorder, TraceRecorder};
pub use registry::{HistogramData, MetricValue, Registry};
