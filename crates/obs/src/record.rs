//! Recorders: where emitted events go.

use crate::event::{Event, Nanos};

/// An event sink. Emission sites are written as
///
/// ```ignore
/// if rec.enabled() {
///     rec.record(now_ns, Event::CacheMiss { node });
/// }
/// ```
///
/// and instrumented code is generic over `R: Recorder` (static
/// dispatch). With [`NoopRecorder`], `enabled()` is an inlineable
/// constant `false`, so the whole site — including construction of the
/// event value — is dead code the optimizer removes.
///
/// The trait is object-safe: layers that cannot be generic (e.g.
/// behind a `dyn` trait) may take `&mut dyn Recorder` instead, paying
/// one virtual call per emission when tracing is on.
pub trait Recorder {
    /// Whether events will actually be kept. Guard every emission site
    /// with this; it is the hook that makes the no-op path free.
    fn enabled(&self) -> bool;

    /// Record one event at simulated time `t`.
    fn record(&mut self, t: Nanos, ev: Event);
}

/// The default recorder: drops everything, compiles to nothing.
///
/// A zero-sized type — embedding it in a simulation adds no state, and
/// `enabled()` folds to `false` at compile time under static dispatch.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _t: Nanos, _ev: Event) {}
}

/// Number of high-volume event kinds subject to stratified sampling.
const SAMPLED_KINDS: usize = 12;

/// Sampling stratum of a high-volume event kind, or `None` for rare
/// kinds (walk lifecycle, mispredicts, reorders, evictions, sweeps...)
/// that are always kept regardless of the sampling rate.
fn sampled_kind(ev: &Event) -> Option<usize> {
    match ev {
        Event::QueuePush { .. } => Some(0),
        Event::QueuePop { .. } => Some(1),
        Event::ServiceBegin { .. } => Some(2),
        Event::ServiceEnd { .. } => Some(3),
        Event::SimQueueDepth { .. } => Some(4),
        Event::DiskService { .. } => Some(5),
        Event::CacheHitLocal { .. } => Some(6),
        Event::CacheHitRemote { .. } => Some(7),
        Event::CacheMiss { .. } => Some(8),
        Event::CacheInsert { .. } => Some(9),
        Event::ReadDone { .. } => Some(10),
        Event::WriteDone { .. } => Some(11),
        _ => None,
    }
}

/// Display label for a sampling stratum (see
/// [`TraceRecorder::sampled_counts`]).
fn sampled_kind_label(idx: usize) -> &'static str {
    [
        "queue-push",
        "queue-pop",
        "service-begin",
        "service-end",
        "sim-queue-depth",
        "disk-service",
        "cache-hit-local",
        "cache-hit-remote",
        "cache-miss",
        "cache-insert",
        "read-done",
        "write-done",
    ][idx]
}

/// A bounded ring buffer of timestamped events.
///
/// When full, the oldest events are overwritten and counted in
/// [`dropped`](TraceRecorder::dropped) — a long run keeps its *tail*,
/// which is normally what a trace viewer wants.
///
/// For paper-scale runs whose full stream would not fit, a *stratified
/// sampling* mode ([`with_sampling`](TraceRecorder::with_sampling))
/// keeps every rare event (walk lifecycle, mispredicts, reorders,
/// evictions, write-backs) but records only one in `N` of each
/// high-volume kind (queue activity, service spans, cache lookups,
/// request completions), counting what was skipped per kind so the
/// trace stays quantitatively honest.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    buf: Vec<(Nanos, Event)>,
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
    /// Keep 1 in `sample_every` of each high-volume kind (1 = all).
    sample_every: u64,
    /// Per-stratum events seen (sampling mode only).
    seen: [u64; SAMPLED_KINDS],
    /// Per-stratum events kept (sampling mode only).
    kept: [u64; SAMPLED_KINDS],
    /// Per-station keep decision of the open service span, so a kept
    /// `ServiceBegin` always gets its `ServiceEnd` (and `DiskService`
    /// detail) and a skipped one drops the whole span. Keyed by
    /// station kind/index.
    span_keep: std::collections::HashMap<(u8, u32), bool>,
}

impl TraceRecorder {
    /// Default capacity: 2²⁰ events (~24 MB) — enough for the full
    /// event stream of the small experiment scales.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Create a recorder with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Create a recorder keeping at most `cap` events (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "capacity must be at least 1");
        TraceRecorder {
            buf: Vec::new(),
            cap,
            head: 0,
            dropped: 0,
            sample_every: 1,
            seen: [0; SAMPLED_KINDS],
            kept: [0; SAMPLED_KINDS],
            span_keep: std::collections::HashMap::new(),
        }
    }

    /// Create a recorder that keeps 1 in `every` events of each
    /// high-volume kind (stratified per kind; `every >= 1`). Rare
    /// kinds are always kept. Service spans are sampled as whole
    /// begin/end pairs.
    pub fn with_sampling(cap: usize, every: u64) -> Self {
        assert!(every >= 1, "sampling rate must be at least 1");
        let mut r = Self::with_capacity(cap);
        r.sample_every = every;
        r
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sampling rate (1 = keep everything).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Per-kind `(label, seen, kept)` for the sampled high-volume
    /// strata, in a fixed order. Only strata that saw events are
    /// yielded.
    pub fn sampled_counts(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        (0..SAMPLED_KINDS)
            .filter(|&i| self.seen[i] > 0)
            .map(|i| (sampled_kind_label(i), self.seen[i], self.kept[i]))
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Nanos, Event)> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Whether a high-volume event passes the sampling filter,
    /// updating the per-stratum counters.
    fn admit(&mut self, ev: &Event) -> bool {
        let span_key = |s: &crate::event::StationId| {
            (
                match s.kind {
                    crate::event::StationKind::Disk => 0u8,
                    crate::event::StationKind::Net => 1u8,
                },
                s.index,
            )
        };
        match ev {
            // Service spans sample as pairs: the Begin decides, the
            // matching End (and any DiskService detail in between)
            // follows that decision.
            Event::ServiceBegin { station, .. } => {
                let k = 2;
                self.seen[k] += 1;
                let keep = (self.seen[k] - 1).is_multiple_of(self.sample_every);
                self.span_keep.insert(span_key(station), keep);
                if keep {
                    self.kept[k] += 1;
                }
                keep
            }
            Event::ServiceEnd { station, .. } => {
                let k = 3;
                self.seen[k] += 1;
                let keep = self.span_keep.remove(&span_key(station)).unwrap_or(true);
                if keep {
                    self.kept[k] += 1;
                }
                keep
            }
            Event::DiskService { station, .. } => {
                let k = 5;
                self.seen[k] += 1;
                let keep = *self.span_keep.get(&span_key(station)).unwrap_or(&true);
                if keep {
                    self.kept[k] += 1;
                }
                keep
            }
            other => match sampled_kind(other) {
                Some(k) => {
                    self.seen[k] += 1;
                    let keep = (self.seen[k] - 1).is_multiple_of(self.sample_every);
                    if keep {
                        self.kept[k] += 1;
                    }
                    keep
                }
                None => true,
            },
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, t: Nanos, ev: Event) {
        if self.sample_every > 1 && !self.admit(&ev) {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push((t, ev));
        } else {
            self.buf[self.head] = (t, ev);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// A borrowed emission context: a timestamp, a scope id (e.g. the file
/// a prefetch engine works on), and the recorder — bundled so that
/// instrumented inner loops take one extra argument instead of three.
pub struct Obs<'a, R: Recorder> {
    t: Nanos,
    scope: u32,
    rec: &'a mut R,
}

impl<'a, R: Recorder> Obs<'a, R> {
    /// Bundle a context. `scope` is passed back to every emission
    /// closure (see [`emit`](Obs::emit)).
    pub fn new(t: Nanos, scope: u32, rec: &'a mut R) -> Self {
        Obs { t, scope, rec }
    }

    /// Whether emissions will be kept; cheap enough to guard loops.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Emit the event built by `f` (called with the scope id) — only
    /// when the recorder is enabled, so the closure body is free on the
    /// no-op path.
    #[inline(always)]
    pub fn emit(&mut self, f: impl FnOnce(u32) -> Event) {
        if self.rec.enabled() {
            let ev = f(self.scope);
            self.rec.record(self.t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StationId, StationKind};

    #[test]
    fn noop_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(0, Event::CacheMiss { node: 0, rid: 0 }); // accepted, dropped
    }

    #[test]
    fn trace_recorder_keeps_events_in_order() {
        let mut r = TraceRecorder::with_capacity(8);
        assert!(r.enabled());
        for i in 0..5u64 {
            r.record(i * 10, Event::SimQueueDepth { depth: i as u32 });
        }
        let ts: Vec<Nanos> = r.events().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(i, Event::SimQueueDepth { depth: i as u32 });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<Nanos> = r.events().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "tail survives, oldest first");
    }

    #[test]
    fn obs_context_emits_with_scope() {
        let mut rec = TraceRecorder::with_capacity(4);
        let mut obs = Obs::new(500, 7, &mut rec);
        assert!(obs.enabled());
        obs.emit(|file| Event::WalkStart {
            file,
            block: 3,
            rid: 9,
            gen: 1,
        });
        let evs: Vec<_> = rec.events().cloned().collect();
        assert_eq!(
            evs,
            vec![(
                500,
                Event::WalkStart {
                    file: 7,
                    block: 3,
                    rid: 9,
                    gen: 1,
                }
            )]
        );
    }

    #[test]
    fn obs_context_on_noop_emits_nothing() {
        let mut rec = NoopRecorder;
        let mut obs = Obs::new(1, 2, &mut rec);
        assert!(!obs.enabled());
        obs.emit(|file| Event::WalkStart {
            file,
            block: 0,
            rid: 0,
            gen: 0,
        });
    }

    #[test]
    fn sampling_keeps_rare_kinds_and_strides_high_volume() {
        let mut r = TraceRecorder::with_sampling(1024, 4);
        for i in 0..16u64 {
            r.record(
                i,
                Event::CacheMiss {
                    node: 0,
                    rid: i as u32,
                },
            );
            r.record(
                i,
                Event::Mispredict {
                    file: 0,
                    block: i,
                    rid: i as u32,
                },
            );
        }
        let misses = r
            .events()
            .filter(|(_, e)| matches!(e, Event::CacheMiss { .. }))
            .count();
        let mispredicts = r
            .events()
            .filter(|(_, e)| matches!(e, Event::Mispredict { .. }))
            .count();
        assert_eq!(misses, 4, "1-in-4 of the high-volume kind");
        assert_eq!(mispredicts, 16, "rare kinds always kept");
        let (label, seen, kept) = r
            .sampled_counts()
            .find(|(l, _, _)| *l == "cache-miss")
            .unwrap();
        assert_eq!((label, seen, kept), ("cache-miss", 16, 4));
    }

    #[test]
    fn sampling_keeps_service_spans_paired() {
        let disk = StationId {
            kind: StationKind::Disk,
            index: 0,
        };
        let mut r = TraceRecorder::with_sampling(1024, 3);
        for i in 0..9u64 {
            r.record(
                i * 10,
                Event::ServiceBegin {
                    station: disk,
                    class: 0,
                    rid: i as u32,
                },
            );
            r.record(
                i * 10 + 5,
                Event::ServiceEnd {
                    station: disk,
                    class: 0,
                    rid: i as u32,
                },
            );
        }
        let begins: Vec<u32> = r
            .events()
            .filter_map(|(_, e)| match e {
                Event::ServiceBegin { rid, .. } => Some(*rid),
                _ => None,
            })
            .collect();
        let ends: Vec<u32> = r
            .events()
            .filter_map(|(_, e)| match e {
                Event::ServiceEnd { rid, .. } => Some(*rid),
                _ => None,
            })
            .collect();
        assert_eq!(begins, ends, "every kept Begin has its End");
        assert_eq!(begins, vec![0, 3, 6]);
    }

    #[test]
    fn sampling_rate_one_keeps_everything() {
        let mut a = TraceRecorder::with_sampling(64, 1);
        let mut b = TraceRecorder::with_capacity(64);
        for i in 0..10u64 {
            let ev = Event::SimQueueDepth { depth: i as u32 };
            a.record(i, ev);
            b.record(i, ev);
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn recorder_is_object_safe() {
        let mut tr = TraceRecorder::with_capacity(2);
        let dynrec: &mut dyn Recorder = &mut tr;
        dynrec.record(
            1,
            Event::ServiceBegin {
                station: StationId {
                    kind: StationKind::Disk,
                    index: 0,
                },
                class: 0,
                rid: 0,
            },
        );
        assert_eq!(tr.len(), 1);
    }
}
