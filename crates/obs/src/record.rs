//! Recorders: where emitted events go.

use crate::event::{Event, Nanos};

/// An event sink. Emission sites are written as
///
/// ```ignore
/// if rec.enabled() {
///     rec.record(now_ns, Event::CacheMiss { node });
/// }
/// ```
///
/// and instrumented code is generic over `R: Recorder` (static
/// dispatch). With [`NoopRecorder`], `enabled()` is an inlineable
/// constant `false`, so the whole site — including construction of the
/// event value — is dead code the optimizer removes.
///
/// The trait is object-safe: layers that cannot be generic (e.g.
/// behind a `dyn` trait) may take `&mut dyn Recorder` instead, paying
/// one virtual call per emission when tracing is on.
pub trait Recorder {
    /// Whether events will actually be kept. Guard every emission site
    /// with this; it is the hook that makes the no-op path free.
    fn enabled(&self) -> bool;

    /// Record one event at simulated time `t`.
    fn record(&mut self, t: Nanos, ev: Event);
}

/// The default recorder: drops everything, compiles to nothing.
///
/// A zero-sized type — embedding it in a simulation adds no state, and
/// `enabled()` folds to `false` at compile time under static dispatch.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _t: Nanos, _ev: Event) {}
}

/// A bounded ring buffer of timestamped events.
///
/// When full, the oldest events are overwritten and counted in
/// [`dropped`](TraceRecorder::dropped) — a long run keeps its *tail*,
/// which is normally what a trace viewer wants.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    buf: Vec<(Nanos, Event)>,
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Default capacity: 2²⁰ events (~24 MB) — enough for the full
    /// event stream of the small experiment scales.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Create a recorder with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Create a recorder keeping at most `cap` events (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "capacity must be at least 1");
        TraceRecorder {
            buf: Vec::new(),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Nanos, Event)> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, t: Nanos, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push((t, ev));
        } else {
            self.buf[self.head] = (t, ev);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// A borrowed emission context: a timestamp, a scope id (e.g. the file
/// a prefetch engine works on), and the recorder — bundled so that
/// instrumented inner loops take one extra argument instead of three.
pub struct Obs<'a, R: Recorder> {
    t: Nanos,
    scope: u32,
    rec: &'a mut R,
}

impl<'a, R: Recorder> Obs<'a, R> {
    /// Bundle a context. `scope` is passed back to every emission
    /// closure (see [`emit`](Obs::emit)).
    pub fn new(t: Nanos, scope: u32, rec: &'a mut R) -> Self {
        Obs { t, scope, rec }
    }

    /// Whether emissions will be kept; cheap enough to guard loops.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Emit the event built by `f` (called with the scope id) — only
    /// when the recorder is enabled, so the closure body is free on the
    /// no-op path.
    #[inline(always)]
    pub fn emit(&mut self, f: impl FnOnce(u32) -> Event) {
        if self.rec.enabled() {
            let ev = f(self.scope);
            self.rec.record(self.t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StationId, StationKind};

    #[test]
    fn noop_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(0, Event::CacheMiss { node: 0 }); // accepted, dropped
    }

    #[test]
    fn trace_recorder_keeps_events_in_order() {
        let mut r = TraceRecorder::with_capacity(8);
        assert!(r.enabled());
        for i in 0..5u64 {
            r.record(i * 10, Event::SimQueueDepth { depth: i as u32 });
        }
        let ts: Vec<Nanos> = r.events().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(i, Event::SimQueueDepth { depth: i as u32 });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<Nanos> = r.events().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "tail survives, oldest first");
    }

    #[test]
    fn obs_context_emits_with_scope() {
        let mut rec = TraceRecorder::with_capacity(4);
        let mut obs = Obs::new(500, 7, &mut rec);
        assert!(obs.enabled());
        obs.emit(|file| Event::WalkStart { file, block: 3 });
        let evs: Vec<_> = rec.events().cloned().collect();
        assert_eq!(evs, vec![(500, Event::WalkStart { file: 7, block: 3 })]);
    }

    #[test]
    fn obs_context_on_noop_emits_nothing() {
        let mut rec = NoopRecorder;
        let mut obs = Obs::new(1, 2, &mut rec);
        assert!(!obs.enabled());
        obs.emit(|file| Event::WalkStart { file, block: 0 });
    }

    #[test]
    fn recorder_is_object_safe() {
        let mut tr = TraceRecorder::with_capacity(2);
        let dynrec: &mut dyn Recorder = &mut tr;
        dynrec.record(
            1,
            Event::ServiceBegin {
                station: StationId {
                    kind: StationKind::Disk,
                    index: 0,
                },
                class: 0,
            },
        );
        assert_eq!(tr.len(), 1);
    }
}
