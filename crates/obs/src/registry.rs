//! The unified metrics registry.
//!
//! Every stats module in the workspace registers its aggregates here
//! under a dotted prefix (`disk0.completed`, `cache.local_hits`,
//! `prefetch.restarts`, `read.time`...), giving one namespace for the
//! CSV exporter and the human-readable summary instead of four ad-hoc
//! report formats.

use std::fmt::Write as _;

/// Raw data of a power-of-two-bucketed latency histogram: bucket `i`
/// counts observations in `[2^i, 2^{i+1})` µs (bucket 0 also absorbs
/// sub-microsecond values).
///
/// Unlike a pre-aggregated p95/p99 summary, raw buckets are
/// *mergeable*: per-disk histograms can be combined into a fleet-wide
/// one and the quantiles derived after the fact, at export time.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct HistogramData {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub total_us: f64,
    /// Log-2 bucket counts (index = floor(log2(µs))).
    pub buckets: Vec<u64>,
}

impl HistogramData {
    /// An empty histogram with the standard 48 buckets.
    pub fn new() -> Self {
        HistogramData {
            count: 0,
            total_us: 0.0,
            buckets: vec![0; 48],
        }
    }

    /// Record one observation of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 48];
        }
        let idx = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros()) as usize
        };
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += us as f64;
    }

    /// Mean observation (µs), or zero if empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket boundaries —
    /// the upper edge (µs) of the bucket containing the quantile.
    pub fn quantile_us(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (1u64 << (i + 1)) as f64;
            }
        }
        unreachable!("histogram counts are consistent");
    }

    /// Merge another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramData) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_us += other.total_us;
    }
}

/// One registered metric value.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// A monotonic count of events.
    Counter(u64),
    /// A point-in-time scalar.
    Gauge(f64),
    /// Summary of a sampled series (e.g. per-request latencies).
    Series {
        /// Number of samples.
        count: u64,
        /// Sample mean.
        mean: f64,
        /// Sample standard deviation.
        std_dev: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
    /// Mean of a value weighted by how long it held (e.g. queue
    /// length).
    TimeWeighted {
        /// The time-weighted mean over the observation window.
        mean: f64,
    },
    /// A latency histogram stored as raw log-2 bucket counts (µs);
    /// p50/p95/p99 are derived at export time.
    Histogram(HistogramData),
    /// A free-form label (configuration name, workload id...).
    Text(String),
}

/// An ordered collection of named metrics.
///
/// Registration order is preserved — exports are byte-deterministic
/// for a deterministic simulation.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Registry {
    entries: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries
            .push((name.into(), MetricValue::Counter(value)));
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), MetricValue::Gauge(value)));
    }

    /// Register a sampled-series summary.
    pub fn series(
        &mut self,
        name: impl Into<String>,
        count: u64,
        mean: f64,
        std_dev: f64,
        min: f64,
        max: f64,
    ) {
        self.entries.push((
            name.into(),
            MetricValue::Series {
                count,
                mean,
                std_dev,
                min,
                max,
            },
        ));
    }

    /// Register a time-weighted mean.
    pub fn time_weighted(&mut self, name: impl Into<String>, mean: f64) {
        self.entries
            .push((name.into(), MetricValue::TimeWeighted { mean }));
    }

    /// Register a latency histogram by its raw bucket data
    /// (microsecond log-2 buckets).
    pub fn histogram(&mut self, name: impl Into<String>, data: HistogramData) {
        self.entries
            .push((name.into(), MetricValue::Histogram(data)));
    }

    /// Register a free-form text label.
    pub fn text(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries
            .push((name.into(), MetricValue::Text(value.into())));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by exact name (first match).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Export as a `metric,value` CSV. Composite metrics flatten into
    /// dotted sub-rows (`read.time.mean`, `read.time.p95_us`, ...).
    /// Floats print in Rust's shortest-roundtrip form, so output is
    /// byte-stable for identical values.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},{v}");
                }
                MetricValue::Gauge(v) | MetricValue::TimeWeighted { mean: v } => {
                    let _ = writeln!(out, "{name},{v}");
                }
                MetricValue::Series {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => {
                    let _ = writeln!(out, "{name}.count,{count}");
                    let _ = writeln!(out, "{name}.mean,{mean}");
                    let _ = writeln!(out, "{name}.std_dev,{std_dev}");
                    let _ = writeln!(out, "{name}.min,{min}");
                    let _ = writeln!(out, "{name}.max,{max}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{name}.count,{}", h.count);
                    let _ = writeln!(out, "{name}.mean_us,{}", h.mean_us());
                    let _ = writeln!(out, "{name}.p50_us,{}", h.quantile_us(0.5));
                    let _ = writeln!(out, "{name}.p95_us,{}", h.quantile_us(0.95));
                    let _ = writeln!(out, "{name}.p99_us,{}", h.quantile_us(0.99));
                    // Raw buckets (non-empty only) so exported
                    // histograms stay mergeable downstream.
                    for (i, &b) in h.buckets.iter().enumerate() {
                        if b > 0 {
                            let _ = writeln!(out, "{name}.bucket{i},{b}");
                        }
                    }
                }
                MetricValue::Text(v) => {
                    let _ = writeln!(out, "{name},{v}");
                }
            }
        }
        out
    }

    /// A human-readable aligned listing of every metric.
    pub fn render_summary(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v:.4}"),
                MetricValue::TimeWeighted { mean } => format!("{mean:.4} (time-weighted)"),
                MetricValue::Series {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => format!("n={count} mean={mean:.4} sd={std_dev:.4} min={min:.4} max={max:.4}"),
                MetricValue::Histogram(h) => format!(
                    "n={} mean={:.1}us p50={:.0}us p95={:.0}us p99={:.0}us",
                    h.count,
                    h.mean_us(),
                    h.quantile_us(0.5),
                    h.quantile_us(0.95),
                    h.quantile_us(0.99)
                ),
                MetricValue::Text(v) => v.clone(),
            };
            let _ = writeln!(out, "{name:width$}  {rendered}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hist() -> HistogramData {
        let mut h = HistogramData::new();
        for _ in 0..5 {
            h.record_us(1500); // bucket 10, upper edge 2048
        }
        for _ in 0..5 {
            h.record_us(3000); // bucket 11, upper edge 4096
        }
        h
    }

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter("cache.local_hits", 42);
        r.gauge("cache.hit_ratio", 0.875);
        r.time_weighted("disk0.queue_len", 1.5);
        r.series("read.time_ms", 10, 2.5, 0.5, 1.0, 4.0);
        r.histogram("read.latency", sample_hist());
        r.text("sim.label", "PAFS/Ln_Agr @ 4MB");
        r
    }

    #[test]
    fn registration_order_is_preserved() {
        let r = sample();
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "cache.local_hits",
                "cache.hit_ratio",
                "disk0.queue_len",
                "read.time_ms",
                "read.latency",
                "sim.label"
            ]
        );
        assert_eq!(r.get("cache.local_hits"), Some(&MetricValue::Counter(42)));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn csv_is_flat_and_stable() {
        let a = sample().to_csv();
        let b = sample().to_csv();
        assert_eq!(a, b);
        assert!(a.starts_with("metric,value\n"));
        assert!(a.contains("cache.local_hits,42\n"));
        assert!(a.contains("read.time_ms.mean,2.5\n"));
        assert!(a.contains("read.latency.p50_us,2048\n"));
        assert!(a.contains("read.latency.p95_us,4096\n"));
        assert!(a.contains("read.latency.bucket10,5\n"));
        assert!(a.contains("read.latency.bucket11,5\n"));
        assert!(a.contains("sim.label,PAFS/Ln_Agr @ 4MB\n"));
        // One header + 2 scalars + 1 time-weighted + 5 series
        // + (5 derived + 2 non-empty bucket) histogram rows + 1 text.
        assert_eq!(a.lines().count(), 1 + 2 + 1 + 5 + 7 + 1);
    }

    #[test]
    fn summary_lists_every_metric() {
        let s = sample().render_summary();
        for name in [
            "cache.local_hits",
            "cache.hit_ratio",
            "disk0.queue_len",
            "read.time_ms",
            "read.latency",
            "sim.label",
        ] {
            assert!(s.contains(name), "{name} missing from summary:\n{s}");
        }
    }

    /// Property: merging per-source histograms is exactly the histogram
    /// of the concatenated samples — quantiles derived after a merge
    /// are as good as if one recorder had seen everything.
    #[test]
    fn merged_histograms_equal_concatenated_samples() {
        // Deterministic LCG so the test needs no external crates.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1_000_000 // µs in [0, 1s)
        };
        let samples: Vec<u64> = (0..1000).map(|_| next()).collect();

        let mut whole = HistogramData::new();
        for &us in &samples {
            whole.record_us(us);
        }
        // Split into three unequal shards and merge.
        let mut merged = HistogramData::new();
        for chunk in [&samples[..100], &samples[100..421], &samples[421..]] {
            let mut shard = HistogramData::new();
            for &us in chunk {
                shard.record_us(us);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, whole);
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(merged.quantile_us(q), whole.quantile_us(q));
        }
        assert_eq!(merged.mean_us(), whole.mean_us());
    }

    #[test]
    fn histogram_quantiles_match_bucket_edges() {
        let h = sample_hist();
        assert_eq!(h.count, 10);
        assert_eq!(h.mean_us(), 2250.0);
        assert_eq!(h.quantile_us(0.5), 2048.0);
        assert_eq!(h.quantile_us(0.99), 4096.0);
        assert_eq!(HistogramData::new().quantile_us(0.5), 0.0);
    }

    #[test]
    fn registries_compare_by_value() {
        assert_eq!(sample(), sample());
        let mut other = sample();
        other.counter("extra", 1);
        assert_ne!(sample(), other);
    }
}
