//! The unified metrics registry.
//!
//! Every stats module in the workspace registers its aggregates here
//! under a dotted prefix (`disk0.completed`, `cache.local_hits`,
//! `prefetch.restarts`, `read.time`...), giving one namespace for the
//! CSV exporter and the human-readable summary instead of four ad-hoc
//! report formats.

use std::fmt::Write as _;

/// One registered metric value.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// A monotonic count of events.
    Counter(u64),
    /// A point-in-time scalar.
    Gauge(f64),
    /// Summary of a sampled series (e.g. per-request latencies).
    Series {
        /// Number of samples.
        count: u64,
        /// Sample mean.
        mean: f64,
        /// Sample standard deviation.
        std_dev: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
    /// Mean of a value weighted by how long it held (e.g. queue
    /// length).
    TimeWeighted {
        /// The time-weighted mean over the observation window.
        mean: f64,
    },
    /// Summary of a latency histogram, in microseconds.
    Histogram {
        /// Number of recorded latencies.
        count: u64,
        /// Mean latency (µs).
        mean_us: f64,
        /// Median (µs, upper bucket edge).
        p50_us: f64,
        /// 95th percentile (µs, upper bucket edge).
        p95_us: f64,
        /// 99th percentile (µs, upper bucket edge).
        p99_us: f64,
    },
}

/// An ordered collection of named metrics.
///
/// Registration order is preserved — exports are byte-deterministic
/// for a deterministic simulation.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Registry {
    entries: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries
            .push((name.into(), MetricValue::Counter(value)));
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), MetricValue::Gauge(value)));
    }

    /// Register a sampled-series summary.
    pub fn series(
        &mut self,
        name: impl Into<String>,
        count: u64,
        mean: f64,
        std_dev: f64,
        min: f64,
        max: f64,
    ) {
        self.entries.push((
            name.into(),
            MetricValue::Series {
                count,
                mean,
                std_dev,
                min,
                max,
            },
        ));
    }

    /// Register a time-weighted mean.
    pub fn time_weighted(&mut self, name: impl Into<String>, mean: f64) {
        self.entries
            .push((name.into(), MetricValue::TimeWeighted { mean }));
    }

    /// Register a latency-histogram summary (microseconds).
    pub fn histogram(
        &mut self,
        name: impl Into<String>,
        count: u64,
        mean_us: f64,
        p50_us: f64,
        p95_us: f64,
        p99_us: f64,
    ) {
        self.entries.push((
            name.into(),
            MetricValue::Histogram {
                count,
                mean_us,
                p50_us,
                p95_us,
                p99_us,
            },
        ));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by exact name (first match).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterate metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Export as a `metric,value` CSV. Composite metrics flatten into
    /// dotted sub-rows (`read.time.mean`, `read.time.p95_us`, ...).
    /// Floats print in Rust's shortest-roundtrip form, so output is
    /// byte-stable for identical values.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},{v}");
                }
                MetricValue::Gauge(v) | MetricValue::TimeWeighted { mean: v } => {
                    let _ = writeln!(out, "{name},{v}");
                }
                MetricValue::Series {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => {
                    let _ = writeln!(out, "{name}.count,{count}");
                    let _ = writeln!(out, "{name}.mean,{mean}");
                    let _ = writeln!(out, "{name}.std_dev,{std_dev}");
                    let _ = writeln!(out, "{name}.min,{min}");
                    let _ = writeln!(out, "{name}.max,{max}");
                }
                MetricValue::Histogram {
                    count,
                    mean_us,
                    p50_us,
                    p95_us,
                    p99_us,
                } => {
                    let _ = writeln!(out, "{name}.count,{count}");
                    let _ = writeln!(out, "{name}.mean_us,{mean_us}");
                    let _ = writeln!(out, "{name}.p50_us,{p50_us}");
                    let _ = writeln!(out, "{name}.p95_us,{p95_us}");
                    let _ = writeln!(out, "{name}.p99_us,{p99_us}");
                }
            }
        }
        out
    }

    /// A human-readable aligned listing of every metric.
    pub fn render_summary(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v:.4}"),
                MetricValue::TimeWeighted { mean } => format!("{mean:.4} (time-weighted)"),
                MetricValue::Series {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => format!("n={count} mean={mean:.4} sd={std_dev:.4} min={min:.4} max={max:.4}"),
                MetricValue::Histogram {
                    count,
                    mean_us,
                    p50_us,
                    p95_us,
                    p99_us,
                } => format!(
                    "n={count} mean={mean_us:.1}us p50={p50_us:.0}us p95={p95_us:.0}us p99={p99_us:.0}us"
                ),
            };
            let _ = writeln!(out, "{name:width$}  {rendered}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter("cache.local_hits", 42);
        r.gauge("cache.hit_ratio", 0.875);
        r.time_weighted("disk0.queue_len", 1.5);
        r.series("read.time_ms", 10, 2.5, 0.5, 1.0, 4.0);
        r.histogram("read.latency", 10, 2500.0, 2048.0, 4096.0, 4096.0);
        r
    }

    #[test]
    fn registration_order_is_preserved() {
        let r = sample();
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "cache.local_hits",
                "cache.hit_ratio",
                "disk0.queue_len",
                "read.time_ms",
                "read.latency"
            ]
        );
        assert_eq!(r.get("cache.local_hits"), Some(&MetricValue::Counter(42)));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn csv_is_flat_and_stable() {
        let a = sample().to_csv();
        let b = sample().to_csv();
        assert_eq!(a, b);
        assert!(a.starts_with("metric,value\n"));
        assert!(a.contains("cache.local_hits,42\n"));
        assert!(a.contains("read.time_ms.mean,2.5\n"));
        assert!(a.contains("read.latency.p95_us,4096\n"));
        // One header + 2 scalars + 1 time-weighted + 5 series + 5 histogram rows.
        assert_eq!(a.lines().count(), 1 + 2 + 1 + 5 + 5);
    }

    #[test]
    fn summary_lists_every_metric() {
        let s = sample().render_summary();
        for name in [
            "cache.local_hits",
            "cache.hit_ratio",
            "disk0.queue_len",
            "read.time_ms",
            "read.latency",
        ] {
            assert!(s.contains(name), "{name} missing from summary:\n{s}");
        }
    }

    #[test]
    fn registries_compare_by_value() {
        assert_eq!(sample(), sample());
        let mut other = sample();
        other.counter("extra", 1);
        assert_ne!(sample(), other);
    }
}
