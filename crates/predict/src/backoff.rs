//! Order back-off for IS_PPM: maintain every order `1..=j` and predict
//! with the highest order that knows the current context.
//!
//! The paper's order-`j` predictor (§2.2) keeps only order-`j`
//! contexts: until `j` pairs have been seen — and whenever the exact
//! `j`-pair context never occurred before — it cannot predict and falls
//! back to OBA. Classic PPM solves this with *escape to lower orders*:
//! if the order-3 context is unknown, try the order-2 suffix, then
//! order-1. [`BackoffIsPpm`] implements exactly that on top of
//! [`IsPpm`], giving the accuracy of high orders on long regularities
//! without their cold-start blindness.
//!
//! This is an extension beyond the paper (its §6 observes that order
//! barely mattered on its traces; back-off is how one would deploy a
//! high-order predictor anyway), and is exposed as
//! [`AlgorithmKind::IsPpmBackoff`](crate::AlgorithmKind::IsPpmBackoff)
//! for ablation.

use crate::isppm::{EdgeChoice, IsPpm, Pair};
use crate::request::Request;

/// A stack of [`IsPpm`] models of orders `1..=max_order`, consulted
/// highest-order-first.
#[derive(Clone, Debug)]
pub struct BackoffIsPpm {
    /// Models indexed by order-1 (`models[k]` has order `k+1`).
    models: Vec<IsPpm>,
}

impl BackoffIsPpm {
    /// Build a back-off stack up to `max_order`.
    ///
    /// # Panics
    /// Panics if `max_order == 0`.
    pub fn new(max_order: usize, edge_choice: EdgeChoice) -> Self {
        assert!(max_order > 0, "order must be at least 1");
        BackoffIsPpm {
            models: (1..=max_order)
                .map(|j| IsPpm::with_edge_choice(j, edge_choice))
                .collect(),
        }
    }

    /// The highest order maintained.
    pub fn max_order(&self) -> usize {
        self.models.len()
    }

    /// Feed a demand request into every order's model.
    pub fn observe(&mut self, req: Request) {
        for m in &mut self.models {
            m.observe(req);
        }
    }

    /// The most recently observed request.
    pub fn last_request(&self) -> Option<Request> {
        self.models[0].last_request()
    }

    /// Recent pair history, as kept by the highest-order model (the
    /// longest window).
    pub fn history(&self) -> &[Pair] {
        self.models.last().expect("non-empty").history()
    }

    /// Predict the request after `base`, trying the highest order
    /// first. Also reports which order produced the prediction.
    pub fn predict_after(&self, base: Request, file_blocks: u64) -> Option<(Request, usize)> {
        for m in self.models.iter().rev() {
            if let Some(p) = m.predict_after(base, file_blocks) {
                return Some((p, m.order()));
            }
        }
        None
    }

    /// One walk step from a hypothetical pair history: find the
    /// longest-suffix context any order knows, follow its preferred
    /// edge, and return the predicted (interval, size) pair with the
    /// order used.
    pub fn step_from_history(&self, pairs: &[Pair]) -> Option<(Pair, usize)> {
        for m in self.models.iter().rev() {
            let j = m.order();
            if pairs.len() < j {
                continue;
            }
            let suffix = &pairs[pairs.len() - j..];
            if let Some(node) = m.lookup(suffix) {
                if let Some((_, pair)) = m.step(node) {
                    return Some((pair, j));
                }
            }
        }
        None
    }

    /// Total graph size across orders (for diagnostics).
    pub fn node_count(&self) -> usize {
        self.models.iter().map(IsPpm::node_count).sum()
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        for m in &mut self.models {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(b: &mut BackoffIsPpm, reqs: &[(u64, u64)]) {
        for &(o, s) in reqs {
            b.observe(Request::new(o, s));
        }
    }

    #[test]
    fn backs_off_to_order_one_when_high_order_context_is_new() {
        let mut b = BackoffIsPpm::new(3, EdgeChoice::MostRecent);
        // Regular stride: order-1 learns after 3 requests; order-3
        // needs 5 to even form an edge.
        feed(&mut b, &[(0, 1), (4, 1), (8, 1)]);
        let (pred, order) = b.predict_after(Request::new(8, 1), 1 << 20).unwrap();
        assert_eq!(pred, Request::new(12, 1));
        assert_eq!(order, 1, "must have escaped to order 1");
    }

    #[test]
    fn higher_order_disambiguates_where_order_one_guesses_wrong() {
        // Interval cycle (+2, +2, +3): the order-1 context "(2,1)" is
        // ambiguous (followed by +2 or +3), and if the stream stops
        // right after the *first* +2 of a pair, order-1's MRU edge
        // points at +3 — the wrong continuation. Order 2 sees the
        // context [+3, +2], which is always followed by +2.
        let mut b1 = BackoffIsPpm::new(1, EdgeChoice::MostRecent);
        let mut b2 = BackoffIsPpm::new(2, EdgeChoice::MostRecent);
        let mut off = 0u64;
        let mut reqs = vec![(0u64, 1u64)];
        // 25 intervals = one past 8 full cycles: ends right after the
        // first +2 of a new cycle.
        for i in 0..25 {
            off += [2, 2, 3][i % 3];
            reqs.push((off, 1));
        }
        feed(&mut b1, &reqs);
        feed(&mut b2, &reqs);
        let last = Request::new(off, 1);

        let (p1, o1) = b1.predict_after(last, 1 << 20).unwrap();
        assert_eq!(o1, 1);
        assert_eq!(
            p1,
            Request::new(off + 3, 1),
            "order 1 follows its MRU edge astray"
        );

        let (p2, o2) = b2.predict_after(last, 1 << 20).unwrap();
        assert_eq!(o2, 2, "order 2 must win once trained");
        assert_eq!(p2, Request::new(off + 2, 1), "order 2 knows the cycle");
    }

    #[test]
    fn step_from_history_uses_longest_known_suffix() {
        let mut b = BackoffIsPpm::new(3, EdgeChoice::MostRecent);
        feed(&mut b, &[(0, 1), (4, 1), (8, 1), (12, 1), (16, 1)]);
        // Full order-3 history of the regular stride.
        let pairs = vec![Pair::new(4, 1), Pair::new(4, 1), Pair::new(4, 1)];
        let (pair, order) = b.step_from_history(&pairs).unwrap();
        assert_eq!(pair, Pair::new(4, 1));
        assert_eq!(order, 3);
        // A history only order 1 can know.
        let pairs = vec![Pair::new(4, 1)];
        let (_, order) = b.step_from_history(&pairs).unwrap();
        assert_eq!(order, 1);
    }

    #[test]
    fn reset_and_counters() {
        let mut b = BackoffIsPpm::new(2, EdgeChoice::MostRecent);
        feed(&mut b, &[(0, 1), (2, 1), (4, 1), (6, 1)]);
        assert!(b.node_count() > 0);
        assert_eq!(b.max_order(), 2);
        b.reset();
        assert_eq!(b.node_count(), 0);
        assert!(b.last_request().is_none());
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_panics() {
        BackoffIsPpm::new(0, EdgeChoice::MostRecent);
    }
}
