//! The Interval and Size PPM predictor (§2.2).

use std::collections::HashMap;
use std::fmt;

use crate::request::Request;

/// One *(offset interval, request size)* pair — the unit of information
/// IS_PPM keeps, instead of the raw block numbers classic PPM uses.
///
/// The interval is the signed difference, in blocks, between the first
/// block of a request and the first block of the previous request; the
/// size is the number of blocks in the request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pair {
    /// Offset interval from the previous request, in blocks (may be
    /// negative: applications do jump backwards, e.g. on re-reads).
    pub interval: i64,
    /// Request size in blocks.
    pub size: u64,
}

impl Pair {
    /// Construct a pair.
    pub fn new(interval: i64, size: u64) -> Self {
        Pair { interval, size }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(I={},S={})", self.interval, self.size)
    }
}

/// How to pick among multiple outgoing edges of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EdgeChoice {
    /// Follow the edge that was *most recently* followed — the paper's
    /// choice: "following the path that has most recently been followed
    /// achieves a more accurate prediction" (§2.2).
    #[default]
    MostRecent,
    /// Follow the edge followed *most often* (original Vitter/Krishnan
    /// PPM behaviour), ties broken by recency. Kept for the ablation
    /// benchmark that reproduces the paper's design argument.
    MostFrequent,
}

/// Identifier of a node in the prediction graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

#[derive(Clone, Copy, Debug)]
struct EdgeInfo {
    last_used: u64,
    count: u64,
}

#[derive(Clone, Debug, Default)]
struct Node {
    ctx: Box<[Pair]>,
    /// Outgoing edges, keyed by target node.
    edges: HashMap<NodeId, EdgeInfo>,
    /// Target of the most-recently-followed edge. Timestamps only grow,
    /// so the last touched edge is always the MRU — O(1) maintenance.
    mru: Option<NodeId>,
    /// Target of the most-often-followed edge (ties to the most recent,
    /// which is the edge being touched). Counts only grow, so a simple
    /// compare-on-update keeps the argmax — O(1) maintenance.
    most_frequent: Option<(NodeId, u64)>,
}

/// A `j`-th-order Interval-and-Size PPM predictor for one file.
///
/// Nodes of the graph hold the last `j` (interval, size) pairs; an edge
/// `A → B` labelled with time `t` means "the context `B` followed the
/// context `A`, most recently at time `t`". Prediction from a node
/// follows the chosen edge ([`EdgeChoice`]) and reads the *last* pair of
/// the target context: the interval locates the next request relative to
/// the current one and the size says how many blocks it will touch.
///
/// ```
/// use predict::{IsPpm, Request};
///
/// // A 16-block stride with 4-block requests:
/// let mut ppm = IsPpm::new(1);
/// for i in 0..4 {
///     ppm.observe(Request::new(i * 16, 4));
/// }
/// let pred = ppm.predict_after(Request::new(48, 4), 1 << 20).unwrap();
/// assert_eq!(pred, Request::new(64, 4));
/// ```
#[derive(Clone, Debug)]
pub struct IsPpm {
    order: usize,
    edge_choice: EdgeChoice,
    nodes: Vec<Node>,
    index: HashMap<Box<[Pair]>, NodeId>,
    /// Sliding window of the most recent pairs (at most `order`).
    history: Vec<Pair>,
    last_req: Option<Request>,
    /// Node matching the current full context, if the window is full.
    cur_node: Option<NodeId>,
    clock: u64,
}

impl IsPpm {
    /// Create an order-`j` predictor using the paper's MRU edge choice.
    ///
    /// # Panics
    /// Panics if `order == 0`.
    pub fn new(order: usize) -> Self {
        Self::with_edge_choice(order, EdgeChoice::MostRecent)
    }

    /// Create an order-`j` predictor with an explicit edge-selection
    /// policy (for the MRU-vs-frequency ablation).
    pub fn with_edge_choice(order: usize, edge_choice: EdgeChoice) -> Self {
        assert!(order > 0, "IS_PPM order must be at least 1");
        IsPpm {
            order,
            edge_choice,
            nodes: Vec::new(),
            index: HashMap::new(),
            history: Vec::with_capacity(order),
            last_req: None,
            cur_node: None,
            clock: 0,
        }
    }

    /// The predictor's order `j`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of nodes in the prediction graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the prediction graph.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// The most recently observed request.
    pub fn last_request(&self) -> Option<Request> {
        self.last_req
    }

    /// Feed one demand request into the model, updating nodes, edges
    /// and edge timestamps exactly as Figure 2 of the paper describes.
    pub fn observe(&mut self, req: Request) {
        self.clock += 1;
        if let Some(prev) = self.last_req {
            let pair = Pair::new(req.interval_from(&prev), req.size);
            if self.history.len() == self.order {
                self.history.remove(0);
            }
            self.history.push(pair);
            if self.history.len() == self.order {
                // Look up first; the context is almost always already
                // interned, so avoid cloning the window on the hot path.
                let nid = match self.index.get(self.history.as_slice()) {
                    Some(&nid) => nid,
                    None => {
                        let boxed: Box<[Pair]> = self.history.as_slice().into();
                        let nid = NodeId(self.nodes.len() as u32);
                        self.nodes.push(Node {
                            ctx: boxed.clone(),
                            ..Node::default()
                        });
                        self.index.insert(boxed, nid);
                        nid
                    }
                };
                if let Some(from) = self.cur_node {
                    self.touch_edge(from, nid);
                }
                self.cur_node = Some(nid);
            } else {
                self.cur_node = None;
            }
        }
        self.last_req = Some(req);
    }

    fn touch_edge(&mut self, from: NodeId, to: NodeId) {
        let clock = self.clock;
        let node = &mut self.nodes[from.0 as usize];
        let e = node.edges.entry(to).or_insert(EdgeInfo {
            last_used: clock,
            count: 0,
        });
        e.last_used = clock;
        e.count += 1;
        let count = e.count;
        node.mru = Some(to);
        // Ties go to the edge just touched (the most recent), matching
        // a max-by-(count, recency) scan.
        if node.most_frequent.is_none_or(|(_, c)| count >= c) {
            node.most_frequent = Some((to, count));
        }
    }

    /// The node matching the context of the last observed request, if
    /// the model has seen enough requests to fill the order-`j` window.
    pub fn current_node(&self) -> Option<NodeId> {
        self.cur_node
    }

    /// The sliding window of recently observed pairs (at most `j`).
    pub fn history(&self) -> &[Pair] {
        &self.history
    }

    /// Find the node holding exactly this context, if the graph has
    /// seen it. Used by aggressive walks to re-synchronise a
    /// hypothetical context with the graph.
    pub fn lookup(&self, ctx: &[Pair]) -> Option<NodeId> {
        self.index.get(ctx).copied()
    }

    /// Follow the preferred outgoing edge of `node`, returning the
    /// target node and the (interval, size) pair that predicts the next
    /// request. Returns `None` if the node has no outgoing edges yet.
    pub fn step(&self, node: NodeId) -> Option<(NodeId, Pair)> {
        let n = &self.nodes[node.0 as usize];
        let to = match self.edge_choice {
            EdgeChoice::MostRecent => n.mru?,
            EdgeChoice::MostFrequent => n.most_frequent?.0,
        };
        let target = &self.nodes[to.0 as usize];
        let pair = *target.ctx.last().expect("contexts are non-empty");
        Some((to, pair))
    }

    /// Predict the request following `base` using the graph state at the
    /// current node, applying bounds: the prediction must start at a
    /// non-negative block and end inside a file of `file_blocks` blocks.
    pub fn predict_after(&self, base: Request, file_blocks: u64) -> Option<Request> {
        let node = self.cur_node?;
        let (_, pair) = self.step(node)?;
        apply_pair(base, pair, file_blocks)
    }

    /// The context (last `j` pairs) stored at `node` — exposed for
    /// tests and diagnostics.
    pub fn context(&self, node: NodeId) -> &[Pair] {
        &self.nodes[node.0 as usize].ctx
    }

    /// All `(from, to, last_used, count)` edges in a deterministic
    /// order — exposed for tests.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, u64, u64)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for (&to, e) in &n.edges {
                out.push((NodeId(i as u32), to, e.last_used, e.count));
            }
        }
        out.sort_unstable_by_key(|&(f, t, ..)| (f.0, t.0));
        out
    }

    /// Render the prediction graph in Graphviz DOT format, with nodes
    /// labelled by their contexts and edges by `(last_used, count)` —
    /// handy for inspecting what a predictor has learned (the paper's
    /// Figures 2 and 3, generated).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph isppm {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label: Vec<String> = n.ctx.iter().map(|p| p.to_string()).collect();
            writeln!(out, "  n{} [label=\"{}\"];", i, label.join(" ")).unwrap();
        }
        for (from, to, last_used, count) in self.edges() {
            let style = if self.nodes[from.0 as usize].mru == Some(to) {
                ", penwidth=2"
            } else {
                ""
            };
            writeln!(
                out,
                "  n{} -> n{} [label=\"t{} (x{})\"{}];",
                from.0, to.0, last_used, count, style
            )
            .unwrap();
        }
        out.push_str("}\n");
        out
    }

    /// Forget everything (e.g. on file truncation).
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.index.clear();
        self.history.clear();
        self.last_req = None;
        self.cur_node = None;
        self.clock = 0;
    }
}

/// Apply a predicted (interval, size) pair to a base request,
/// returning the predicted request if it falls entirely inside the
/// file.
pub(crate) fn apply_pair(base: Request, pair: Pair, file_blocks: u64) -> Option<Request> {
    let offset = base.offset as i64 + pair.interval;
    if offset < 0 {
        return None;
    }
    let req = Request::new(offset as u64, pair.size);
    req.within(file_blocks).then_some(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The request stream of Figure 1, zero-indexed: 2 blocks at 0,
    /// 3 blocks 3 further, 2 blocks 5 further, repeating.
    fn figure1_requests() -> Vec<Request> {
        vec![
            Request::new(0, 2),
            Request::new(3, 3),
            Request::new(8, 2),
            Request::new(11, 3),
            Request::new(16, 2),
        ]
    }

    #[test]
    fn figure2_graph_construction_order1() {
        let mut ppm = IsPpm::new(1);
        let reqs = figure1_requests();

        // t1: first request — nothing can be computed.
        ppm.observe(reqs[0]);
        assert_eq!(ppm.node_count(), 0);

        // t2: first node (I=3, S=3).
        ppm.observe(reqs[1]);
        assert_eq!(ppm.node_count(), 1);
        assert_eq!(ppm.edge_count(), 0);
        assert_eq!(ppm.context(ppm.current_node().unwrap()), &[Pair::new(3, 3)]);

        // t3: second node (I=5, S=2) and the first link.
        ppm.observe(reqs[2]);
        assert_eq!(ppm.node_count(), 2);
        assert_eq!(ppm.edge_count(), 1);

        // t4: no new node — (I=3,S=3) exists; a reverse link appears.
        ppm.observe(reqs[3]);
        assert_eq!(ppm.node_count(), 2);
        assert_eq!(ppm.edge_count(), 2);

        // t5: nothing new; only the (3,3)->(5,2) timestamp is refreshed.
        let before: Vec<_> = ppm.edges();
        ppm.observe(reqs[4]);
        assert_eq!(ppm.node_count(), 2);
        assert_eq!(ppm.edge_count(), 2);
        let after: Vec<_> = ppm.edges();
        let changed: Vec<_> = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| b.2 != a.2)
            .collect();
        assert_eq!(changed.len(), 1, "exactly one edge timestamp refreshed");
    }

    #[test]
    fn paper_prediction_example() {
        // "if we use the graph shown in Figure 2.t4, we could predict
        // the fifth request very easily": after the 4th request the
        // prediction is (interval 5, size 2) from block 11 -> blocks
        // 16,17 (the paper's 17,18 in 1-indexed numbering).
        let mut ppm = IsPpm::new(1);
        for r in figure1_requests().iter().take(4) {
            ppm.observe(*r);
        }
        let pred = ppm.predict_after(Request::new(11, 3), 1000).unwrap();
        assert_eq!(pred, Request::new(16, 2));
    }

    #[test]
    fn figure3_graph_order3() {
        let mut ppm = IsPpm::new(3);
        // Extend the Figure 1 pattern far enough for order-3 contexts
        // to repeat: requests alternate (+3,3) and (+5,2).
        let mut reqs = figure1_requests();
        reqs.push(Request::new(19, 3)); // +3, 3 blocks
        reqs.push(Request::new(24, 2)); // +5, 2 blocks
        for r in &reqs {
            ppm.observe(*r);
        }
        // Exactly the two alternating 3-pair contexts of Figure 3.
        assert_eq!(ppm.node_count(), 2);
        let ctxs: Vec<Vec<Pair>> = (0..2).map(|i| ppm.context(NodeId(i)).to_vec()).collect();
        assert!(ctxs.contains(&vec![Pair::new(3, 3), Pair::new(5, 2), Pair::new(3, 3)]));
        assert!(ctxs.contains(&vec![Pair::new(5, 2), Pair::new(3, 3), Pair::new(5, 2)]));
        // And the prediction continues the pattern: after (24,2) comes
        // (+3 -> 27, 3 blocks).
        let pred = ppm.predict_after(Request::new(24, 2), 1000).unwrap();
        assert_eq!(pred, Request::new(27, 3));
    }

    #[test]
    fn mru_edge_beats_frequency_when_pattern_shifts() {
        // Train a node with two successors: first "A" many times, then
        // "B" once (more recent). MRU must pick B; frequency picks A.
        let make = |choice| {
            let mut ppm = IsPpm::with_edge_choice(1, choice);
            let mut off = 0u64;
            // Pattern P: (+10, 1) followed by (+1, 1) — seen 5 times.
            for _ in 0..5 {
                ppm.observe(Request::new(off, 1));
                off += 10;
                ppm.observe(Request::new(off, 1));
                off += 1;
            }
            // Shift: (+10,1) now followed by (+2,2).
            ppm.observe(Request::new(off, 1));
            off += 10;
            ppm.observe(Request::new(off, 1)); // reach node (10,1)
            off += 2;
            ppm.observe(Request::new(off, 2)); // edge (10,1)->(2,2)
                                               // Back at node (10,1):
            off += 10;
            ppm.observe(Request::new(off, 1));
            (ppm, off)
        };

        let (mru, off) = make(EdgeChoice::MostRecent);
        let pred = mru.predict_after(Request::new(off, 1), 10_000).unwrap();
        assert_eq!(pred, Request::new(off + 2, 2), "MRU follows the shift");

        let (freq, off) = make(EdgeChoice::MostFrequent);
        let pred = freq.predict_after(Request::new(off, 1), 10_000).unwrap();
        assert_eq!(pred, Request::new(off + 1, 1), "frequency lags behind");
    }

    #[test]
    fn negative_interval_is_learned_and_bounded() {
        let mut ppm = IsPpm::new(1);
        // Read two blocks forward, then jump back to 0, repeatedly.
        for _ in 0..3 {
            ppm.observe(Request::new(0, 1));
            ppm.observe(Request::new(5, 1));
        }
        // Current context is (interval=-5, size=1) after this stream?
        // Last transition was 5 -> 0? No: stream ends at (5,1), context
        // is (+5,1); MRU edge leads to (-5,1).
        let pred = ppm.predict_after(Request::new(5, 1), 100).unwrap();
        assert_eq!(pred, Request::new(0, 1));
        // A prediction that would land before block 0 is suppressed.
        let pred = ppm.predict_after(Request::new(3, 1), 100);
        assert_eq!(pred, None);
    }

    #[test]
    fn prediction_requires_full_context() {
        let mut ppm = IsPpm::new(3);
        ppm.observe(Request::new(0, 1));
        ppm.observe(Request::new(1, 1));
        // Only 1 pair so far; order-3 window not full.
        assert_eq!(ppm.current_node(), None);
        assert_eq!(ppm.predict_after(Request::new(1, 1), 100), None);
    }

    #[test]
    fn out_of_file_prediction_suppressed() {
        let mut ppm = IsPpm::new(1);
        ppm.observe(Request::new(0, 4));
        ppm.observe(Request::new(4, 4));
        ppm.observe(Request::new(8, 4));
        // Predicts (interval 4, size 4) => 12..16; file of 14 blocks
        // cannot hold it.
        assert_eq!(ppm.predict_after(Request::new(8, 4), 14), None);
        assert_eq!(
            ppm.predict_after(Request::new(8, 4), 16),
            Some(Request::new(12, 4))
        );
    }

    #[test]
    fn reset_clears_graph() {
        let mut ppm = IsPpm::new(1);
        for r in figure1_requests() {
            ppm.observe(r);
        }
        assert!(ppm.node_count() > 0);
        ppm.reset();
        assert_eq!(ppm.node_count(), 0);
        assert_eq!(ppm.edge_count(), 0);
        assert_eq!(ppm.last_request(), None);
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn order_zero_panics() {
        IsPpm::new(0);
    }

    #[test]
    fn dot_export_lists_nodes_and_marks_mru() {
        let mut ppm = IsPpm::new(1);
        for r in figure1_requests() {
            ppm.observe(r);
        }
        let dot = ppm.to_dot();
        assert!(dot.starts_with("digraph isppm {"));
        assert!(dot.contains("(I=3,S=3)"));
        assert!(dot.contains("(I=5,S=2)"));
        // Two edges, at least one highlighted as MRU.
        assert_eq!(dot.matches(" -> ").count(), 2);
        assert!(dot.contains("penwidth=2"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
