//! # predict — the block-access predictor zoo
//!
//! The prediction half of the IPPS'99 reproduction
//!
//! > T. Cortes, J. Labarta. *Linear Aggressive Prefetching: A Way to
//! > Increase the Performance of Cooperative Caches.* IPPS 1999.
//!
//! extracted from the `prefetch` crate into its own subsystem so that
//! predictors beyond the paper's pair can be plugged in and ablated.
//! It contains:
//!
//! * [`Oba`] — the classic *One Block Ahead* predictor (§2.1).
//! * [`IsPpm`] — the *Interval and Size* PPM predictor family (§2.2):
//!   a graph over *(offset-interval, request-size)* contexts whose
//!   prediction follows the most-recently-used edge.
//! * [`BackoffIsPpm`] — IS_PPM with classic PPM escape-to-lower-order
//!   (extension beyond the paper).
//! * [`BlockMarkov`] — a per-file first/second-order Markov chain over
//!   raw block numbers with fully deterministic tie-breaking.
//! * [`Mithril`] — a MITHRIL-style association miner: a timestamped
//!   circular lookahead window mines block→block associations, and
//!   prediction emits a *ranked candidate set* filtered by support and
//!   ordered by (support, recency).
//! * [`FilePredictor`] — the unified per-file predictor with the
//!   paper's OBA cold-start fallback and the *walk* cursor that
//!   aggressive prefetching consumes. Chain predictors (OBA, IS_PPM,
//!   Markov) walk linearly; set predictors (MITHRIL) walk a ranked
//!   frontier over the association graph, one candidate at a time.
//! * [`PredictorSpec`] — the registry: parse CLI strings such as
//!   `is_ppm:3`, `markov:2` or `mithril+oba` into algorithm
//!   configurations, with helpful errors listing every valid spec.
//!
//! The crate is deliberately dependency-free and simulator-agnostic:
//! predictors see only [`Request`] streams and answer with predicted
//! requests. The `prefetch` crate layers the engine (aggressiveness
//! limits, in-flight accounting, extent batching) on top.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backoff;
mod isppm;
mod markov;
mod mithril;
mod oba;
mod predictor;
mod request;
mod spec;

pub use backoff::BackoffIsPpm;
pub use isppm::{EdgeChoice, IsPpm, Pair};
pub use markov::BlockMarkov;
pub use mithril::Mithril;
pub use oba::Oba;
pub use predictor::{FilePredictor, PredictionSource, Walk};
pub use request::Request;
pub use spec::{
    registry_help, AlgorithmKind, PredictorSpec, SpecError, MITHRIL_LOOKAHEAD, MITHRIL_MIN_SUPPORT,
};
