//! A per-file block-granular Markov chain predictor (extension).
//!
//! Where IS_PPM abstracts the stream into *(interval, size)* pairs,
//! [`BlockMarkov`] keeps raw block numbers: the context is the last
//! `order` blocks touched (order 1 or 2) and each context counts its
//! observed successor blocks. Prediction is the argmax successor under
//! a fully deterministic total order — count first, then recency, then
//! the smaller block number — so iteration order of the underlying hash
//! maps can never leak into results. This honours the repo's stream
//! discipline: determinism comes for free and *no* new `Rng64` draws
//! are introduced (existing random streams are never perturbed).

use std::collections::HashMap;

use crate::request::Request;

#[derive(Clone, Copy, Debug)]
struct Edge {
    count: u64,
    last_used: u64,
}

/// An order-1 or order-2 Markov chain over the block numbers of one
/// file.
#[derive(Clone, Debug)]
pub struct BlockMarkov {
    order: usize,
    /// Transition table: last-`order`-blocks context → successor edges.
    table: HashMap<Box<[u64]>, HashMap<u64, Edge>>,
    /// The current context (at most `order` recent blocks).
    hist: Vec<u64>,
    last_req: Option<Request>,
    /// Logical clock, advanced once per observed block, so `last_used`
    /// is unique per (context, successor) update.
    clock: u64,
}

impl BlockMarkov {
    /// Create a chain with a context of `order` blocks.
    ///
    /// # Panics
    /// Panics unless `order` is 1 or 2.
    pub fn new(order: usize) -> Self {
        assert!((1..=2).contains(&order), "Markov order must be 1 or 2");
        BlockMarkov {
            order,
            table: HashMap::new(),
            hist: Vec::with_capacity(order),
            last_req: None,
            clock: 0,
        }
    }

    /// The context length in blocks.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The most recently observed request.
    pub fn last_request(&self) -> Option<Request> {
        self.last_req
    }

    /// The current context (the last up-to-`order` observed blocks).
    pub fn context(&self) -> &[u64] {
        &self.hist
    }

    /// Total number of learned transitions (table size, for the
    /// `pred.table_size` registry gauge).
    pub fn transitions(&self) -> u64 {
        self.table.values().map(|succ| succ.len() as u64).sum()
    }

    /// Feed one demand request into the chain, block by block.
    pub fn observe(&mut self, req: Request) {
        for b in req.blocks() {
            self.clock += 1;
            if self.hist.len() == self.order {
                let e = self
                    .table
                    .entry(self.hist.as_slice().into())
                    .or_default()
                    .entry(b)
                    .or_insert(Edge {
                        count: 0,
                        last_used: 0,
                    });
                e.count += 1;
                e.last_used = self.clock;
                self.hist.remove(0);
            }
            self.hist.push(b);
        }
        self.last_req = Some(req);
    }

    /// The most likely successor of `ctx`, or `None` if the chain has
    /// never seen that context. Ties break deterministically by (count
    /// desc, recency desc, block asc).
    pub fn next_after(&self, ctx: &[u64]) -> Option<u64> {
        let succ = self.table.get(ctx)?;
        succ.iter()
            .max_by(|(ba, ea), (bb, eb)| {
                ea.count
                    .cmp(&eb.count)
                    .then(ea.last_used.cmp(&eb.last_used))
                    .then(bb.cmp(ba))
            })
            .map(|(&b, _)| b)
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.table.clear();
        self.hist.clear();
        self.last_req = None;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut BlockMarkov, blocks: &[u64]) {
        for &b in blocks {
            m.observe(Request::new(b, 1));
        }
    }

    #[test]
    fn learns_a_simple_cycle() {
        let mut m = BlockMarkov::new(1);
        feed(&mut m, &[5, 9, 2, 5, 9, 2, 5]);
        assert_eq!(m.next_after(&[5]), Some(9));
        assert_eq!(m.next_after(&[9]), Some(2));
        assert_eq!(m.next_after(&[2]), Some(5));
        assert_eq!(m.next_after(&[7]), None, "unseen context");
        assert_eq!(m.transitions(), 3);
    }

    #[test]
    fn count_beats_recency() {
        let mut m = BlockMarkov::new(1);
        // 0 -> 1 twice, then 0 -> 9 once (more recent, lower count).
        feed(&mut m, &[0, 1, 0, 1, 0, 9]);
        assert_eq!(m.next_after(&[0]), Some(1));
    }

    #[test]
    fn recency_breaks_count_ties() {
        let mut m = BlockMarkov::new(1);
        // 0 -> 1 once, 0 -> 9 once; 9 is more recent.
        feed(&mut m, &[0, 1, 0, 9]);
        assert_eq!(m.next_after(&[0]), Some(9));
    }

    #[test]
    fn order_two_disambiguates() {
        let mut m1 = BlockMarkov::new(1);
        let mut m2 = BlockMarkov::new(2);
        // Block 3 is followed by 4 after 2, but by 8 after 7:
        // 2,3,4 ... 7,3,8 repeated. Order 1 ends up on the MRU side;
        // order 2 always knows.
        let stream = [2, 3, 4, 7, 3, 8, 2, 3, 4, 7, 3, 8, 2, 3, 4];
        feed(&mut m1, &stream);
        feed(&mut m2, &stream);
        assert_eq!(m2.next_after(&[2, 3]), Some(4));
        assert_eq!(m2.next_after(&[7, 3]), Some(8));
        // Order 1 has a single, ambiguous context for block 3.
        assert_eq!(m1.next_after(&[3]), Some(4), "count 3 for 4 vs 2 for 8");
    }

    #[test]
    fn multi_block_requests_decompose_into_blocks() {
        let mut m = BlockMarkov::new(1);
        m.observe(Request::new(10, 3)); // blocks 10,11,12
        m.observe(Request::new(20, 1));
        assert_eq!(m.next_after(&[10]), Some(11));
        assert_eq!(m.next_after(&[11]), Some(12));
        assert_eq!(m.next_after(&[12]), Some(20));
        assert_eq!(m.context(), &[20]);
    }

    #[test]
    fn reset_clears_table() {
        let mut m = BlockMarkov::new(1);
        feed(&mut m, &[1, 2, 3]);
        assert!(m.transitions() > 0);
        m.reset();
        assert_eq!(m.transitions(), 0);
        assert!(m.last_request().is_none());
        assert!(m.context().is_empty());
    }

    #[test]
    #[should_panic(expected = "order must be 1 or 2")]
    fn order_three_panics() {
        BlockMarkov::new(3);
    }
}
