//! A MITHRIL-style block-association miner (extension; see PAPERS.md).
//!
//! Sequential and PPM predictors structurally miss *sporadic* but
//! correlated accesses — block pairs that recur together without a
//! stable stride. MITHRIL mines them: every observed block keeps a
//! timestamped **circular lookahead window** of its recent
//! predecessors, and each predecessor→successor co-occurrence becomes
//! an association rule with a support count and a recency stamp. A
//! rule is only *emitted* once its support clears a minimum, and the
//! candidates for a block form a **ranked set** ordered by (support
//! desc, reinforcement clock asc, block asc) — not a linear next-block
//! chain. Among equally supported successors the one reinforced
//! *earliest* after each occurrence of the source is the **nearest**
//! upcoming block in the stream, so it is issued first; ranking by
//! latest reinforcement would walk the farthest-ahead association
//! first and outrun the demand stream.
//!
//! Ranking and eviction orders are total (block numbers break every
//! tie), so hash-map iteration order cannot leak into predictions.

use std::collections::{HashMap, VecDeque};

use crate::request::Request;

/// Cap on stored associations per source block; the weakest (lowest
/// support, then the farthest — latest-reinforced — successor, then
/// the higher target) is evicted first, keeping the near successors a
/// walk issues first. Support grows every pass for live rules, so a
/// stale equal-support tie is transient.
const MAX_ASSOCS_PER_SOURCE: usize = 8;

#[derive(Clone, Copy, Debug)]
struct Assoc {
    target: u64,
    support: u32,
    last_seen: u64,
}

/// The association miner for one file.
#[derive(Clone, Debug)]
pub struct Mithril {
    lookahead: usize,
    min_support: u32,
    /// Circular window of the most recent `(clock, block)` observations.
    window: VecDeque<(u64, u64)>,
    /// Mined rules: source block → capped association list.
    table: HashMap<u64, Vec<Assoc>>,
    clock: u64,
    mined: u64,
    last_req: Option<Request>,
}

impl Mithril {
    /// Create a miner with the given lookahead-window length (in
    /// observed blocks) and minimum emission support.
    ///
    /// # Panics
    /// Panics if `lookahead < 2` (a one-slot window can never pair two
    /// distinct blocks) or `min_support == 0`.
    pub fn new(lookahead: usize, min_support: u32) -> Self {
        assert!(lookahead >= 2, "MITHRIL lookahead must be at least 2");
        assert!(min_support >= 1, "MITHRIL min support must be at least 1");
        Mithril {
            lookahead,
            min_support,
            window: VecDeque::with_capacity(lookahead),
            table: HashMap::new(),
            clock: 0,
            mined: 0,
            last_req: None,
        }
    }

    /// The lookahead-window length.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// The minimum support an association needs before it is emitted.
    pub fn min_support(&self) -> u32 {
        self.min_support
    }

    /// The most recently observed request.
    pub fn last_request(&self) -> Option<Request> {
        self.last_req
    }

    /// Number of stored association rules (the `pred.table_size`
    /// registry gauge).
    pub fn assoc_count(&self) -> u64 {
        self.table.values().map(|v| v.len() as u64).sum()
    }

    /// Number of distinct rules ever mined (insertions, not updates —
    /// the `pred.mined` registry counter).
    pub fn mined(&self) -> u64 {
        self.mined
    }

    /// Feed one demand request into the miner, block by block: each
    /// block `b` strengthens the rule `a → b` for every distinct block
    /// `a` still inside the lookahead window.
    pub fn observe(&mut self, req: Request) {
        for b in req.blocks() {
            self.clock += 1;
            let clock = self.clock;
            for i in 0..self.window.len() {
                let (_, a) = self.window[i];
                if a == b {
                    continue;
                }
                let assocs = self.table.entry(a).or_default();
                if let Some(e) = assocs.iter_mut().find(|e| e.target == b) {
                    e.support += 1;
                    e.last_seen = clock;
                } else {
                    if assocs.len() == MAX_ASSOCS_PER_SOURCE {
                        // Evict the weakest rule: lowest support, then
                        // the latest-reinforced (farthest) successor,
                        // then the larger target block.
                        let weakest = assocs
                            .iter()
                            .enumerate()
                            .min_by(|(_, x), (_, y)| {
                                x.support
                                    .cmp(&y.support)
                                    .then(y.last_seen.cmp(&x.last_seen))
                                    .then(y.target.cmp(&x.target))
                            })
                            .map(|(i, _)| i)
                            .expect("non-empty");
                        assocs.swap_remove(weakest);
                    }
                    assocs.push(Assoc {
                        target: b,
                        support: 1,
                        last_seen: clock,
                    });
                    self.mined += 1;
                }
            }
            self.window.push_back((clock, b));
            while self.window.len() > self.lookahead {
                self.window.pop_front();
            }
        }
        self.last_req = Some(req);
    }

    /// The ranked candidate set for `block`: every association whose
    /// support clears the minimum, strongest first (support desc,
    /// earliest-reinforced first, target block asc). The
    /// earliest-reinforced equally supported successor is the nearest
    /// upcoming block in the stream (see the module docs).
    pub fn candidates(&self, block: u64) -> Vec<u64> {
        let Some(assocs) = self.table.get(&block) else {
            return Vec::new();
        };
        let mut out: Vec<&Assoc> = assocs
            .iter()
            .filter(|a| a.support >= self.min_support)
            .collect();
        out.sort_unstable_by(|x, y| {
            y.support
                .cmp(&x.support)
                .then(x.last_seen.cmp(&y.last_seen))
                .then(x.target.cmp(&y.target))
        });
        out.into_iter().map(|a| a.target).collect()
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.window.clear();
        self.table.clear();
        self.clock = 0;
        self.mined = 0;
        self.last_req = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut Mithril, blocks: &[u64]) {
        for &b in blocks {
            m.observe(Request::new(b, 1));
        }
    }

    #[test]
    fn mines_cooccurring_pairs() {
        let mut m = Mithril::new(4, 2);
        // Blocks 10 and 90 recur together, with noise between rounds.
        feed(&mut m, &[10, 90, 1, 2, 10, 90, 3, 4, 10, 90]);
        assert_eq!(m.candidates(10), vec![90]);
        assert!(m.mined() > 0);
        assert!(m.assoc_count() > 0);
    }

    #[test]
    fn min_support_filters_singletons() {
        let mut m = Mithril::new(4, 2);
        feed(&mut m, &[10, 90]);
        // Seen once: mined but below support, so not emitted.
        assert!(m.candidates(10).is_empty());
        feed(&mut m, &[10, 90]);
        assert_eq!(m.candidates(10), vec![90]);
    }

    #[test]
    fn ranking_is_support_then_nearest_then_block() {
        let mut m = Mithril::new(2, 1);
        // 5 -> 7 twice, 5 -> 3 once (later). Window of 2 keeps pairs
        // tight: each probe sequence is [5, x].
        feed(&mut m, &[5, 7, 5, 7, 5, 3]);
        assert_eq!(m.candidates(5), vec![7, 3]);
        // Equal support + distinct reinforcement clocks: the
        // earliest-reinforced (nearest in the stream) first.
        let mut m = Mithril::new(2, 1);
        feed(&mut m, &[5, 7, 5, 3]);
        assert_eq!(m.candidates(5), vec![7, 3]);
    }

    #[test]
    fn eviction_keeps_near_successors() {
        let mut m = Mithril::new(16, 1);
        // One pass over 0..=12: source 0 pairs with 12 successors, 4
        // over the per-source cap. The latest-reinforced (farthest)
        // rules are evicted as the later successors arrive, keeping
        // the near ones a walk issues first.
        feed(&mut m, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        assert_eq!(m.candidates(0), vec![1, 2, 3, 4, 5, 6, 7, 12]);
    }

    #[test]
    fn window_bounds_mining_distance() {
        let mut m = Mithril::new(2, 1);
        // With a 2-slot window, 10 has left the window by the time 99
        // arrives (two other blocks in between).
        feed(&mut m, &[10, 1, 2, 99]);
        assert!(m.candidates(10).iter().all(|&t| t != 99));
    }

    #[test]
    fn table_is_capped_per_source() {
        let mut m = Mithril::new(2, 1);
        // Associate block 0 with many distinct successors.
        for t in 1..=20u64 {
            feed(&mut m, &[0, t]);
        }
        assert!(m.table.get(&0).unwrap().len() <= MAX_ASSOCS_PER_SOURCE);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Mithril::new(4, 1);
        feed(&mut m, &[1, 2, 3]);
        assert!(m.assoc_count() > 0);
        m.reset();
        assert_eq!(m.assoc_count(), 0);
        assert_eq!(m.mined(), 0);
        assert!(m.last_request().is_none());
        assert!(m.candidates(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "lookahead must be at least 2")]
    fn tiny_window_panics() {
        Mithril::new(1, 1);
    }
}
