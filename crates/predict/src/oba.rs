//! One Block Ahead (§2.1).

use crate::request::Request;

/// The *One Block Ahead* predictor: "whenever a block `i` is read or
/// written, block `i+1` is also requested for prefetching" (§2.1,
/// citing Smith's classic disk-cache analysis).
///
/// For a multi-block request the candidate is the block following the
/// last touched block. OBA is deliberately conservative: exactly one
/// block per demand request. Its aggressive extension (§3.1) keeps
/// stepping sequentially to end-of-file, which the prefetch engine
/// implements by repeatedly asking for the next sequential block.
#[derive(Clone, Copy, Debug, Default)]
pub struct Oba {
    last: Option<Request>,
}

impl Oba {
    /// New predictor with no history.
    pub fn new() -> Self {
        Oba { last: None }
    }

    /// Observe a demand request.
    pub fn observe(&mut self, req: Request) {
        self.last = Some(req);
    }

    /// The most recently observed request, if any.
    pub fn last(&self) -> Option<Request> {
        self.last
    }

    /// One-block-ahead prediction after request `prev`: the single
    /// block following it, if still inside the file.
    pub fn predict_after(prev: Request, file_blocks: u64) -> Option<Request> {
        let next = Request::new(prev.end(), 1);
        next.within(file_blocks).then_some(next)
    }

    /// Prediction following the last *observed* request.
    pub fn predict(&self, file_blocks: u64) -> Option<Request> {
        Self::predict_after(self.last?, file_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_block_after_request_end() {
        let mut oba = Oba::new();
        assert_eq!(oba.predict(100), None); // nothing observed yet
        oba.observe(Request::new(10, 4)); // blocks 10..14
        assert_eq!(oba.predict(100), Some(Request::new(14, 1)));
    }

    #[test]
    fn stops_at_end_of_file() {
        let mut oba = Oba::new();
        oba.observe(Request::new(98, 2)); // blocks 98, 99 of a 100-block file
        assert_eq!(oba.predict(100), None);
        assert_eq!(oba.predict(101), Some(Request::new(100, 1)));
    }

    #[test]
    fn always_predicts_exactly_one_block() {
        let mut oba = Oba::new();
        oba.observe(Request::new(0, 64));
        let p = oba.predict(1000).unwrap();
        assert_eq!(p.size, 1);
        assert_eq!(p.offset, 64);
    }

    #[test]
    fn stateless_prediction_chain_is_sequential() {
        // Chaining predict_after models aggressive OBA: a sequential
        // scan to end-of-file.
        let mut cur = Request::new(5, 3);
        let mut visited = Vec::new();
        while let Some(next) = Oba::predict_after(cur, 12) {
            visited.push(next.offset);
            cur = next;
        }
        assert_eq!(visited, vec![8, 9, 10, 11]);
    }
}
