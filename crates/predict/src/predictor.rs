//! A unified per-file predictor with the paper's OBA cold-start
//! fallback and the *walk* cursor used by aggressive prefetching.
//!
//! Chain predictors (OBA, IS_PPM, back-off, Markov) advance the walk
//! one predicted request at a time. Set predictors (MITHRIL) walk a
//! **ranked frontier**: the candidate set of the current block, in
//! rank order, then the candidates of each issued candidate (a
//! breadth-first expansion of the association graph). Either way the
//! walk yields one request per call, so the prefetch engine charges
//! one aggressiveness-limit unit per candidate without knowing which
//! kind of predictor it is driving.

use std::collections::{HashSet, VecDeque};

use crate::backoff::BackoffIsPpm;
use crate::isppm::{apply_pair, EdgeChoice, IsPpm, Pair};
use crate::markov::BlockMarkov;
use crate::mithril::Mithril;
use crate::oba::Oba;
use crate::request::Request;
use crate::spec::AlgorithmKind;

/// Where a prediction came from — the configured predictor proper or
/// the OBA cold-start fallback ("our proposal consists of using the
/// OBA algorithm whenever not enough information is available in the
/// graph", §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictionSource {
    /// The configured predictor proper (OBA for OBA configs, the graph
    /// for IS_PPM configs, the chain/association table for the
    /// extension predictors).
    Primary,
    /// The OBA fallback inside a predictor configuration.
    ObaFallback,
}

/// The simulated position of an aggressive prefetching pass: the last
/// (real or hypothetical) request on the path, plus the predictor's
/// hypothetical context — the (interval, size) history for IS_PPM, the
/// recent-block window for Markov, the ranked frontier for MITHRIL.
///
/// The aggressive driver "behaves as if the user had already requested
/// the prefetched blocks and goes for the next node in the graph"
/// (§3.1): advancing the walk never mutates the model, it only moves
/// this cursor.
#[derive(Clone, Debug)]
pub struct Walk {
    cur: Request,
    /// Last up-to-`order` pairs along the walk (IS_PPM only; empty
    /// otherwise).
    pairs: Vec<Pair>,
    /// Last up-to-`order` block numbers along the walk (Markov only).
    blocks: Vec<u64>,
    /// Ranked candidate frontier (MITHRIL only): candidates still to
    /// issue, strongest first; issuing one enqueues *its* candidates.
    frontier: VecDeque<u64>,
    /// Blocks already issued or demanded on this walk (MITHRIL only) —
    /// terminates cycles in the association graph.
    visited: HashSet<u64>,
}

impl Walk {
    fn chain(cur: Request, pairs: Vec<Pair>) -> Self {
        Walk {
            cur,
            pairs,
            blocks: Vec::new(),
            frontier: VecDeque::new(),
            visited: HashSet::new(),
        }
    }

    /// The last request (real or simulated) on the walk path.
    pub fn position(&self) -> Request {
        self.cur
    }
}

enum Inner {
    None,
    Oba(Oba),
    IsPpm(IsPpm),
    Backoff(BackoffIsPpm),
    Markov { model: BlockMarkov, fallback: bool },
    Mithril { model: Mithril, fallback: bool },
}

/// A per-file predictor of any registered [`AlgorithmKind`], with OBA
/// fallback where the configuration asks for it.
pub struct FilePredictor {
    inner: Inner,
    /// Predictions returned (from `predict` and `walk_next`).
    emits: u64,
    /// Predictions returned by the primary model (not the fallback).
    hits: u64,
    /// Model consultations: every `predict`/`walk_next` call, whether
    /// or not it produced a prediction. A deterministic cost counter
    /// for the simulator self-profile — prediction *work*, where
    /// `emits` counts prediction *output*.
    lookups: u64,
    /// Accesses observed into the model (`observe` calls).
    updates: u64,
}

impl FilePredictor {
    /// Build the predictor for an algorithm configuration.
    pub fn new(algorithm: AlgorithmKind, edge_choice: EdgeChoice) -> Self {
        let inner = match algorithm {
            AlgorithmKind::None => Inner::None,
            AlgorithmKind::Oba => Inner::Oba(Oba::new()),
            AlgorithmKind::IsPpm { order } => {
                Inner::IsPpm(IsPpm::with_edge_choice(order, edge_choice))
            }
            AlgorithmKind::IsPpmBackoff { order } => {
                Inner::Backoff(BackoffIsPpm::new(order, edge_choice))
            }
            AlgorithmKind::Markov { order, fallback } => Inner::Markov {
                model: BlockMarkov::new(order),
                fallback,
            },
            AlgorithmKind::Mithril {
                lookahead,
                min_support,
                fallback,
            } => Inner::Mithril {
                model: Mithril::new(lookahead, min_support),
                fallback,
            },
        };
        FilePredictor {
            inner,
            emits: 0,
            hits: 0,
            lookups: 0,
            updates: 0,
        }
    }

    /// Feed a real demand request into the model.
    pub fn observe(&mut self, req: Request) {
        self.updates += 1;
        match &mut self.inner {
            Inner::None => {}
            Inner::Oba(o) => o.observe(req),
            Inner::IsPpm(p) => p.observe(req),
            Inner::Backoff(b) => b.observe(req),
            Inner::Markov { model, .. } => model.observe(req),
            Inner::Mithril { model, .. } => model.observe(req),
        }
    }

    /// The last demand request observed, if any.
    pub fn last_request(&self) -> Option<Request> {
        match &self.inner {
            Inner::None => None,
            Inner::Oba(o) => o.last(),
            Inner::IsPpm(p) => p.last_request(),
            Inner::Backoff(b) => b.last_request(),
            Inner::Markov { model, .. } => model.last_request(),
            Inner::Mithril { model, .. } => model.last_request(),
        }
    }

    /// Access the underlying IS_PPM graph (for diagnostics/tests).
    pub fn graph(&self) -> Option<&IsPpm> {
        match &self.inner {
            Inner::IsPpm(p) => Some(p),
            _ => None,
        }
    }

    /// Predictions returned so far (`pred.emits`).
    pub fn emits(&self) -> u64 {
        self.emits
    }

    /// Predictions the primary model produced itself, without the OBA
    /// fallback (`pred.hits`).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Size of the learned model: IS_PPM graph nodes, Markov
    /// transitions or MITHRIL association rules (`pred.table_size`).
    pub fn table_size(&self) -> u64 {
        match &self.inner {
            Inner::None | Inner::Oba(_) => 0,
            Inner::IsPpm(p) => p.node_count() as u64,
            Inner::Backoff(b) => b.node_count() as u64,
            Inner::Markov { model, .. } => model.transitions(),
            Inner::Mithril { model, .. } => model.assoc_count(),
        }
    }

    /// Model consultations so far (every `predict`/`walk_next` call).
    pub fn table_lookups(&self) -> u64 {
        self.lookups
    }

    /// Accesses observed into the model so far (`observe` calls).
    pub fn table_updates(&self) -> u64 {
        self.updates
    }

    /// Distinct association rules ever mined (`pred.mined`; MITHRIL
    /// only, 0 elsewhere).
    pub fn mined(&self) -> u64 {
        match &self.inner {
            Inner::Mithril { model, .. } => model.mined(),
            _ => 0,
        }
    }

    fn count(
        &mut self,
        pred: Option<(Request, PredictionSource)>,
    ) -> Option<(Request, PredictionSource)> {
        if let Some((_, src)) = pred {
            self.emits += 1;
            if src == PredictionSource::Primary {
                self.hits += 1;
            }
        }
        pred
    }

    /// Predict the single next request after the last observed one
    /// (non-aggressive mode). IS_PPM configurations fall back to OBA
    /// when the graph cannot predict; Markov and MITHRIL do so only
    /// when configured with the `+oba` fallback.
    pub fn predict(&mut self, file_blocks: u64) -> Option<(Request, PredictionSource)> {
        self.lookups += 1;
        let last = self.last_request()?;
        let pred = match &self.inner {
            Inner::None => None,
            Inner::Oba(_) => {
                Oba::predict_after(last, file_blocks).map(|r| (r, PredictionSource::Primary))
            }
            Inner::IsPpm(p) => match p.predict_after(last, file_blocks) {
                Some(r) => Some((r, PredictionSource::Primary)),
                None => Oba::predict_after(last, file_blocks)
                    .map(|r| (r, PredictionSource::ObaFallback)),
            },
            Inner::Backoff(b) => match b.predict_after(last, file_blocks) {
                Some((r, _)) => Some((r, PredictionSource::Primary)),
                None => Oba::predict_after(last, file_blocks)
                    .map(|r| (r, PredictionSource::ObaFallback)),
            },
            Inner::Markov { model, fallback } => {
                let primary = (model.context().len() == model.order())
                    .then(|| model.next_after(model.context()))
                    .flatten()
                    .map(|b| Request::new(b, 1))
                    .filter(|r| r.within(file_blocks));
                match primary {
                    Some(r) => Some((r, PredictionSource::Primary)),
                    None if *fallback => Oba::predict_after(last, file_blocks)
                        .map(|r| (r, PredictionSource::ObaFallback)),
                    None => None,
                }
            }
            Inner::Mithril { model, fallback } => {
                let primary = model
                    .candidates(last.last_block())
                    .into_iter()
                    .map(|b| Request::new(b, 1))
                    .find(|r| r.within(file_blocks));
                match primary {
                    Some(r) => Some((r, PredictionSource::Primary)),
                    None if *fallback => Oba::predict_after(last, file_blocks)
                        .map(|r| (r, PredictionSource::ObaFallback)),
                    None => None,
                }
            }
        };
        self.count(pred)
    }

    /// Begin an aggressive walk at the last observed request. Returns
    /// `None` until at least one request has been observed (nothing to
    /// extrapolate from) or for the `None` algorithm.
    pub fn start_walk(&self) -> Option<Walk> {
        let cur = self.last_request()?;
        Some(match &self.inner {
            Inner::None => return None,
            Inner::Oba(_) => Walk::chain(cur, Vec::new()),
            Inner::IsPpm(p) => Walk::chain(cur, p.history().to_vec()),
            Inner::Backoff(b) => Walk::chain(cur, b.history().to_vec()),
            Inner::Markov { model, .. } => {
                let mut w = Walk::chain(cur, Vec::new());
                w.blocks = model.context().to_vec();
                w
            }
            Inner::Mithril { model, .. } => {
                let mut w = Walk::chain(cur, Vec::new());
                w.visited.extend(cur.blocks());
                w.frontier.extend(
                    model
                        .candidates(cur.last_block())
                        .into_iter()
                        .filter(|b| !w.visited.contains(b)),
                );
                w
            }
        })
    }

    /// Advance the walk one predicted request. Returns the predicted
    /// request and its source, or `None` when the walk must stop (the
    /// prediction leaves the file, per §3.1, or — for set predictors —
    /// the frontier is exhausted).
    ///
    /// IS_PPM walks that leave the learned graph continue OBA-style and
    /// re-synchronise with the graph as soon as their hypothetical
    /// context matches a known node again; Markov and MITHRIL walks do
    /// the same only under the `+oba` fallback.
    pub fn walk_next(
        &mut self,
        walk: &mut Walk,
        file_blocks: u64,
    ) -> Option<(Request, PredictionSource)> {
        self.lookups += 1;
        let pred = match &self.inner {
            Inner::None => None,
            Inner::Oba(_) => Oba::predict_after(walk.cur, file_blocks).map(|next| {
                walk.cur = next;
                (next, PredictionSource::Primary)
            }),
            Inner::IsPpm(p) => {
                let graph_step = (walk.pairs.len() == p.order())
                    .then(|| p.lookup(&walk.pairs))
                    .flatten()
                    .and_then(|node| p.step(node).map(|(_, pair)| pair));
                advance_walk(walk, graph_step, p.order(), file_blocks)
            }
            Inner::Backoff(b) => {
                let graph_step = b.step_from_history(&walk.pairs).map(|(pair, _)| pair);
                advance_walk(walk, graph_step, b.max_order(), file_blocks)
            }
            Inner::Markov { model, fallback } => {
                markov_walk_step(model, *fallback, walk, file_blocks)
            }
            Inner::Mithril { model, fallback } => {
                mithril_walk_step(model, *fallback, walk, file_blocks)
            }
        };
        self.count(pred)
    }
}

/// Apply one chain-walk step: take the graph's predicted pair if it has
/// one, otherwise the OBA fallback pair (the block right after the
/// walk's current request); bound it to the file; and slide the
/// hypothetical pair window forward.
fn advance_walk(
    walk: &mut Walk,
    graph_pair: Option<Pair>,
    order: usize,
    file_blocks: u64,
) -> Option<(Request, PredictionSource)> {
    let (pair, source) = match graph_pair {
        Some(pair) => (pair, PredictionSource::Primary),
        None => (
            Pair::new(walk.cur.size as i64, 1),
            PredictionSource::ObaFallback,
        ),
    };
    let next = apply_pair(walk.cur, pair, file_blocks)?;
    if walk.pairs.len() == order {
        walk.pairs.remove(0);
    }
    walk.pairs.push(pair);
    walk.cur = next;
    Some((next, source))
}

/// One Markov walk step: argmax successor of the hypothetical block
/// context, or the sequential block under the `+oba` fallback.
fn markov_walk_step(
    model: &BlockMarkov,
    fallback: bool,
    walk: &mut Walk,
    file_blocks: u64,
) -> Option<(Request, PredictionSource)> {
    let primary = (walk.blocks.len() == model.order())
        .then(|| model.next_after(&walk.blocks))
        .flatten()
        .filter(|&b| b < file_blocks);
    let (block, source) = match primary {
        Some(b) => (b, PredictionSource::Primary),
        None if fallback => {
            let b = walk.cur.end();
            if b >= file_blocks {
                return None;
            }
            (b, PredictionSource::ObaFallback)
        }
        None => return None,
    };
    if walk.blocks.len() == model.order() {
        walk.blocks.remove(0);
    }
    walk.blocks.push(block);
    walk.cur = Request::new(block, 1);
    Some((walk.cur, source))
}

/// One MITHRIL walk step: issue the strongest unvisited frontier
/// candidate and enqueue *its* candidates — a ranked breadth-first
/// expansion of the association graph. Under `+oba` an exhausted
/// frontier continues sequentially from the walk position.
fn mithril_walk_step(
    model: &Mithril,
    fallback: bool,
    walk: &mut Walk,
    file_blocks: u64,
) -> Option<(Request, PredictionSource)> {
    while let Some(c) = walk.frontier.pop_front() {
        if c >= file_blocks || !walk.visited.insert(c) {
            continue;
        }
        walk.frontier.extend(
            model
                .candidates(c)
                .into_iter()
                .filter(|b| !walk.visited.contains(b)),
        );
        walk.cur = Request::new(c, 1);
        return Some((walk.cur, PredictionSource::Primary));
    }
    if fallback {
        let b = walk.cur.end();
        if b < file_blocks && walk.visited.insert(b) {
            walk.cur = Request::new(b, 1);
            return Some((walk.cur, PredictionSource::ObaFallback));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AlgorithmKind;

    fn feed(p: &mut FilePredictor, reqs: &[(u64, u64)]) {
        for &(o, s) in reqs {
            p.observe(Request::new(o, s));
        }
    }

    #[test]
    fn none_predictor_is_silent() {
        let mut p = FilePredictor::new(AlgorithmKind::None, EdgeChoice::MostRecent);
        p.observe(Request::new(0, 1));
        assert!(p.predict(100).is_none());
        assert!(p.start_walk().is_none());
        assert_eq!((p.emits(), p.hits()), (0, 0));
    }

    #[test]
    fn oba_walk_is_sequential_scan() {
        let mut p = FilePredictor::new(AlgorithmKind::Oba, EdgeChoice::MostRecent);
        feed(&mut p, &[(4, 2)]);
        let mut walk = p.start_walk().unwrap();
        let mut blocks = Vec::new();
        while let Some((req, src)) = p.walk_next(&mut walk, 10) {
            assert_eq!(src, PredictionSource::Primary);
            blocks.extend(req.blocks());
        }
        assert_eq!(blocks, vec![6, 7, 8, 9]);
        assert_eq!((p.emits(), p.hits()), (4, 4));
    }

    #[test]
    fn isppm_walk_follows_learned_pattern() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        // Figure 1 pattern.
        feed(&mut p, &[(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)]);
        let mut walk = p.start_walk().unwrap();
        let mut preds = Vec::new();
        for _ in 0..4 {
            let (req, src) = p.walk_next(&mut walk, 100).unwrap();
            assert_eq!(src, PredictionSource::Primary);
            preds.push((req.offset, req.size));
        }
        assert_eq!(preds, vec![(19, 3), (24, 2), (27, 3), (32, 2)]);
    }

    #[test]
    fn isppm_walk_stops_at_eof() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)]);
        let mut walk = p.start_walk().unwrap();
        // File of 22 blocks: (19,3) fits exactly (ends at 22), next
        // prediction (24,2) does not.
        let (req, _) = p.walk_next(&mut walk, 22).unwrap();
        assert_eq!(req, Request::new(19, 3));
        assert!(p.walk_next(&mut walk, 22).is_none());
    }

    #[test]
    fn cold_graph_falls_back_to_oba() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 3 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 2)]);
        // Only one request: graph empty, fallback predicts block 2.
        let (req, src) = p.predict(100).unwrap();
        assert_eq!(req, Request::new(2, 1));
        assert_eq!(src, PredictionSource::ObaFallback);
        assert_eq!((p.emits(), p.hits()), (1, 0));
    }

    #[test]
    fn walk_resynchronises_with_graph_after_fallback() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        // Teach: a (+1, 1) step is followed by a (+10, 1) jump.
        feed(&mut p, &[(0, 1), (1, 1), (11, 1), (12, 1), (22, 1)]);
        // Context now (10,1). Graph: (1,1) -> (10,1) -> (1,1).
        let mut walk = p.start_walk().unwrap();
        let (r1, s1) = p.walk_next(&mut walk, 1000).unwrap();
        // From node (10,1): MRU edge -> (1,1): 22+1=23.
        assert_eq!((r1, s1), (Request::new(23, 1), PredictionSource::Primary));
        let (r2, s2) = p.walk_next(&mut walk, 1000).unwrap();
        // From node (1,1): MRU edge -> (10,1): 23+10=33.
        assert_eq!((r2, s2), (Request::new(33, 1), PredictionSource::Primary));
    }

    #[test]
    fn fallback_share_of_walk_with_unknown_context() {
        // Graph trained on pattern A, walk falls off it: a stride the
        // graph has never seen forces OBA fallback, and the fallback's
        // own (size,1) pair may then re-enter the graph.
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 4), (8, 4), (16, 4)]); // stride 8, size 4
        let mut walk = p.start_walk().unwrap();
        let (r1, s1) = p.walk_next(&mut walk, 1000).unwrap();
        assert_eq!((r1, s1), (Request::new(24, 4), PredictionSource::Primary));
    }

    #[test]
    fn markov_walk_follows_block_cycle() {
        let kind = AlgorithmKind::Markov {
            order: 1,
            fallback: false,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        feed(
            &mut p,
            &[(5, 1), (9, 1), (2, 1), (5, 1), (9, 1), (2, 1), (5, 1)],
        );
        let mut walk = p.start_walk().unwrap();
        let mut blocks = Vec::new();
        for _ in 0..4 {
            let (req, src) = p.walk_next(&mut walk, 100).unwrap();
            assert_eq!(src, PredictionSource::Primary);
            blocks.push(req.offset);
        }
        assert_eq!(blocks, vec![9, 2, 5, 9], "walks the learned cycle");
        assert_eq!((p.emits(), p.hits()), (4, 4));
    }

    #[test]
    fn markov_without_fallback_stops_on_unknown_context() {
        let kind = AlgorithmKind::Markov {
            order: 1,
            fallback: false,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 1)]);
        assert!(p.predict(100).is_none(), "no transitions learned yet");
        let mut walk = p.start_walk().unwrap();
        assert!(p.walk_next(&mut walk, 100).is_none());
    }

    #[test]
    fn markov_fallback_walks_sequentially_when_cold() {
        let kind = AlgorithmKind::Markov {
            order: 2,
            fallback: true,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        feed(&mut p, &[(7, 1)]);
        let mut walk = p.start_walk().unwrap();
        let (req, src) = p.walk_next(&mut walk, 100).unwrap();
        assert_eq!(
            (req, src),
            (Request::new(8, 1), PredictionSource::ObaFallback)
        );
        let (req, _) = p.walk_next(&mut walk, 100).unwrap();
        assert_eq!(req, Request::new(9, 1));
    }

    #[test]
    fn mithril_walk_is_ranked_frontier_expansion() {
        let kind = AlgorithmKind::Mithril {
            lookahead: 3,
            min_support: 2,
            fallback: false,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        // 10 is followed by {90, 40} repeatedly; 90 by 40.
        feed(
            &mut p,
            &[
                (10, 1),
                (90, 1),
                (40, 1),
                (10, 1),
                (90, 1),
                (40, 1),
                (10, 1),
            ],
        );
        let mut walk = p.start_walk().unwrap();
        let mut issued = Vec::new();
        while let Some((req, src)) = p.walk_next(&mut walk, 1000) {
            assert_eq!(src, PredictionSource::Primary);
            assert_eq!(req.size, 1, "set candidates are single blocks");
            issued.push(req.offset);
        }
        // 90 outranks 40 from block 10 (equal support, reinforced
        // earlier — the nearer successor in the stream); the demanded
        // block 10 itself is never issued and each candidate is issued
        // exactly once despite graph cycles.
        assert_eq!(issued, vec![90, 40]);
        assert_eq!(p.mined(), p.table_size());
    }

    #[test]
    fn mithril_fallback_continues_sequentially_after_frontier() {
        let kind = AlgorithmKind::Mithril {
            lookahead: 2,
            min_support: 2,
            fallback: true,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        feed(&mut p, &[(10, 1), (90, 1), (10, 1), (90, 1), (10, 1)]);
        let mut walk = p.start_walk().unwrap();
        let (r1, s1) = p.walk_next(&mut walk, 100).unwrap();
        assert_eq!((r1, s1), (Request::new(90, 1), PredictionSource::Primary));
        // Frontier exhausted (90's candidate 10 is visited): continue
        // one-block-ahead from the walk position.
        let (r2, s2) = p.walk_next(&mut walk, 100).unwrap();
        assert_eq!(
            (r2, s2),
            (Request::new(91, 1), PredictionSource::ObaFallback)
        );
    }

    #[test]
    fn mithril_walk_respects_file_bounds() {
        let kind = AlgorithmKind::Mithril {
            lookahead: 2,
            min_support: 1,
            fallback: false,
        };
        let mut p = FilePredictor::new(kind, EdgeChoice::MostRecent);
        feed(&mut p, &[(3, 1), (50, 1), (3, 1)]);
        // Association 3 -> 50 exists but the file has only 10 blocks.
        let mut walk = p.start_walk().unwrap();
        assert!(p.walk_next(&mut walk, 10).is_none());
    }
}
