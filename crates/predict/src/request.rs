//! Block-granular file requests.

use std::fmt;

/// A file request at block granularity: `size` consecutive blocks
/// starting at block `offset` of one file.
///
/// The paper models every user operation this way (§2.2): "The size is
/// the number of file blocks in a request. If a given operation only
/// requests 2 bytes but from two different blocks, we assume that it was
/// a two block request."
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// First block touched.
    pub offset: u64,
    /// Number of consecutive blocks touched (always ≥ 1).
    pub size: u64,
}

impl Request {
    /// Create a request for `size` blocks starting at block `offset`.
    ///
    /// # Panics
    /// Panics if `size == 0`; zero-block requests are meaningless and
    /// would corrupt interval/size prediction.
    pub fn new(offset: u64, size: u64) -> Self {
        assert!(size > 0, "zero-sized request");
        Request { offset, size }
    }

    /// Convert a byte-granular access into a block-granular request.
    ///
    /// Returns `None` for zero-length accesses (they touch no block).
    pub fn from_bytes(byte_offset: u64, byte_len: u64, block_size: u64) -> Option<Self> {
        assert!(block_size > 0, "zero block size");
        if byte_len == 0 {
            return None;
        }
        let first = byte_offset / block_size;
        let last = (byte_offset + byte_len - 1) / block_size;
        Some(Request::new(first, last - first + 1))
    }

    /// Block just past the end of the request.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.size
    }

    /// Last block of the request.
    #[inline]
    pub fn last_block(&self) -> u64 {
        self.offset + self.size - 1
    }

    /// Iterate over the touched block numbers.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.offset..self.end()
    }

    /// True if every touched block lies inside a file of `file_blocks`
    /// blocks.
    #[inline]
    pub fn within(&self, file_blocks: u64) -> bool {
        self.end() <= file_blocks
    }

    /// Signed distance, in blocks, from the first block of `prev` to the
    /// first block of `self` — the paper's *offset interval*.
    #[inline]
    pub fn interval_from(&self, prev: &Request) -> i64 {
        self.offset as i64 - prev.offset as i64
    }
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.offset, self.end())
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} blocks @ {}", self.size, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion_spans_touched_blocks() {
        // The paper's example: 2 bytes touching two different blocks is
        // a two-block request.
        let r = Request::from_bytes(8191, 2, 8192).unwrap();
        assert_eq!(r, Request::new(0, 2));
    }

    #[test]
    fn byte_conversion_single_block() {
        let r = Request::from_bytes(100, 200, 8192).unwrap();
        assert_eq!(r, Request::new(0, 1));
        let r = Request::from_bytes(8192, 8192, 8192).unwrap();
        assert_eq!(r, Request::new(1, 1));
    }

    #[test]
    fn zero_length_access_touches_nothing() {
        assert_eq!(Request::from_bytes(100, 0, 8192), None);
    }

    #[test]
    fn interval_matches_paper_example() {
        // Figure 1: (0,2) -> (3,3) is interval 3; (3,3) -> (8,2) is 5.
        let a = Request::new(0, 2);
        let b = Request::new(3, 3);
        let c = Request::new(8, 2);
        assert_eq!(b.interval_from(&a), 3);
        assert_eq!(c.interval_from(&b), 5);
        // Backward jumps give negative intervals.
        assert_eq!(a.interval_from(&c), -8);
    }

    #[test]
    fn bounds() {
        let r = Request::new(10, 4);
        assert_eq!(r.end(), 14);
        assert_eq!(r.last_block(), 13);
        assert!(r.within(14));
        assert!(!r.within(13));
        assert_eq!(r.blocks().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_size_panics() {
        Request::new(0, 0);
    }
}
