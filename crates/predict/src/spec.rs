//! The predictor registry: [`AlgorithmKind`] names every predictor the
//! zoo knows, and [`PredictorSpec`] parses/prints the CLI spelling of
//! one (`is_ppm:3`, `markov:2`, `mithril+oba`, …).

use std::fmt;

/// Default MITHRIL lookahead-window length, in observed blocks.
pub const MITHRIL_LOOKAHEAD: usize = 16;

/// Default MITHRIL minimum association support (an `a → b` rule must
/// have been mined at least this often before it may be emitted).
pub const MITHRIL_MIN_SUPPORT: u32 = 2;

/// Which base predictor drives prefetching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlgorithmKind {
    /// No prefetching at all (the paper's `NP` baseline).
    None,
    /// One Block Ahead (§2.1).
    Oba,
    /// Interval-and-Size PPM of the given order (§2.2), with OBA
    /// fallback during cold start.
    IsPpm {
        /// Markov order `j` (the paper evaluates 1 and 3).
        order: usize,
    },
    /// IS_PPM with classic PPM order back-off (extension): maintain
    /// every order `1..=order` and predict with the highest one that
    /// knows the current context, escaping downwards instead of
    /// falling straight back to OBA.
    IsPpmBackoff {
        /// Highest Markov order maintained.
        order: usize,
    },
    /// Per-file block-granular Markov chain of the given order
    /// (extension): transition counts over raw block numbers with
    /// deterministic (count, recency, block) tie-breaking.
    Markov {
        /// Context length in blocks (1 or 2).
        order: usize,
        /// Fall back to OBA when the chain has no prediction.
        fallback: bool,
    },
    /// MITHRIL-style association miner (extension): a timestamped
    /// lookahead window mines block→block association rules; prediction
    /// emits a ranked candidate *set*, not a linear chain.
    Mithril {
        /// Lookahead-window length, in observed blocks.
        lookahead: usize,
        /// Minimum support before an association may be emitted.
        min_support: u32,
        /// Fall back to OBA when no association qualifies.
        fallback: bool,
    },
}

/// A parsed predictor specification — the registry entry selected by a
/// CLI string such as `is_ppm:3` or `mithril+oba`.
///
/// `parse` and [`canonical`](Self::canonical) round-trip:
///
/// ```
/// use predict::PredictorSpec;
/// let spec = PredictorSpec::parse("markov:2+oba").unwrap();
/// assert_eq!(spec.canonical(), "markov:2+oba");
/// assert_eq!(PredictorSpec::parse(&spec.canonical()).unwrap(), spec);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredictorSpec {
    /// The algorithm this spec selects.
    pub kind: AlgorithmKind,
}

/// The rejection of a predictor spec string. Its `Display` includes the
/// full registry listing so CLI users see every valid name and an
/// example spelling on failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    spec: String,
}

impl SpecError {
    /// The rejected input string.
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unknown predictor spec {:?}", self.spec)?;
        f.write_str(&registry_help())
    }
}

impl std::error::Error for SpecError {}

/// Registry rows: name, parameter syntax, one-line description, example.
const REGISTRY: &[(&str, &str, &str)] = &[
    ("np", "np", "no prefetching (baseline)"),
    ("oba", "oba", "one block ahead (§2.1)"),
    (
        "is_ppm",
        "is_ppm[:J]",
        "interval/size PPM of order J (default 1), OBA fallback built in",
    ),
    (
        "is_ppm_backoff",
        "is_ppm_backoff[:J]",
        "IS_PPM with escape to lower orders 1..=J",
    ),
    (
        "markov",
        "markov[:J][+oba]",
        "block-Markov chain, context of J in {1,2} blocks (default 1)",
    ),
    (
        "mithril",
        "mithril[:W[,S]][+oba]",
        "association miner, lookahead W >= 2 (default 16), min support S >= 1 (default 2)",
    ),
];

/// The registry listing shown on parse errors and in `--help` output:
/// every valid predictor name with its parameter syntax and example
/// specs.
pub fn registry_help() -> String {
    use std::fmt::Write;
    let mut out = String::from("valid predictor specs:\n");
    for (_, syntax, desc) in REGISTRY {
        writeln!(out, "    {syntax:<22} {desc}").unwrap();
    }
    out.push_str("  a trailing +oba adds the OBA cold-start fallback (markov, mithril)\n");
    out.push_str("  examples: is_ppm:3  markov:2  mithril  mithril:32,3+oba\n");
    out
}

impl PredictorSpec {
    /// Wrap an algorithm as a spec.
    pub const fn new(kind: AlgorithmKind) -> Self {
        PredictorSpec { kind }
    }

    /// Parse a CLI predictor spec. See [`registry_help`] for the
    /// accepted grammar.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let err = || SpecError {
            spec: s.to_string(),
        };
        let (body, fallback) = match s.strip_suffix("+oba") {
            Some(b) => (b, true),
            None => (s, false),
        };
        let (base, params) = match body.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (body, None),
        };
        let kind = match base {
            "np" | "oba" => {
                // No parameters, and a +oba fallback makes no sense on
                // NP (it would prefetch) or OBA (it *is* OBA).
                if params.is_some() || fallback {
                    return Err(err());
                }
                if base == "np" {
                    AlgorithmKind::None
                } else {
                    AlgorithmKind::Oba
                }
            }
            "is_ppm" | "is_ppm_backoff" => {
                // The paper's IS_PPM builds the OBA fallback in; accept
                // the explicit +oba spelling as the same thing.
                let order = match params {
                    Some(p) => p
                        .parse::<usize>()
                        .ok()
                        .filter(|&j| j >= 1)
                        .ok_or_else(err)?,
                    None => 1,
                };
                if base == "is_ppm" {
                    AlgorithmKind::IsPpm { order }
                } else {
                    AlgorithmKind::IsPpmBackoff { order }
                }
            }
            "markov" => {
                let order = match params {
                    Some(p) => p
                        .parse::<usize>()
                        .ok()
                        .filter(|&j| (1..=2).contains(&j))
                        .ok_or_else(err)?,
                    None => 1,
                };
                AlgorithmKind::Markov { order, fallback }
            }
            "mithril" => {
                let (lookahead, min_support) = match params {
                    Some(p) => {
                        let (w, s) = match p.split_once(',') {
                            Some((w, s)) => (
                                w.parse::<usize>().ok().ok_or_else(err)?,
                                s.parse::<u32>().ok().ok_or_else(err)?,
                            ),
                            None => (
                                p.parse::<usize>().ok().ok_or_else(err)?,
                                MITHRIL_MIN_SUPPORT,
                            ),
                        };
                        if w < 2 || s < 1 {
                            return Err(err());
                        }
                        (w, s)
                    }
                    None => (MITHRIL_LOOKAHEAD, MITHRIL_MIN_SUPPORT),
                };
                AlgorithmKind::Mithril {
                    lookahead,
                    min_support,
                    fallback,
                }
            }
            _ => return Err(err()),
        };
        Ok(PredictorSpec { kind })
    }

    /// The canonical spelling of this spec — parsing it yields back the
    /// same spec (`parse(canonical()) == self`).
    pub fn canonical(&self) -> String {
        match self.kind {
            AlgorithmKind::None => "np".to_string(),
            AlgorithmKind::Oba => "oba".to_string(),
            AlgorithmKind::IsPpm { order } => format!("is_ppm:{order}"),
            AlgorithmKind::IsPpmBackoff { order } => format!("is_ppm_backoff:{order}"),
            AlgorithmKind::Markov { order, fallback } => {
                format!("markov:{order}{}", if fallback { "+oba" } else { "" })
            }
            AlgorithmKind::Mithril {
                lookahead,
                min_support,
                fallback,
            } => format!(
                "mithril:{lookahead},{min_support}{}",
                if fallback { "+oba" } else { "" }
            ),
        }
    }
}

impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_registry_name() {
        for (spec, kind) in [
            ("np", AlgorithmKind::None),
            ("oba", AlgorithmKind::Oba),
            ("is_ppm", AlgorithmKind::IsPpm { order: 1 }),
            ("is_ppm:3", AlgorithmKind::IsPpm { order: 3 }),
            ("is_ppm_backoff", AlgorithmKind::IsPpmBackoff { order: 1 }),
            ("is_ppm_backoff:2", AlgorithmKind::IsPpmBackoff { order: 2 }),
            (
                "markov",
                AlgorithmKind::Markov {
                    order: 1,
                    fallback: false,
                },
            ),
            (
                "markov:2",
                AlgorithmKind::Markov {
                    order: 2,
                    fallback: false,
                },
            ),
            (
                "markov:2+oba",
                AlgorithmKind::Markov {
                    order: 2,
                    fallback: true,
                },
            ),
            (
                "mithril",
                AlgorithmKind::Mithril {
                    lookahead: MITHRIL_LOOKAHEAD,
                    min_support: MITHRIL_MIN_SUPPORT,
                    fallback: false,
                },
            ),
            (
                "mithril:32",
                AlgorithmKind::Mithril {
                    lookahead: 32,
                    min_support: MITHRIL_MIN_SUPPORT,
                    fallback: false,
                },
            ),
            (
                "mithril:32,3+oba",
                AlgorithmKind::Mithril {
                    lookahead: 32,
                    min_support: 3,
                    fallback: true,
                },
            ),
        ] {
            assert_eq!(PredictorSpec::parse(spec).unwrap().kind, kind, "{spec}");
        }
    }

    #[test]
    fn canonical_round_trips() {
        for spec in [
            "np",
            "oba",
            "is_ppm:1",
            "is_ppm:3",
            "is_ppm_backoff:2",
            "markov:1",
            "markov:2+oba",
            "mithril:16,2",
            "mithril:32,3+oba",
        ] {
            let parsed = PredictorSpec::parse(spec).unwrap();
            assert_eq!(parsed.canonical(), spec);
            assert_eq!(PredictorSpec::parse(&parsed.canonical()).unwrap(), parsed);
        }
        // Defaulted parameters print explicitly in canonical form.
        assert_eq!(
            PredictorSpec::parse("is_ppm").unwrap().canonical(),
            "is_ppm:1"
        );
        assert_eq!(
            PredictorSpec::parse("markov").unwrap().canonical(),
            "markov:1"
        );
        assert_eq!(
            PredictorSpec::parse("mithril").unwrap().canonical(),
            "mithril:16,2"
        );
        // IS_PPM has the OBA fallback built in: +oba is the same spec.
        assert_eq!(
            PredictorSpec::parse("is_ppm:3"),
            PredictorSpec::parse("is_ppm:3+oba")
        );
    }

    #[test]
    fn rejections() {
        for bad in [
            "",
            "wizardry",
            "np:1",
            "np+oba",
            "oba:2",
            "oba+oba",
            "is_ppm:0",
            "is_ppm:x",
            "markov:0",
            "markov:3",
            "markov:",
            "mithril:1",
            "mithril:8,0",
            "mithril:a,b",
            "mithril:,",
            "+oba",
        ] {
            let e = PredictorSpec::parse(bad).unwrap_err();
            assert_eq!(e.spec(), bad);
            let msg = e.to_string();
            assert!(msg.contains("unknown predictor spec"), "{bad}: {msg}");
            assert!(msg.contains("mithril[:W[,S]][+oba]"), "{bad}: {msg}");
        }
    }

    #[test]
    fn registry_help_lists_every_name() {
        let help = registry_help();
        for (name, ..) in REGISTRY {
            assert!(help.contains(name), "registry help misses {name}");
        }
        assert!(help.contains("examples:"));
    }
}
