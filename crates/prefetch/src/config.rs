//! Algorithm configuration and the seven named configurations of the
//! paper's evaluation.

use std::fmt;

pub use predict::AlgorithmKind;
use predict::{EdgeChoice, PredictorSpec};

/// Cap on how many prefetched blocks of one file may be in flight at
/// once when running aggressively (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggressiveLimit {
    /// The paper's *linear* limit: one block per file at a time.
    /// Parallelism across disks comes from prefetching *different*
    /// files concurrently.
    One,
    /// At most `k` blocks of the file in flight (ablation).
    Window(usize),
    /// No limit (§3.1's raw aggressive prefetching; ablation).
    Unlimited,
}

impl AggressiveLimit {
    /// The numeric cap (usize::MAX for unlimited).
    pub fn cap(&self) -> usize {
        match self {
            AggressiveLimit::One => 1,
            AggressiveLimit::Window(k) => {
                assert!(*k > 0, "window must be positive");
                *k
            }
            AggressiveLimit::Unlimited => usize::MAX,
        }
    }
}

/// Full configuration of a per-file prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchConfig {
    /// Base predictor.
    pub algorithm: AlgorithmKind,
    /// If `Some`, run the aggressive driver (§3.1) with the given
    /// in-flight limit; if `None`, prefetch a single prediction per
    /// demand request (the non-aggressive algorithms of §2).
    pub aggressive: Option<AggressiveLimit>,
    /// Edge-selection policy for IS_PPM (MRU per the paper; frequency
    /// for the ablation).
    pub edge_choice: EdgeChoice,
    /// Maximum number of issued-but-not-yet-demanded blocks an
    /// aggressive walk may run ahead of its consumer (a read-ahead
    /// window). The paper's algorithms have no such cap (`None`
    /// reproduces that exactly); any real prefetcher bounds its lead,
    /// and an unbounded walk restarted under cache pressure refetches
    /// entire files. `DEFAULT_LEAD_CAP` blocks by default.
    pub lead_cap: Option<u64>,
}

/// Default aggressive-walk lead cap, in blocks (8 MB of 8 KB blocks).
pub const DEFAULT_LEAD_CAP: u64 = 1024;

impl PrefetchConfig {
    /// `NP` — no prefetching.
    pub const fn np() -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::None,
            aggressive: None,
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `OBA` — conservative one-block-ahead.
    pub const fn oba() -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::Oba,
            aggressive: None,
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `IS_PPM:j` — non-aggressive interval/size PPM.
    pub const fn is_ppm(order: usize) -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::IsPpm { order },
            aggressive: None,
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `Ln_Agr_OBA` — linear aggressive one-block-ahead (sequential
    /// read-ahead to end of file, one block in flight).
    pub const fn ln_agr_oba() -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::Oba,
            aggressive: Some(AggressiveLimit::One),
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `Ln_Agr_IS_PPM:j` — linear aggressive interval/size PPM.
    pub const fn ln_agr_is_ppm(order: usize) -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::IsPpm { order },
            aggressive: Some(AggressiveLimit::One),
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `IS_PPM*:j` — non-aggressive IS_PPM with order back-off
    /// (extension beyond the paper).
    pub const fn is_ppm_backoff(order: usize) -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::IsPpmBackoff { order },
            aggressive: None,
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// `Ln_Agr_IS_PPM*:j` — linear aggressive IS_PPM with order
    /// back-off (extension beyond the paper).
    pub const fn ln_agr_is_ppm_backoff(order: usize) -> Self {
        PrefetchConfig {
            algorithm: AlgorithmKind::IsPpmBackoff { order },
            aggressive: Some(AggressiveLimit::One),
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// Any registry predictor with an optional aggressive driver —
    /// the generic constructor behind `lapsim --predictor` and the
    /// predictor-zoo ablation.
    pub const fn with_predictor(kind: AlgorithmKind, aggressive: Option<AggressiveLimit>) -> Self {
        PrefetchConfig {
            algorithm: kind,
            aggressive,
            edge_choice: EdgeChoice::MostRecent,
            lead_cap: Some(DEFAULT_LEAD_CAP),
        }
    }

    /// The canonical registry spelling of this configuration's
    /// predictor (`is_ppm:1`, `mithril:16,2+oba`, …) — what the
    /// `pred.name` registry row reports.
    pub fn predictor_name(&self) -> String {
        PredictorSpec::new(self.algorithm).canonical()
    }

    /// The seven configurations of the paper's evaluation, in the order
    /// the figures list them.
    pub fn paper_suite() -> [PrefetchConfig; 7] {
        [
            Self::np(),
            Self::oba(),
            Self::ln_agr_oba(),
            Self::is_ppm(1),
            Self::ln_agr_is_ppm(1),
            Self::is_ppm(3),
            Self::ln_agr_is_ppm(3),
        ]
    }

    /// True if this configuration prefetches at all.
    pub fn prefetches(&self) -> bool {
        self.algorithm != AlgorithmKind::None
    }

    /// True if the aggressive driver is enabled.
    pub fn is_aggressive(&self) -> bool {
        self.aggressive.is_some()
    }

    /// The paper's name for this configuration (`NP`, `OBA`,
    /// `Ln_Agr_IS_PPM:3`, …).
    pub fn paper_name(&self) -> String {
        let base = match self.algorithm {
            AlgorithmKind::None => return "NP".to_string(),
            AlgorithmKind::Oba => "OBA".to_string(),
            AlgorithmKind::IsPpm { order } => format!("IS_PPM:{order}"),
            AlgorithmKind::IsPpmBackoff { order } => format!("IS_PPM*:{order}"),
            AlgorithmKind::Markov { order, fallback } => {
                format!("MARKOV:{order}{}", if fallback { "+OBA" } else { "" })
            }
            AlgorithmKind::Mithril { fallback, .. } => {
                format!("MITHRIL{}", if fallback { "+OBA" } else { "" })
            }
        };
        match self.aggressive {
            None => base,
            Some(AggressiveLimit::One) => format!("Ln_Agr_{base}"),
            Some(AggressiveLimit::Window(k)) => format!("W{k}_Agr_{base}"),
            Some(AggressiveLimit::Unlimited) => format!("Agr_{base}"),
        }
    }
}

impl fmt::Display for PrefetchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(PrefetchConfig::np().paper_name(), "NP");
        assert_eq!(PrefetchConfig::oba().paper_name(), "OBA");
        assert_eq!(PrefetchConfig::is_ppm(1).paper_name(), "IS_PPM:1");
        assert_eq!(PrefetchConfig::is_ppm(3).paper_name(), "IS_PPM:3");
        assert_eq!(PrefetchConfig::ln_agr_oba().paper_name(), "Ln_Agr_OBA");
        assert_eq!(
            PrefetchConfig::ln_agr_is_ppm(3).paper_name(),
            "Ln_Agr_IS_PPM:3"
        );
        let unlimited = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Unlimited),
            ..PrefetchConfig::oba()
        };
        assert_eq!(unlimited.paper_name(), "Agr_OBA");
        let window = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Window(4)),
            ..PrefetchConfig::is_ppm(1)
        };
        assert_eq!(window.paper_name(), "W4_Agr_IS_PPM:1");
    }

    #[test]
    fn suite_has_seven_unique_configs() {
        let suite = PrefetchConfig::paper_suite();
        let names: std::collections::HashSet<_> = suite.iter().map(|c| c.paper_name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn limit_caps() {
        assert_eq!(AggressiveLimit::One.cap(), 1);
        assert_eq!(AggressiveLimit::Window(8).cap(), 8);
        assert_eq!(AggressiveLimit::Unlimited.cap(), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        AggressiveLimit::Window(0).cap();
    }

    #[test]
    fn backoff_names() {
        assert_eq!(PrefetchConfig::is_ppm_backoff(3).paper_name(), "IS_PPM*:3");
        assert_eq!(
            PrefetchConfig::ln_agr_is_ppm_backoff(2).paper_name(),
            "Ln_Agr_IS_PPM*:2"
        );
    }

    #[test]
    fn zoo_names() {
        let markov = PrefetchConfig::with_predictor(
            AlgorithmKind::Markov {
                order: 2,
                fallback: true,
            },
            Some(AggressiveLimit::One),
        );
        assert_eq!(markov.paper_name(), "Ln_Agr_MARKOV:2+OBA");
        assert_eq!(markov.predictor_name(), "markov:2+oba");
        let mithril = PrefetchConfig::with_predictor(
            AlgorithmKind::Mithril {
                lookahead: 16,
                min_support: 2,
                fallback: false,
            },
            None,
        );
        assert_eq!(mithril.paper_name(), "MITHRIL");
        assert_eq!(mithril.predictor_name(), "mithril:16,2");
        // The generic constructor reproduces the named ones exactly.
        assert_eq!(
            PrefetchConfig::with_predictor(
                AlgorithmKind::IsPpm { order: 1 },
                Some(AggressiveLimit::One)
            ),
            PrefetchConfig::ln_agr_is_ppm(1)
        );
    }

    #[test]
    fn np_does_not_prefetch() {
        assert!(!PrefetchConfig::np().prefetches());
        assert!(PrefetchConfig::oba().prefetches());
        assert!(!PrefetchConfig::oba().is_aggressive());
        assert!(PrefetchConfig::ln_agr_oba().is_aggressive());
    }
}
