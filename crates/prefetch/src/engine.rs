//! The per-file prefetch engine: simple and (linear) aggressive modes.

use std::collections::{HashSet, VecDeque};

use lapobs::{Event, NoopRecorder, Obs, Recorder, WalkStopReason, NO_RID};

use predict::{AlgorithmKind, FilePredictor, PredictionSource, Request, Walk};

use crate::config::PrefetchConfig;
use crate::stats::PrefetchStats;

/// Per-file prefetch driver implementing §3 of the paper.
///
/// The engine is entirely pull-based and cache-agnostic:
///
/// 1. The caller reports every demand request via
///    [`on_demand`](Self::on_demand). The engine updates the predictor
///    and decides whether the request confirms the current prefetching
///    path or miss-predicts it (restarting the path in that case).
/// 2. The caller pulls block numbers to prefetch via
///    [`next_block`](Self::next_block), passing a closure that says
///    whether a block is already cached ("prefetch blocks continuously
///    as long as it can predict data that is not in the cache yet").
/// 3. When a prefetched block arrives, the caller reports
///    [`on_prefetch_complete`](Self::on_prefetch_complete) and pulls
///    again — with the linear limit this is what sustains the
///    one-block-at-a-time pipeline.
///
/// In non-aggressive mode each demand request produces at most one
/// predicted request, all of whose blocks may be fetched concurrently
/// (that is what makes plain `IS_PPM` "quite aggressive" on large
/// requests, §5.2). In aggressive mode the engine walks the prediction
/// graph indefinitely, bounded by end-of-file and by a cycle-safety
/// budget, with at most `limit.cap()` blocks in flight.
pub struct FilePrefetcher {
    config: PrefetchConfig,
    file_blocks: u64,
    predictor: FilePredictor,
    /// Active aggressive walk, if any.
    walk: Option<Walk>,
    /// Blocks already decided but not yet handed out.
    queue: VecDeque<(u64, PredictionSource)>,
    /// Every block predicted on the current path since the last
    /// restart, whether handed out, queued, or skipped as cached.
    path: HashSet<u64>,
    in_flight: usize,
    /// Remaining blocks the current walk may still emit (guards against
    /// cyclic prediction graphs walking forever inside the file).
    walk_budget: u64,
    /// Predicted blocks found already cached since the last issued
    /// block; a long run means the data ahead is resident and the walk
    /// has nothing to contribute.
    cached_run: u64,
    /// Issued-minus-demanded block count — the prefetcher's net lead
    /// over its consumer, bounded by `config.lead_cap`. Deliberately
    /// *not* reset on restarts: a thrashing walk (prefetches evicted
    /// before use, every demand a miss-prediction) then self-clocks to
    /// the demand rate instead of streaming the file over and over.
    lead: u64,
    /// Request id of the demand read that most recently drove the
    /// engine ([`NO_RID`] until the first attributed demand) — the
    /// "parent" stamped on every issued prefetch for causal tracing.
    parent_rid: u32,
    /// Walk generation: increments on every walk start/restart, so a
    /// trace can group prefetch issues into one prediction path.
    walk_gen: u32,
    stats: PrefetchStats,
}

/// An aggressive walk stops after this many consecutive predicted
/// blocks were found already cached: everything ahead is resident, so
/// prefetching is satisfied. (A later miss-prediction restarts the
/// walk from the new position anyway.) Without this cutoff a restarted
/// walk on a fully cached file grinds block-by-block to end-of-file,
/// which no real prefetcher would do — it would also make large-cache
/// simulations quadratically slow.
const CACHED_RUN_STOP: u64 = 64;

impl FilePrefetcher {
    /// Create an engine for one file of `file_blocks` blocks.
    pub fn new(config: PrefetchConfig, file_blocks: u64) -> Self {
        FilePrefetcher {
            predictor: FilePredictor::new(config.algorithm, config.edge_choice),
            config,
            file_blocks,
            walk: None,
            queue: VecDeque::new(),
            path: HashSet::new(),
            in_flight: 0,
            walk_budget: 0,
            cached_run: 0,
            lead: 0,
            parent_rid: NO_RID,
            walk_gen: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> PrefetchConfig {
        self.config
    }

    /// File size in blocks (updated via [`set_file_blocks`](Self::set_file_blocks)
    /// when the file grows).
    pub fn file_blocks(&self) -> u64 {
        self.file_blocks
    }

    /// Inform the engine that the file grew (writes past EOF) or was
    /// truncated. Growth takes effect from the next prediction on; a
    /// truncation also drops the queued blocks and the live walk, which
    /// may now point past the new end of file.
    pub fn set_file_blocks(&mut self, blocks: u64) {
        if blocks < self.file_blocks {
            self.queue.clear();
            self.path.retain(|&b| b < blocks);
            self.walk = None;
        }
        self.file_blocks = blocks;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Blocks currently being prefetched.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The predictor (for diagnostics/tests).
    pub fn predictor(&self) -> &FilePredictor {
        &self.predictor
    }

    /// Current walk generation (0 before the first walk; increments on
    /// every start/restart).
    pub fn walk_gen(&self) -> u32 {
        self.walk_gen
    }

    /// Request id of the demand read that most recently drove the
    /// engine ([`NO_RID`] if none was attributed).
    pub fn parent_rid(&self) -> u32 {
        self.parent_rid
    }

    /// Report a demand request (block-granular). Updates the predictor
    /// and the prefetching path.
    ///
    /// Equivalent to [`on_demand_with_residency`]
    /// (Self::on_demand_with_residency) with `fully_cached = true`:
    /// an on-path request never restarts the walk.
    pub fn on_demand(&mut self, req: Request) {
        self.on_demand_with_residency(req, true);
    }

    /// Report a demand request together with whether all of its blocks
    /// were *covered* — resident in the cache or already being fetched.
    ///
    /// The paper's rule keeps the walk running while requests stay on
    /// the predicted path. But an on-path request for blocks that are
    /// neither resident nor in flight means the "already prefetched"
    /// data was evicted — the blocks have, in effect, not been
    /// prefetched any more. Continuing would leave the walk streaming
    /// uselessly ahead of a thrashing cache (or dormant, if it already
    /// ended), so prefetching restarts from the current position.
    pub fn on_demand_with_residency(&mut self, req: Request, fully_cached: bool) {
        let mut noop = NoopRecorder;
        self.on_demand_with_residency_obs(
            req,
            fully_cached,
            NO_RID,
            &mut Obs::new(0, 0, &mut noop),
        );
    }

    /// [`on_demand_with_residency`](Self::on_demand_with_residency),
    /// emitting walk lifecycle and mispredict events into `obs` (whose
    /// scope id should be the file this engine serves). `rid` is the
    /// demand read driving the engine; it becomes the parent id stamped
    /// on every prefetch the engine issues until the next demand. With
    /// a no-op recorder this is exactly the plain method.
    pub fn on_demand_with_residency_obs<R: Recorder>(
        &mut self,
        req: Request,
        fully_cached: bool,
        rid: u32,
        obs: &mut Obs<'_, R>,
    ) {
        if self.config.algorithm == AlgorithmKind::None {
            return;
        }
        self.parent_rid = rid;
        let had_prediction = !self.path.is_empty();
        let on_path = had_prediction && req.blocks().all(|b| self.path.contains(&b));
        if had_prediction {
            if on_path {
                self.stats.requests_on_path += 1;
            } else {
                self.stats.requests_off_path += 1;
                obs.emit(|file| Event::Mispredict {
                    file,
                    block: req.offset,
                    rid,
                });
            }
        } else {
            self.stats.requests_unpredicted += 1;
        }

        self.predictor.observe(req);

        if self.config.is_aggressive() {
            // Every demand request consumes prefetcher lead, letting a
            // lead-capped walk advance again.
            self.lead = self.lead.saturating_sub(req.size);
            // "If the requested blocks have already been prefetched ...
            // the system continues bringing new blocks as if the user
            // had not requested any block" (§3.1). Otherwise restart
            // from the new position. A walk whose on-path blocks were
            // evicted also restarts (see on_demand_with_residency).
            let stale_path = on_path && !fully_cached;
            if !on_path || stale_path {
                self.walk_gen += 1;
                let gen = self.walk_gen;
                if had_prediction {
                    self.stats.restarts += 1;
                    obs.emit(|file| Event::WalkRestart {
                        file,
                        block: req.offset,
                        rid,
                        gen,
                    });
                } else {
                    obs.emit(|file| Event::WalkStart {
                        file,
                        block: req.offset,
                        rid,
                        gen,
                    });
                }
                self.restart_walk();
            }
        } else {
            // Simple mode: one fresh prediction per demand request.
            self.queue.clear();
            self.path.clear();
            if let Some((pred, source)) = self.predictor.predict(self.file_blocks) {
                for b in pred.blocks() {
                    self.path.insert(b);
                    self.queue.push_back((b, source));
                }
            }
        }
    }

    fn restart_walk(&mut self) {
        self.queue.clear();
        self.path.clear();
        self.walk = self.predictor.start_walk();
        // A cyclic graph can predict forever inside the file; allow at
        // most two passes over the file per walk.
        self.walk_budget = self.file_blocks.saturating_mul(2).max(64);
        self.cached_run = 0;
    }

    /// Hand out the next block to prefetch, or `None` if the engine has
    /// nothing (more) to do right now. `is_cached` lets the engine skip
    /// blocks that are already resident.
    ///
    /// Call in a loop after [`on_demand`](Self::on_demand) and after
    /// every [`on_prefetch_complete`](Self::on_prefetch_complete) until
    /// it returns `None`.
    pub fn next_block(&mut self, is_cached: impl FnMut(u64) -> bool) -> Option<u64> {
        let mut noop = NoopRecorder;
        self.next_block_obs(is_cached, &mut Obs::new(0, 0, &mut noop))
    }

    /// [`next_block`](Self::next_block), emitting issue and walk-stop
    /// events into `obs`.
    pub fn next_block_obs<R: Recorder>(
        &mut self,
        mut is_cached: impl FnMut(u64) -> bool,
        obs: &mut Obs<'_, R>,
    ) -> Option<u64> {
        let cap = match self.config.aggressive {
            Some(limit) => limit.cap(),
            None => usize::MAX,
        };
        loop {
            if self.in_flight >= cap {
                return None;
            }
            let (block, source) = match self.queue.pop_front() {
                Some(entry) => entry,
                None => {
                    if !self.refill_from_walk(obs) {
                        return None;
                    }
                    continue;
                }
            };
            if is_cached(block) {
                self.stats.already_cached += 1;
                if self.walk.is_some() {
                    self.cached_run += 1;
                    if self.cached_run >= CACHED_RUN_STOP {
                        self.stats.cached_stops += 1;
                        self.walk = None;
                        self.queue.clear();
                        obs.emit(|file| Event::WalkStop {
                            file,
                            reason: WalkStopReason::CachedRun,
                        });
                        return None;
                    }
                }
                continue;
            }
            self.cached_run = 0;
            self.in_flight += 1;
            if self.config.is_aggressive() {
                self.lead += 1;
            }
            self.stats.issued += 1;
            if source == PredictionSource::ObaFallback {
                self.stats.issued_by_fallback += 1;
            }
            let (rid, gen) = (self.parent_rid, self.walk_gen);
            obs.emit(|file| Event::PrefetchIssue {
                file,
                block,
                rid,
                gen,
            });
            return Some(block);
        }
    }

    /// Pull the next predicted request from the aggressive walk into
    /// the queue. Returns false when the walk is over (or absent), or
    /// when the walk has reached its lead cap and must wait for the
    /// consumer to catch up (the walk itself stays alive).
    fn refill_from_walk<R: Recorder>(&mut self, obs: &mut Obs<'_, R>) -> bool {
        if let Some(cap) = self.config.lead_cap {
            if self.lead >= cap {
                return false;
            }
        }
        let Some(walk) = self.walk.as_mut() else {
            return false;
        };
        if self.walk_budget == 0 {
            self.stats.budget_stops += 1;
            self.walk = None;
            obs.emit(|file| Event::WalkStop {
                file,
                reason: WalkStopReason::Budget,
            });
            return false;
        }
        match self.predictor.walk_next(walk, self.file_blocks) {
            Some((req, source)) => {
                let take = req.size.min(self.walk_budget);
                self.walk_budget -= take;
                for b in req.blocks().take(take as usize) {
                    // Blocks already on the path would re-enter the
                    // queue forever on cyclic patterns; path membership
                    // also dedups them.
                    if self.path.insert(b) {
                        self.queue.push_back((b, source));
                    }
                }
                true
            }
            None => {
                self.stats.walk_stops += 1;
                self.walk = None;
                obs.emit(|file| Event::WalkStop {
                    file,
                    reason: WalkStopReason::Exhausted,
                });
                false
            }
        }
    }

    /// Hand out the next *extent batch* to prefetch: the first block
    /// plus how many contiguous same-extent blocks ride along in a
    /// single multi-block disk job (`(first, count)`; the members are
    /// `first..first + count`). Extents are `extent_blocks` long and
    /// aligned (block `b` belongs to extent `b / extent_blocks`).
    ///
    /// The whole batch counts as **one** in-flight unit: under the
    /// linear limit, at most one *extent* of the file is being
    /// prefetched at any time, and one [`on_prefetch_complete`]
    /// (Self::on_prefetch_complete) frees the unit when the batch's
    /// job completes. The batch never crosses an extent boundary, and
    /// stops early at a cached block, a non-contiguous prediction, the
    /// lead cap, or the end of the walk — whatever comes first (the
    /// per-block machinery picks up from there on the next call).
    ///
    /// With `extent_blocks == 1` every batch has length 1 and this is
    /// exactly [`next_block_obs`](Self::next_block_obs) plus batch
    /// accounting.
    pub fn next_extent_obs<R: Recorder>(
        &mut self,
        extent_blocks: u64,
        mut is_cached: impl FnMut(u64) -> bool,
        obs: &mut Obs<'_, R>,
    ) -> Option<(u64, u32)> {
        let extent_blocks = extent_blocks.max(1);
        // The first block goes through the full per-block issue logic
        // (cap check, cached skips, walk refills, issue accounting);
        // the one unit of in-flight it charges covers the whole batch.
        let first = self.next_block_obs(&mut is_cached, obs)?;
        let extent = first / extent_blocks;
        let mut count = 1u32;
        loop {
            let next = first + count as u64;
            if next / extent_blocks != extent {
                break; // never cross the extent boundary
            }
            if let Some(cap) = self.config.lead_cap {
                if self.lead >= cap {
                    break;
                }
            }
            if self.queue.is_empty() && !self.refill_from_walk(obs) {
                break;
            }
            match self.queue.front() {
                Some(&(b, _)) if b == next => {}
                _ => break, // prediction is not the contiguous next block
            }
            if is_cached(next) {
                // Leave it queued: the per-block logic skips it (with
                // cached-run accounting) on the next pull.
                break;
            }
            let (block, source) = self.queue.pop_front().expect("peeked above");
            self.cached_run = 0;
            if self.config.is_aggressive() {
                self.lead += 1;
            }
            self.stats.issued += 1;
            if source == PredictionSource::ObaFallback {
                self.stats.issued_by_fallback += 1;
            }
            let (rid, gen) = (self.parent_rid, self.walk_gen);
            obs.emit(|file| Event::PrefetchIssue {
                file,
                block,
                rid,
                gen,
            });
            count += 1;
        }
        self.stats.extent_batches += 1;
        self.stats.extent_batched_blocks += count as u64;
        let rid = self.parent_rid;
        obs.emit(|file| Event::ExtentIssue {
            file,
            first_block: first,
            blocks: count,
            rid,
        });
        Some((first, count))
    }

    /// [`next_extent_obs`](Self::next_extent_obs) without tracing.
    pub fn next_extent(
        &mut self,
        extent_blocks: u64,
        is_cached: impl FnMut(u64) -> bool,
    ) -> Option<(u64, u32)> {
        let mut noop = NoopRecorder;
        self.next_extent_obs(extent_blocks, is_cached, &mut Obs::new(0, 0, &mut noop))
    }

    /// Report that one prefetched block finished fetching (or that its
    /// fetch was absorbed by a demand miss). Frees an in-flight slot;
    /// follow up with [`next_block`](Self::next_block).
    ///
    /// In extent-granular mode, call this **once per batch** when the
    /// multi-block job completes — the batch charged a single unit.
    pub fn on_prefetch_complete(&mut self) {
        assert!(self.in_flight > 0, "completion without in-flight prefetch");
        self.in_flight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AggressiveLimit;

    /// Drain every block the engine wants right now, acknowledging
    /// completions immediately (an infinitely fast disk).
    fn drain(pf: &mut FilePrefetcher, cached: impl Fn(u64) -> bool + Copy) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(b) = pf.next_block(cached) {
            out.push(b);
            pf.on_prefetch_complete();
        }
        out
    }

    #[test]
    fn np_never_prefetches() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::np(), 100);
        pf.on_demand(Request::new(0, 4));
        assert_eq!(pf.next_block(|_| false), None);
    }

    #[test]
    fn plain_oba_prefetches_exactly_one_block_per_request() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::oba(), 100);
        pf.on_demand(Request::new(0, 4));
        assert_eq!(drain(&mut pf, |_| false), vec![4]);
        pf.on_demand(Request::new(10, 2));
        assert_eq!(drain(&mut pf, |_| false), vec![12]);
    }

    #[test]
    fn ln_agr_oba_scans_to_eof_one_at_a_time() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 8);
        pf.on_demand(Request::new(0, 2));
        // Linear limit: only one block until completion is reported.
        assert_eq!(pf.next_block(|_| false), Some(2));
        assert_eq!(pf.next_block(|_| false), None);
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), Some(3));
        pf.on_prefetch_complete();
        assert_eq!(drain(&mut pf, |_| false), vec![4, 5, 6, 7]);
        // Walk is over at EOF.
        assert_eq!(pf.next_block(|_| false), None);
    }

    #[test]
    fn correct_prediction_does_not_restart_walk() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 100);
        pf.on_demand(Request::new(0, 1));
        // Prefetch blocks 1, 2, 3.
        for expect in [1, 2, 3] {
            assert_eq!(pf.next_block(|_| false), Some(expect));
            pf.on_prefetch_complete();
        }
        // Demand arrives for block 1 — already prefetched: continue.
        pf.on_demand(Request::new(1, 1));
        assert_eq!(pf.next_block(|_| false), Some(4));
        pf.on_prefetch_complete();
        assert_eq!(pf.stats().requests_on_path, 1);
        assert_eq!(pf.stats().restarts, 0);
    }

    #[test]
    fn mispredicted_demand_restarts_from_new_position() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 100);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(pf.next_block(|_| false), Some(1));
        pf.on_prefetch_complete();
        // Application jumps to block 50 — not prefetched: restart there.
        pf.on_demand(Request::new(50, 1));
        assert_eq!(pf.next_block(|_| false), Some(51));
        assert_eq!(pf.stats().restarts, 1);
        assert_eq!(pf.stats().requests_off_path, 1);
    }

    #[test]
    fn overtaking_consumer_restarts_ahead() {
        // If the application reads *past* the prefetcher, the requested
        // block "has not already been prefetched" and the scan restarts
        // from the new file-pointer position (§3.1).
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 100);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(pf.next_block(|_| false), Some(1));
        pf.on_prefetch_complete();
        pf.on_demand(Request::new(5, 1)); // ahead of the walk
        assert_eq!(pf.next_block(|_| false), Some(6));
    }

    #[test]
    fn simple_isppm_prefetches_whole_predicted_request() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::is_ppm(1), 1000);
        for (o, s) in [(0, 2), (3, 3), (8, 2), (11, 3)] {
            pf.on_demand(Request::new(o, s));
        }
        // Prediction after (11,3): (16,2) — both blocks at once (no
        // linear limit in non-aggressive mode).
        assert_eq!(pf.next_block(|_| false), Some(16));
        assert_eq!(pf.next_block(|_| false), Some(17));
        assert_eq!(pf.next_block(|_| false), None);
        assert_eq!(pf.in_flight(), 2);
    }

    #[test]
    fn ln_agr_isppm_walks_pattern_linearly() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 40);
        for (o, s) in [(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)] {
            pf.on_demand(Request::new(o, s));
        }
        // Predicted path: (19,3),(24,2),(27,3),(32,2),(35,3) — 35+3=38<=40 ok,
        // then (40,2) out of file.
        let got = drain(&mut pf, |_| false);
        assert_eq!(
            got,
            vec![19, 20, 21, 24, 25, 27, 28, 29, 32, 33, 35, 36, 37]
        );
        assert_eq!(pf.stats().walk_stops, 1);
    }

    /// Train a MITHRIL predictor on three blocks recurring together:
    /// the candidate set of block 10 becomes {90, 40} (equal support,
    /// 90 reinforced earlier — the nearer successor in the stream).
    fn trained_mithril(aggressive: Option<AggressiveLimit>) -> FilePrefetcher {
        let cfg = PrefetchConfig::with_predictor(
            AlgorithmKind::Mithril {
                lookahead: 3,
                min_support: 2,
                fallback: false,
            },
            aggressive,
        );
        let mut pf = FilePrefetcher::new(cfg, 1000);
        for b in [10, 90, 40, 10, 90, 40, 10] {
            pf.on_demand(Request::new(b, 1));
        }
        pf
    }

    #[test]
    fn mithril_candidates_burn_one_linear_unit_each() {
        let mut pf = trained_mithril(Some(AggressiveLimit::One));
        // The ranked set {90, 40} is unordered prediction, not a chain:
        // the linear limit still admits exactly one candidate at a time.
        assert_eq!(pf.next_block(|_| false), Some(90));
        assert_eq!(pf.next_block(|_| false), None, "one unit per candidate");
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), Some(40));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), None, "candidate set exhausted");
        assert_eq!(pf.predictor().emits(), pf.predictor().hits());
        assert!(pf.predictor().mined() > 0);
    }

    #[test]
    fn extent_mode_does_not_batch_scattered_candidates() {
        let mut pf = trained_mithril(Some(AggressiveLimit::One));
        // Candidates 90 and 40 are not contiguous: even with 8-block
        // extents every batch degenerates to a single block.
        assert_eq!(pf.next_extent(8, |_| false), Some((90, 1)));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(8, |_| false), Some((40, 1)));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(8, |_| false), None);
        assert_eq!(pf.stats().extent_batches, 2);
        assert_eq!(pf.stats().extent_batched_blocks, 2);
    }

    #[test]
    fn extent_mode_batches_contiguous_candidates() {
        // Block 10 associates with the contiguous pair {16, 17}, with
        // 16 outranking 17 (higher support): the walk emits 16 then 17
        // and extent mode folds them into one two-block batch.
        let cfg = PrefetchConfig::with_predictor(
            AlgorithmKind::Mithril {
                lookahead: 3,
                min_support: 2,
                fallback: false,
            },
            Some(AggressiveLimit::One),
        );
        let mut pf = FilePrefetcher::new(cfg, 1000);
        for b in [10, 16, 17, 10, 16, 17, 10, 16, 10] {
            pf.on_demand(Request::new(b, 1));
        }
        assert_eq!(pf.next_extent(8, |_| false), Some((16, 2)));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(8, |_| false), None);
        assert_eq!(pf.stats().extent_batched_blocks, 2);
    }

    #[test]
    fn markov_engine_prefetches_learned_cycle() {
        let cfg = PrefetchConfig::with_predictor(
            AlgorithmKind::Markov {
                order: 1,
                fallback: false,
            },
            Some(AggressiveLimit::One),
        );
        let mut pf = FilePrefetcher::new(cfg, 100);
        for b in [0, 2, 4, 6, 0, 2, 4, 6, 0] {
            pf.on_demand(Request::new(b, 1));
        }
        // The chain learned 0→2→4→6; OBA would have fetched block 1.
        assert_eq!(pf.next_block(|_| false), Some(2));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), Some(4));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), Some(6));
        assert!(pf.predictor().hits() >= 3);
        assert!(pf.predictor().table_size() >= 4, "four learned transitions");
    }

    #[test]
    fn cached_blocks_are_skipped_not_issued() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 10);
        pf.on_demand(Request::new(0, 1));
        // Blocks 1..5 cached; first issued block is 5.
        assert_eq!(pf.next_block(|b| b < 5), Some(5));
        assert_eq!(pf.stats().already_cached, 4);
    }

    #[test]
    fn cyclic_pattern_is_stopped_by_budget() {
        // A strided pattern that wraps around inside a file would walk
        // forever; the budget must stop it.
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 16);
        // Teach a cycle: 0 -> 8 -> 0 -> 8 ...
        for &o in &[0u64, 8, 0, 8, 0] {
            pf.on_demand(Request::new(o, 1));
        }
        let got = drain(&mut pf, |_| false);
        // The path dedups blocks, so at most the two cycle blocks are
        // issued, and the walk ends by budget (not by EOF).
        assert!(got.len() <= 2, "issued {got:?}");
        assert_eq!(pf.stats().budget_stops, 1);
    }

    #[test]
    fn window_limit_allows_k_in_flight() {
        let cfg = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Window(3)),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, 100);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(pf.next_block(|_| false), Some(1));
        assert_eq!(pf.next_block(|_| false), Some(2));
        assert_eq!(pf.next_block(|_| false), Some(3));
        assert_eq!(pf.next_block(|_| false), None);
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), Some(4));
    }

    #[test]
    fn unlimited_issues_everything_at_once() {
        let cfg = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Unlimited),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, 10);
        pf.on_demand(Request::new(0, 1));
        let mut got = Vec::new();
        while let Some(b) = pf.next_block(|_| false) {
            got.push(b); // no completions acknowledged!
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(pf.in_flight(), 9);
    }

    #[test]
    fn file_growth_extends_oba_walk() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 4);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(drain(&mut pf, |_| false), vec![1, 2, 3]);
        pf.set_file_blocks(6);
        // The old walk already stopped; a new demand restarts it only on
        // a mispredict. Block 4 was never prefetched, so demanding it
        // restarts and reaches the new EOF.
        pf.on_demand(Request::new(4, 1));
        assert_eq!(drain(&mut pf, |_| false), vec![5]);
    }

    #[test]
    fn fallback_blocks_are_counted() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::is_ppm(3), 100);
        pf.on_demand(Request::new(0, 1)); // graph empty: OBA fallback
        assert_eq!(pf.next_block(|_| false), Some(1));
        assert_eq!(pf.stats().issued_by_fallback, 1);
        assert!(pf.stats().fallback_share() > 0.99);
    }

    #[test]
    fn backoff_engine_predicts_before_full_order_context() {
        // An order-3 back-off engine predicts a plain stride after just
        // two requests (order-1 escape); the plain order-3 engine can
        // only fall back to OBA, which guesses the wrong block.
        let mut strict = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(3), 1000);
        let mut backoff = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm_backoff(3), 1000);
        for pf in [&mut strict, &mut backoff] {
            pf.on_demand(Request::new(0, 1));
            pf.on_demand(Request::new(8, 1));
            pf.on_demand(Request::new(16, 1));
        }
        // Stride 8: the true next block is 24.
        assert_eq!(backoff.next_block(|_| false), Some(24));
        assert_eq!(
            strict.next_block(|_| false),
            Some(17),
            "plain falls back to OBA"
        );
    }

    #[test]
    fn lead_cap_pauses_and_resumes_the_walk() {
        let cfg = PrefetchConfig {
            lead_cap: Some(3),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, 100);
        pf.on_demand(Request::new(0, 1));
        // Lead cap 3: only blocks 1..=3 come out even with completions
        // acknowledged (nothing consumes the lead).
        let mut got = Vec::new();
        while let Some(b) = pf.next_block(|_| false) {
            got.push(b);
            pf.on_prefetch_complete();
        }
        assert_eq!(got, vec![1, 2, 3]);
        // An on-path demand consumes lead; the walk resumes.
        pf.on_demand(Request::new(1, 1));
        assert_eq!(pf.next_block(|_| false), Some(4));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_block(|_| false), None, "cap reached again");
    }

    #[test]
    fn cached_run_stop_ends_walks_over_resident_data() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 1000);
        pf.on_demand(Request::new(0, 1));
        // Everything ahead is cached: the walk must give up quickly
        // instead of scanning all 999 remaining blocks.
        assert_eq!(pf.next_block(|_| true), None);
        assert_eq!(pf.stats().cached_stops, 1);
        assert!(pf.stats().already_cached <= 80);
    }

    #[test]
    fn evicted_on_path_blocks_resume_a_dead_walk() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 6);
        pf.on_demand(Request::new(0, 1));
        // Walk runs to EOF: blocks 1..=5 prefetched, walk dead.
        assert_eq!(drain(&mut pf, |_| false), vec![1, 2, 3, 4, 5]);
        // A demand for block 3 arrives after the cache evicted it: the
        // request is on-path, but the data is gone — the walk must
        // restart from there instead of staying dormant.
        pf.on_demand_with_residency(Request::new(3, 1), false);
        assert_eq!(drain(&mut pf, |_| false), vec![4, 5]);
        // Covered on-path demands (resident or in flight) never restart.
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 100);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(pf.next_block(|_| false), Some(1));
        pf.on_prefetch_complete();
        pf.on_demand_with_residency(Request::new(1, 1), true);
        assert_eq!(
            pf.next_block(|_| false),
            Some(2),
            "walk continues, no restart"
        );
        assert_eq!(pf.stats().restarts, 0);
    }

    #[test]
    fn evicted_on_path_blocks_rewind_a_live_walk() {
        // Lead cap 4, cache so small that prefetched blocks are gone by
        // the time they are demanded: without the residency rule the
        // walk would stream uselessly ~4 blocks ahead forever. With it,
        // each uncovered on-path demand rewinds the walk to just ahead
        // of the consumer.
        let cfg = PrefetchConfig {
            lead_cap: Some(4),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, 100);
        pf.on_demand(Request::new(0, 1));
        assert_eq!(drain(&mut pf, |_| false), vec![1, 2, 3, 4]); // lead cap
                                                                 // Demand for block 1: prefetched but evicted -> uncovered.
        pf.on_demand_with_residency(Request::new(1, 1), false);
        assert_eq!(pf.stats().restarts, 1);
        // The walk restarted at the consumer: next issue is block 2.
        assert_eq!(pf.next_block(|_| false), Some(2));
    }

    #[test]
    #[should_panic(expected = "completion without in-flight prefetch")]
    fn spurious_completion_panics() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::oba(), 10);
        pf.on_prefetch_complete();
    }

    #[test]
    fn extent_batches_never_cross_the_boundary_and_respect_the_limit() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 64);
        pf.on_demand(Request::new(0, 1));
        // Walk predicts 1, 2, 3, ...; extents are aligned [0,4), [4,8)...
        // The first batch starts at 1 and may only cover 1..4.
        assert_eq!(pf.next_extent(4, |_| false), Some((1, 3)));
        // Linear limit on extents: one batch in flight, one unit.
        assert_eq!(pf.in_flight(), 1);
        assert_eq!(pf.next_extent(4, |_| false), None);
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(4, |_| false), Some((4, 4)));
        assert_eq!(pf.stats().extent_batches, 2);
        assert_eq!(pf.stats().extent_batched_blocks, 7);
        assert_eq!(pf.stats().issued, 7);
    }

    #[test]
    fn extent_batch_stops_early_at_a_cached_block() {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 64);
        pf.on_demand(Request::new(0, 1));
        // Block 3 is resident: the batch must not include it.
        assert_eq!(pf.next_extent(4, |b| b == 3,), Some((1, 2)));
        pf.on_prefetch_complete();
        // Next pull skips the cached block and moves to the next extent.
        assert_eq!(pf.next_extent(4, |b| b == 3), Some((4, 4)));
        assert_eq!(pf.stats().already_cached, 1);
    }

    #[test]
    fn extent_batch_stops_at_non_contiguous_predictions() {
        // A strided IS_PPM walk predicts (19,3),(24,2),...: the batch
        // from 19 covers 19..22 and stops at the gap even though the
        // extent [16,24) has room.
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 40);
        for (o, s) in [(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)] {
            pf.on_demand(Request::new(o, s));
        }
        assert_eq!(pf.next_extent(8, |_| false), Some((19, 3)));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(8, |_| false), Some((24, 2)));
    }

    #[test]
    fn extent_size_one_degenerates_to_per_block_issue() {
        let mut a = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 16);
        let mut b = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), 16);
        a.on_demand(Request::new(0, 1));
        b.on_demand(Request::new(0, 1));
        loop {
            let x = a.next_extent(1, |_| false);
            let y = b.next_block(|_| false);
            assert_eq!(
                x.map(|(f, c)| {
                    assert_eq!(c, 1, "extent size 1 must issue single blocks");
                    f
                }),
                y
            );
            if x.is_none() {
                break;
            }
            a.on_prefetch_complete();
            b.on_prefetch_complete();
        }
        assert_eq!(a.stats().issued, b.stats().issued);
    }

    #[test]
    fn extent_batches_respect_the_lead_cap() {
        let cfg = PrefetchConfig {
            lead_cap: Some(3),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, 100);
        pf.on_demand(Request::new(0, 1));
        // Lead cap 3 binds mid-batch: only blocks 1..4 come out even
        // though the extent [0,8) has room for more.
        assert_eq!(pf.next_extent(8, |_| false), Some((1, 3)));
        pf.on_prefetch_complete();
        assert_eq!(pf.next_extent(8, |_| false), None, "lead cap reached");
    }
}
