//! # prefetch — the IPPS'99 linear aggressive prefetching algorithms
//!
//! This crate implements the primary contribution of
//!
//! > T. Cortes, J. Labarta. *Linear Aggressive Prefetching: A Way to
//! > Increase the Performance of Cooperative Caches.* IPPS 1999.
//!
//! as a pure, simulator-agnostic library. The *predictors* themselves
//! — [`Oba`], the [`IsPpm`] family, [`BlockMarkov`], [`Mithril`] and
//! the unified [`FilePredictor`] with its registry ([`PredictorSpec`])
//! — live in the `predict` crate and are re-exported here; this crate
//! adds the engine:
//!
//! * [`FilePrefetcher`] — the per-file prefetch engine (§3): simple
//!   (one prediction per demand request) or *aggressive* (keep walking
//!   the prediction graph as if predicted requests had been issued,
//!   restarting on a miss-prediction), with the *linear* aggressiveness
//!   limit of **at most one in-flight prefetched block per file** — or,
//!   for ablations, a `k`-block window or no limit at all. Predictors
//!   that emit ranked candidate *sets* (MITHRIL) burn one limit unit
//!   per issued candidate — the walk yields candidates one at a time —
//!   and extent mode only batches candidates that stay contiguous.
//!
//! The engine is deliberately decoupled from any cache or disk model:
//! the caller reports demand requests and prefetch completions, and the
//! engine answers with block numbers to prefetch. `lap-core` wires it
//! to the cooperative caches and the disk stations; this crate could
//! just as well drive a real file system.
//!
//! ```
//! use prefetch::{FilePrefetcher, PrefetchConfig, Request};
//!
//! // Ln_Agr_IS_PPM:1 on a 1000-block file.
//! let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 1000);
//! // Teach it the pattern of Figure 1: 2 blocks, +3 -> 3 blocks, +5 -> ...
//! for req in [
//!     Request::new(0, 2),
//!     Request::new(3, 3),
//!     Request::new(8, 2),
//!     Request::new(11, 3),
//!     Request::new(16, 2),
//! ] {
//!     pf.on_demand(req);
//! }
//! // The engine now predicts the continuation of the pattern; the first
//! // block it wants to prefetch is the start of the next request: 19.
//! let next = pf.next_block(|_| false).unwrap();
//! assert_eq!(next, 19);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod engine;
pub mod replay;
mod stats;

pub use config::{AggressiveLimit, PrefetchConfig, DEFAULT_LEAD_CAP};
pub use engine::FilePrefetcher;
pub use stats::PrefetchStats;
// The predictors themselves live in the `predict` crate (the predictor
// zoo); re-export the full surface so existing `prefetch::` users keep
// compiling unchanged.
pub use predict::{
    registry_help, AlgorithmKind, BackoffIsPpm, BlockMarkov, EdgeChoice, FilePredictor, IsPpm,
    Mithril, Oba, Pair, PredictionSource, PredictorSpec, Request, SpecError, Walk,
};
