//! # prefetch — the IPPS'99 linear aggressive prefetching algorithms
//!
//! This crate implements the primary contribution of
//!
//! > T. Cortes, J. Labarta. *Linear Aggressive Prefetching: A Way to
//! > Increase the Performance of Cooperative Caches.* IPPS 1999.
//!
//! as a pure, simulator-agnostic library. It contains:
//!
//! * [`Oba`] — the classic *One Block Ahead* predictor (§2.1): after a
//!   request touching blocks `o..o+s`, block `o+s` is a prefetch
//!   candidate.
//! * [`IsPpm`] — the *Interval and Size* prediction-by-partial-match
//!   predictor family (§2.2): a graph whose nodes hold the last `j`
//!   *(offset-interval, request-size)* pairs and whose edges are
//!   labelled with the time they were last followed. Prediction follows
//!   the **most-recently-used** edge, not the most probable one, and
//!   predicts both the *position* and the *size* of the next request, so
//!   blocks never accessed before can still be predicted.
//! * [`FilePredictor`] — an order-`j` predictor with the paper's OBA
//!   fallback for the cold-start phase (§2.2), exposing the *walk*
//!   cursor that aggressive prefetching needs.
//! * [`FilePrefetcher`] — the per-file prefetch engine (§3): simple
//!   (one prediction per demand request) or *aggressive* (keep walking
//!   the prediction graph as if predicted requests had been issued,
//!   restarting on a miss-prediction), with the *linear* aggressiveness
//!   limit of **at most one in-flight prefetched block per file** — or,
//!   for ablations, a `k`-block window or no limit at all.
//!
//! The engine is deliberately decoupled from any cache or disk model:
//! the caller reports demand requests and prefetch completions, and the
//! engine answers with block numbers to prefetch. `lap-core` wires it
//! to the cooperative caches and the disk stations; this crate could
//! just as well drive a real file system.
//!
//! ```
//! use prefetch::{FilePrefetcher, PrefetchConfig, Request};
//!
//! // Ln_Agr_IS_PPM:1 on a 1000-block file.
//! let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), 1000);
//! // Teach it the pattern of Figure 1: 2 blocks, +3 -> 3 blocks, +5 -> ...
//! for req in [
//!     Request::new(0, 2),
//!     Request::new(3, 3),
//!     Request::new(8, 2),
//!     Request::new(11, 3),
//!     Request::new(16, 2),
//! ] {
//!     pf.on_demand(req);
//! }
//! // The engine now predicts the continuation of the pattern; the first
//! // block it wants to prefetch is the start of the next request: 19.
//! let next = pf.next_block(|_| false).unwrap();
//! assert_eq!(next, 19);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backoff;
mod config;
mod engine;
mod isppm;
mod oba;
mod predictor;
pub mod replay;
mod request;
mod stats;

pub use backoff::BackoffIsPpm;
pub use config::{AggressiveLimit, AlgorithmKind, PrefetchConfig, DEFAULT_LEAD_CAP};
pub use engine::FilePrefetcher;
pub use isppm::{EdgeChoice, IsPpm, Pair};
pub use oba::Oba;
pub use predictor::{FilePredictor, PredictionSource, Walk};
pub use request::Request;
pub use stats::PrefetchStats;
