//! A unified per-file predictor with the paper's OBA cold-start
//! fallback and the *walk* cursor used by aggressive prefetching.

use crate::backoff::BackoffIsPpm;
use crate::config::AlgorithmKind;
use crate::isppm::{apply_pair, EdgeChoice, IsPpm, Pair};
use crate::oba::Oba;
use crate::request::Request;

/// Where a prediction came from — the IS_PPM graph or the OBA
/// cold-start fallback ("our proposal consists of using the OBA
/// algorithm whenever not enough information is available in the
/// graph", §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictionSource {
    /// The configured predictor proper (OBA for OBA configs, the graph
    /// for IS_PPM configs).
    Primary,
    /// The OBA fallback inside an IS_PPM configuration.
    ObaFallback,
}

/// The simulated position of an aggressive prefetching pass: the last
/// (real or hypothetical) request on the path, plus — for IS_PPM — the
/// hypothetical (interval, size) history that locates the current graph
/// context.
///
/// The aggressive driver "behaves as if the user had already requested
/// the prefetched blocks and goes for the next node in the graph"
/// (§3.1): advancing the walk never mutates the graph, it only moves
/// this cursor.
#[derive(Clone, Debug)]
pub struct Walk {
    cur: Request,
    /// Last up-to-`order` pairs along the walk (IS_PPM only; empty for
    /// OBA walks).
    pairs: Vec<Pair>,
}

impl Walk {
    /// The last request (real or simulated) on the walk path.
    pub fn position(&self) -> Request {
        self.cur
    }
}

enum Inner {
    None,
    Oba(Oba),
    IsPpm(IsPpm),
    Backoff(BackoffIsPpm),
}

/// Order-`j` predictor for one file with OBA fallback.
pub struct FilePredictor {
    inner: Inner,
}

impl FilePredictor {
    /// Build the predictor for an algorithm configuration.
    pub fn new(algorithm: AlgorithmKind, edge_choice: EdgeChoice) -> Self {
        let inner = match algorithm {
            AlgorithmKind::None => Inner::None,
            AlgorithmKind::Oba => Inner::Oba(Oba::new()),
            AlgorithmKind::IsPpm { order } => {
                Inner::IsPpm(IsPpm::with_edge_choice(order, edge_choice))
            }
            AlgorithmKind::IsPpmBackoff { order } => {
                Inner::Backoff(BackoffIsPpm::new(order, edge_choice))
            }
        };
        FilePredictor { inner }
    }

    /// Feed a real demand request into the model.
    pub fn observe(&mut self, req: Request) {
        match &mut self.inner {
            Inner::None => {}
            Inner::Oba(o) => o.observe(req),
            Inner::IsPpm(p) => p.observe(req),
            Inner::Backoff(b) => b.observe(req),
        }
    }

    /// The last demand request observed, if any.
    pub fn last_request(&self) -> Option<Request> {
        match &self.inner {
            Inner::None => None,
            Inner::Oba(o) => o.last(),
            Inner::IsPpm(p) => p.last_request(),
            Inner::Backoff(b) => b.last_request(),
        }
    }

    /// Access the underlying IS_PPM graph (for diagnostics/tests).
    pub fn graph(&self) -> Option<&IsPpm> {
        match &self.inner {
            Inner::IsPpm(p) => Some(p),
            _ => None,
        }
    }

    /// Predict the single next request after the last observed one
    /// (non-aggressive mode). IS_PPM configurations fall back to OBA
    /// when the graph cannot predict.
    pub fn predict(&self, file_blocks: u64) -> Option<(Request, PredictionSource)> {
        let last = self.last_request()?;
        match &self.inner {
            Inner::None => None,
            Inner::Oba(_) => {
                Oba::predict_after(last, file_blocks).map(|r| (r, PredictionSource::Primary))
            }
            Inner::IsPpm(p) => match p.predict_after(last, file_blocks) {
                Some(r) => Some((r, PredictionSource::Primary)),
                None => Oba::predict_after(last, file_blocks)
                    .map(|r| (r, PredictionSource::ObaFallback)),
            },
            Inner::Backoff(b) => match b.predict_after(last, file_blocks) {
                Some((r, _)) => Some((r, PredictionSource::Primary)),
                None => Oba::predict_after(last, file_blocks)
                    .map(|r| (r, PredictionSource::ObaFallback)),
            },
        }
    }

    /// Begin an aggressive walk at the last observed request. Returns
    /// `None` until at least one request has been observed (nothing to
    /// extrapolate from) or for the `None` algorithm.
    pub fn start_walk(&self) -> Option<Walk> {
        let cur = self.last_request()?;
        let pairs = match &self.inner {
            Inner::None => return None,
            Inner::Oba(_) => Vec::new(),
            Inner::IsPpm(p) => p.history().to_vec(),
            Inner::Backoff(b) => b.history().to_vec(),
        };
        Some(Walk { cur, pairs })
    }

    /// Advance the walk one predicted request. Returns the predicted
    /// request and its source, or `None` when the walk must stop (the
    /// prediction leaves the file, per §3.1).
    ///
    /// IS_PPM walks that leave the learned graph continue OBA-style and
    /// re-synchronise with the graph as soon as their hypothetical
    /// context matches a known node again.
    pub fn walk_next(
        &self,
        walk: &mut Walk,
        file_blocks: u64,
    ) -> Option<(Request, PredictionSource)> {
        match &self.inner {
            Inner::None => None,
            Inner::Oba(_) => {
                let next = Oba::predict_after(walk.cur, file_blocks)?;
                walk.cur = next;
                Some((next, PredictionSource::Primary))
            }
            Inner::IsPpm(p) => {
                let graph_step = (walk.pairs.len() == p.order())
                    .then(|| p.lookup(&walk.pairs))
                    .flatten()
                    .and_then(|node| p.step(node).map(|(_, pair)| pair));
                advance_walk(walk, graph_step, p.order(), file_blocks)
            }
            Inner::Backoff(b) => {
                let graph_step = b.step_from_history(&walk.pairs).map(|(pair, _)| pair);
                advance_walk(walk, graph_step, b.max_order(), file_blocks)
            }
        }
    }
}

/// Apply one walk step: take the graph's predicted pair if it has one,
/// otherwise the OBA fallback pair (the block right after the walk's
/// current request); bound it to the file; and slide the hypothetical
/// pair window forward.
fn advance_walk(
    walk: &mut Walk,
    graph_pair: Option<Pair>,
    order: usize,
    file_blocks: u64,
) -> Option<(Request, PredictionSource)> {
    let (pair, source) = match graph_pair {
        Some(pair) => (pair, PredictionSource::Primary),
        None => (
            Pair::new(walk.cur.size as i64, 1),
            PredictionSource::ObaFallback,
        ),
    };
    let next = apply_pair(walk.cur, pair, file_blocks)?;
    if walk.pairs.len() == order {
        walk.pairs.remove(0);
    }
    walk.pairs.push(pair);
    walk.cur = next;
    Some((next, source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgorithmKind;

    fn feed(p: &mut FilePredictor, reqs: &[(u64, u64)]) {
        for &(o, s) in reqs {
            p.observe(Request::new(o, s));
        }
    }

    #[test]
    fn none_predictor_is_silent() {
        let mut p = FilePredictor::new(AlgorithmKind::None, EdgeChoice::MostRecent);
        p.observe(Request::new(0, 1));
        assert!(p.predict(100).is_none());
        assert!(p.start_walk().is_none());
    }

    #[test]
    fn oba_walk_is_sequential_scan() {
        let mut p = FilePredictor::new(AlgorithmKind::Oba, EdgeChoice::MostRecent);
        feed(&mut p, &[(4, 2)]);
        let mut walk = p.start_walk().unwrap();
        let mut blocks = Vec::new();
        while let Some((req, src)) = p.walk_next(&mut walk, 10) {
            assert_eq!(src, PredictionSource::Primary);
            blocks.extend(req.blocks());
        }
        assert_eq!(blocks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn isppm_walk_follows_learned_pattern() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        // Figure 1 pattern.
        feed(&mut p, &[(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)]);
        let mut walk = p.start_walk().unwrap();
        let mut preds = Vec::new();
        for _ in 0..4 {
            let (req, src) = p.walk_next(&mut walk, 100).unwrap();
            assert_eq!(src, PredictionSource::Primary);
            preds.push((req.offset, req.size));
        }
        assert_eq!(preds, vec![(19, 3), (24, 2), (27, 3), (32, 2)]);
    }

    #[test]
    fn isppm_walk_stops_at_eof() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 2), (3, 3), (8, 2), (11, 3), (16, 2)]);
        let mut walk = p.start_walk().unwrap();
        // File of 22 blocks: (19,3) fits exactly (ends at 22), next
        // prediction (24,2) does not.
        let (req, _) = p.walk_next(&mut walk, 22).unwrap();
        assert_eq!(req, Request::new(19, 3));
        assert!(p.walk_next(&mut walk, 22).is_none());
    }

    #[test]
    fn cold_graph_falls_back_to_oba() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 3 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 2)]);
        // Only one request: graph empty, fallback predicts block 2.
        let (req, src) = p.predict(100).unwrap();
        assert_eq!(req, Request::new(2, 1));
        assert_eq!(src, PredictionSource::ObaFallback);
    }

    #[test]
    fn walk_resynchronises_with_graph_after_fallback() {
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        // Teach: a (+1, 1) step is followed by a (+10, 1) jump.
        feed(&mut p, &[(0, 1), (1, 1), (11, 1), (12, 1), (22, 1)]);
        // Context now (10,1). Graph: (1,1) -> (10,1) -> (1,1).
        let mut walk = p.start_walk().unwrap();
        let (r1, s1) = p.walk_next(&mut walk, 1000).unwrap();
        // From node (10,1): MRU edge -> (1,1): 22+1=23.
        assert_eq!((r1, s1), (Request::new(23, 1), PredictionSource::Primary));
        let (r2, s2) = p.walk_next(&mut walk, 1000).unwrap();
        // From node (1,1): MRU edge -> (10,1): 23+10=33.
        assert_eq!((r2, s2), (Request::new(33, 1), PredictionSource::Primary));
    }

    #[test]
    fn fallback_share_of_walk_with_unknown_context() {
        // Graph trained on pattern A, walk falls off it: a stride the
        // graph has never seen forces OBA fallback, and the fallback's
        // own (size,1) pair may then re-enter the graph.
        let mut p = FilePredictor::new(AlgorithmKind::IsPpm { order: 1 }, EdgeChoice::MostRecent);
        feed(&mut p, &[(0, 4), (8, 4), (16, 4)]); // stride 8, size 4
        let mut walk = p.start_walk().unwrap();
        let (r1, s1) = p.walk_next(&mut walk, 1000).unwrap();
        assert_eq!((r1, s1), (Request::new(24, 4), PredictionSource::Primary));
    }
}
