//! Offline predictor evaluation: replay a request stream against a
//! predictor and score its predictions, without any cache or disk
//! model.
//!
//! This answers the question the paper's §2 poses — *how accurate is a
//! predictor on a given access pattern?* — in isolation from
//! cache-size and timing effects, and is the quickest way to compare
//! predictor variants on traces of your own.
//!
//! ```
//! use prefetch::{replay, PrefetchConfig, Request};
//!
//! // A perfectly regular stride: IS_PPM:1 predicts every request after
//! // the warm-up prefix.
//! let reqs: Vec<Request> = (0..50).map(|i| Request::new(i * 8, 4)).collect();
//! let score = replay::evaluate(PrefetchConfig::ln_agr_is_ppm(1), 4096, &reqs);
//! assert!(score.exact_accuracy() > 0.9);
//! ```

use predict::{FilePredictor, Request};

use crate::config::PrefetchConfig;

/// Outcome counts of an offline replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayScore {
    /// Requests seen.
    pub requests: u64,
    /// Requests for which the predictor had a prediction at all.
    pub predicted: u64,
    /// Predictions matching the next request exactly (offset and size).
    pub exact: u64,
    /// Predictions overlapping the next request in at least one block.
    pub overlapping: u64,
    /// Blocks of demand requests covered by the prediction.
    pub blocks_covered: u64,
    /// Total demand blocks after the first request.
    pub blocks_total: u64,
}

impl ReplayScore {
    /// Share of (non-first) requests predicted exactly.
    pub fn exact_accuracy(&self) -> f64 {
        if self.requests <= 1 {
            return 0.0;
        }
        self.exact as f64 / (self.requests - 1) as f64
    }

    /// Share of (non-first) requests whose prediction overlapped.
    pub fn overlap_accuracy(&self) -> f64 {
        if self.requests <= 1 {
            return 0.0;
        }
        self.overlapping as f64 / (self.requests - 1) as f64
    }

    /// Share of demand blocks the one-step predictions covered.
    pub fn block_coverage(&self) -> f64 {
        if self.blocks_total == 0 {
            return 0.0;
        }
        self.blocks_covered as f64 / self.blocks_total as f64
    }
}

/// Replay `requests` (all within a file of `file_blocks` blocks)
/// against the predictor of `config`, scoring each one-step prediction
/// against the request that actually followed.
///
/// Only the *predictor* of the configuration matters here (OBA or
/// IS_PPM:j with its edge choice); aggressiveness is a driver-level
/// property with no one-step meaning.
///
/// # Panics
/// Panics if any request exceeds `file_blocks`.
pub fn evaluate(config: PrefetchConfig, file_blocks: u64, requests: &[Request]) -> ReplayScore {
    let mut predictor = FilePredictor::new(config.algorithm, config.edge_choice);
    let mut score = ReplayScore::default();
    let mut pending: Option<Request> = None;

    for &req in requests {
        assert!(
            req.within(file_blocks),
            "request {req:?} outside file of {file_blocks} blocks"
        );
        score.requests += 1;
        if score.requests > 1 {
            score.blocks_total += req.size;
            if let Some(pred) = pending {
                score.predicted += 1;
                if pred == req {
                    score.exact += 1;
                }
                let lo = pred.offset.max(req.offset);
                let hi = pred.end().min(req.end());
                if hi > lo {
                    score.overlapping += 1;
                    score.blocks_covered += hi - lo;
                }
            }
        }
        predictor.observe(req);
        pending = predictor.predict(file_blocks).map(|(p, _)| p);
    }
    score
}

/// Evaluate several configurations side by side on the same stream.
pub fn compare(
    configs: &[PrefetchConfig],
    file_blocks: u64,
    requests: &[Request],
) -> Vec<(String, ReplayScore)> {
    configs
        .iter()
        .map(|&c| (c.paper_name(), evaluate(c, file_blocks, requests)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strided(n: u64, stride: u64, size: u64) -> Vec<Request> {
        (0..n).map(|i| Request::new(i * stride, size)).collect()
    }

    #[test]
    fn oba_is_perfect_on_contiguous_sequential() {
        let reqs = strided(40, 1, 1);
        let s = evaluate(PrefetchConfig::oba(), 1 << 20, &reqs);
        assert!(s.exact_accuracy() > 0.97, "{s:?}");
    }

    #[test]
    fn oba_fails_on_strides_isppm_learns_them() {
        let reqs = strided(40, 8, 4);
        let oba = evaluate(PrefetchConfig::oba(), 1 << 20, &reqs);
        let ppm = evaluate(PrefetchConfig::is_ppm(1), 1 << 20, &reqs);
        // OBA predicts the block after the request: offset+4, but the
        // next request starts at offset+8 — overlap never happens.
        assert_eq!(oba.exact, 0);
        assert!(ppm.exact_accuracy() > 0.9, "{ppm:?}");
        assert!(ppm.block_coverage() > 0.9);
    }

    #[test]
    fn alternating_pattern_needs_the_graph() {
        // Figure 1's alternating (+3,3)/(+5,2) pattern.
        let mut reqs = Vec::new();
        let mut off = 0;
        for _ in 0..20 {
            reqs.push(Request::new(off, 2));
            reqs.push(Request::new(off + 3, 3));
            off += 8;
        }
        let ppm = evaluate(PrefetchConfig::is_ppm(1), 1 << 20, &reqs);
        assert!(ppm.exact_accuracy() > 0.85, "{ppm:?}");
    }

    #[test]
    fn random_stream_scores_low() {
        // A stream with no structure: accuracy collapses.
        let mut off = 1u64;
        let reqs: Vec<Request> = (0..60)
            .map(|i| {
                off = (off.wrapping_mul(6364136223846793005).wrapping_add(i)) % 10_000;
                Request::new(off, 1 + off % 3)
            })
            .collect();
        let ppm = evaluate(PrefetchConfig::is_ppm(1), 1 << 20, &reqs);
        assert!(ppm.exact_accuracy() < 0.3, "{ppm:?}");
    }

    #[test]
    fn compare_lists_all_configs() {
        let reqs = strided(20, 4, 2);
        let rows = compare(
            &[PrefetchConfig::oba(), PrefetchConfig::is_ppm(1)],
            1 << 20,
            &reqs,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "OBA");
        assert_eq!(rows[1].0, "IS_PPM:1");
        assert!(rows[1].1.exact >= rows[0].1.exact);
    }

    #[test]
    fn empty_and_single_request_streams() {
        let s = evaluate(PrefetchConfig::is_ppm(1), 100, &[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.exact_accuracy(), 0.0);
        let s = evaluate(PrefetchConfig::is_ppm(1), 100, &[Request::new(0, 1)]);
        assert_eq!(s.requests, 1);
        assert_eq!(s.exact_accuracy(), 0.0);
        assert_eq!(s.block_coverage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside file")]
    fn out_of_file_request_panics() {
        evaluate(PrefetchConfig::oba(), 4, &[Request::new(3, 2)]);
    }
}
