//! Prefetch-engine accounting.

/// Counters kept by a [`FilePrefetcher`](crate::FilePrefetcher).
///
/// Block *usefulness* (was a prefetched block ever demanded before
/// leaving the cache?) can only be judged by the cache, so the
/// mispredict *ratio* of §5.2 is assembled in `lap-core` from these
/// counters plus cache-side usage counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Blocks handed out for prefetching.
    pub issued: u64,
    /// Of `issued`, blocks predicted by the OBA cold-start fallback
    /// inside an IS_PPM configuration (§2.2 reports this share).
    pub issued_by_fallback: u64,
    /// Predicted blocks skipped because they were already cached.
    pub already_cached: u64,
    /// Demand requests whose blocks were all on the predicted path.
    pub requests_on_path: u64,
    /// Demand requests that deviated from the predicted path while a
    /// prediction existed (triggers a restart when aggressive).
    pub requests_off_path: u64,
    /// Demand requests arriving with no prediction outstanding.
    pub requests_unpredicted: u64,
    /// Aggressive-walk restarts caused by miss-predictions.
    pub restarts: u64,
    /// Aggressive walks that stopped at end-of-file / no prediction.
    pub walk_stops: u64,
    /// Aggressive walks cut short by the cycle-safety budget.
    pub budget_stops: u64,
    /// Aggressive walks stopped because everything ahead was already
    /// cached (read-ahead satisfied).
    pub cached_stops: u64,
    /// Extent-granular issue batches (one multi-block disk job each).
    /// Zero in per-block mode.
    pub extent_batches: u64,
    /// Blocks issued inside extent batches. `extent_batched_blocks /
    /// extent_batches` is the mean blocks-per-issue of the walk, which
    /// is what separates coverage gained by *batching* from coverage
    /// gained by better *prediction*.
    pub extent_batched_blocks: u64,
}

impl PrefetchStats {
    /// Merge another stats block into this one (e.g. across files).
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.issued_by_fallback += other.issued_by_fallback;
        self.already_cached += other.already_cached;
        self.requests_on_path += other.requests_on_path;
        self.requests_off_path += other.requests_off_path;
        self.requests_unpredicted += other.requests_unpredicted;
        self.restarts += other.restarts;
        self.walk_stops += other.walk_stops;
        self.budget_stops += other.budget_stops;
        self.cached_stops += other.cached_stops;
        self.extent_batches += other.extent_batches;
        self.extent_batched_blocks += other.extent_batched_blocks;
    }

    /// Share of issued blocks that came from the OBA fallback
    /// (the paper reports <1% for CHARISMA, ~25% for Sprite).
    pub fn fallback_share(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.issued_by_fallback as f64 / self.issued as f64
        }
    }

    /// Register all counters (plus the derived shares) under
    /// `prefix.` in a metrics registry.
    pub fn register_into(&self, reg: &mut lapobs::Registry, prefix: &str) {
        reg.counter(format!("{prefix}.issued"), self.issued);
        reg.counter(
            format!("{prefix}.issued_by_fallback"),
            self.issued_by_fallback,
        );
        reg.counter(format!("{prefix}.already_cached"), self.already_cached);
        reg.counter(format!("{prefix}.requests_on_path"), self.requests_on_path);
        reg.counter(
            format!("{prefix}.requests_off_path"),
            self.requests_off_path,
        );
        reg.counter(
            format!("{prefix}.requests_unpredicted"),
            self.requests_unpredicted,
        );
        reg.counter(format!("{prefix}.restarts"), self.restarts);
        reg.counter(format!("{prefix}.walk_stops"), self.walk_stops);
        reg.counter(format!("{prefix}.budget_stops"), self.budget_stops);
        reg.counter(format!("{prefix}.cached_stops"), self.cached_stops);
        reg.counter(format!("{prefix}.extent_batches"), self.extent_batches);
        reg.counter(
            format!("{prefix}.extent_batched_blocks"),
            self.extent_batched_blocks,
        );
        reg.gauge(format!("{prefix}.fallback_share"), self.fallback_share());
        reg.gauge(format!("{prefix}.on_path_share"), self.on_path_share());
        reg.gauge(
            format!("{prefix}.blocks_per_issue"),
            self.blocks_per_issue(),
        );
    }

    /// Mean blocks per extent issue batch (0 in per-block mode).
    pub fn blocks_per_issue(&self) -> f64 {
        if self.extent_batches == 0 {
            0.0
        } else {
            self.extent_batched_blocks as f64 / self.extent_batches as f64
        }
    }

    /// Fraction of predicted demand requests that stayed on the path.
    pub fn on_path_share(&self) -> f64 {
        let judged = self.requests_on_path + self.requests_off_path;
        if judged == 0 {
            0.0
        } else {
            self.requests_on_path as f64 / judged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = PrefetchStats {
            issued: 1,
            issued_by_fallback: 1,
            ..Default::default()
        };
        let b = PrefetchStats {
            issued: 3,
            restarts: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.issued, 4);
        assert_eq!(a.issued_by_fallback, 1);
        assert_eq!(a.restarts, 2);
    }

    #[test]
    fn shares() {
        let s = PrefetchStats {
            issued: 8,
            issued_by_fallback: 2,
            requests_on_path: 3,
            requests_off_path: 1,
            ..Default::default()
        };
        assert!((s.fallback_share() - 0.25).abs() < 1e-12);
        assert!((s.on_path_share() - 0.75).abs() < 1e-12);
        assert_eq!(PrefetchStats::default().fallback_share(), 0.0);
        assert_eq!(PrefetchStats::default().on_path_share(), 0.0);
    }
}
