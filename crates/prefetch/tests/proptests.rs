//! Property tests over the prefetching algorithms, driven by the
//! in-repo seeded PRNG (no external dependencies).

use ioworkload::util::Rng64;
use prefetch::{
    AggressiveLimit, AlgorithmKind, EdgeChoice, FilePrefetcher, IsPpm, PrefetchConfig, Request,
};

/// An arbitrary in-bounds request stream for a file of `blocks` blocks.
fn request_stream(rng: &mut Rng64, blocks: u64, max_len: usize) -> Vec<Request> {
    let len = rng.range_u64(1, max_len as u64) as usize;
    (0..len)
        .map(|_| {
            let o = rng.range_u64(0, blocks - 1);
            let s = rng.range_u64(1, 8);
            let size = s.min(blocks - o).max(1);
            Request::new(o, size)
        })
        .collect()
}

/// The IS_PPM graph is well-formed under arbitrary request streams:
/// node count grows by at most one per request, contexts are unique
/// and exactly `order` long, and edges only connect existing nodes.
#[test]
fn isppm_graph_well_formed() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case);
        let order = rng.range_u64(1, 3) as usize;
        let reqs = request_stream(&mut rng, 64, 60);
        let mut ppm = IsPpm::new(order);
        for (i, &r) in reqs.iter().enumerate() {
            ppm.observe(r);
            assert!(ppm.node_count() <= i + 1, "case {case}");
        }
        assert!(ppm.edge_count() <= reqs.len(), "case {case}");
        for (from, to, _, count) in ppm.edges() {
            let _ = ppm.context(from);
            let ctx = ppm.context(to);
            assert_eq!(ctx.len(), order, "case {case}");
            assert!(count >= 1, "case {case}");
        }
    }
}

/// Whatever the history, a prediction never leaves the file.
#[test]
fn predictions_stay_in_bounds() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0xB0);
        let order = rng.range_u64(1, 3) as usize;
        let blocks = rng.range_u64(4, 63);
        let reqs = request_stream(&mut rng, 64, 40);
        let mut ppm = IsPpm::new(order);
        let mut last = None;
        for &r in &reqs {
            ppm.observe(r);
            last = Some(r);
        }
        if let Some(base) = last {
            if let Some(pred) = ppm.predict_after(base, blocks) {
                assert!(pred.within(blocks), "case {case}");
                assert!(pred.size >= 1, "case {case}");
            }
        }
    }
}

/// The engine never issues an out-of-file or cached block, never
/// issues the same block twice within one path, and respects the
/// in-flight cap at every instant.
#[test]
fn engine_invariants() {
    for case in 0..96u64 {
        let mut rng = Rng64::new(case ^ 0xE6);
        let cfg_idx = rng.range_u64(0, 6) as usize;
        let blocks = rng.range_u64(8, 127);
        let reqs = request_stream(&mut rng, 8, 30);
        let cached_mod = rng.range_u64(2, 6);
        let cfg = PrefetchConfig::paper_suite()[cfg_idx];
        let mut pf = FilePrefetcher::new(cfg, blocks);
        let cap = cfg.aggressive.map_or(usize::MAX, |l| l.cap());
        for &r in &reqs {
            // Clamp the request into this file.
            let off = r.offset.min(blocks - 1);
            let size = r.size.min(blocks - off);
            pf.on_demand(Request::new(off, size));
            let mut seen = std::collections::HashSet::new();
            while let Some(b) = pf.next_block(|b| b % cached_mod == 0) {
                assert!(b < blocks, "issued out-of-file block {b} (case {case})");
                assert!(b % cached_mod != 0, "issued cached block {b} (case {case})");
                assert!(seen.insert(b), "issued duplicate block {b} (case {case})");
                assert!(pf.in_flight() <= cap, "case {case}");
                pf.on_prefetch_complete();
            }
        }
    }
}

/// Linear aggressive OBA from block 0 issues exactly the uncached
/// tail of the file, in order.
#[test]
fn ln_agr_oba_covers_file() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x0BA);
        let blocks = rng.range_u64(2, 199);
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), blocks);
        pf.on_demand(Request::new(0, 1));
        let mut got = Vec::new();
        while let Some(b) = pf.next_block(|_| false) {
            got.push(b);
            pf.on_prefetch_complete();
        }
        let expect: Vec<u64> = (1..blocks).collect();
        assert_eq!(got, expect, "case {case}");
    }
}

/// For a perfectly regular stride the order-1 graph predictor walks
/// the exact future of the stream (no fallback, no gaps).
#[test]
fn strided_pattern_predicted_exactly() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x57);
        let stride = rng.range_u64(2, 15);
        let size = rng.range_u64(1, 3).min(stride); // non-overlapping requests
        let warm = rng.range_u64(3, 7) as usize;
        let blocks = 10_000u64;
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), blocks);
        let mut off = 0;
        for _ in 0..warm {
            pf.on_demand(Request::new(off, size));
            off += stride;
        }
        // The next predicted block must be exactly `off` (the start of
        // the next strided request).
        let first = pf.next_block(|_| false);
        assert_eq!(first, Some(off), "case {case}");
    }
}

/// Aggressive engines terminate: the number of pulled blocks is
/// bounded even for adversarial (cyclic) streams.
#[test]
fn aggressive_walks_terminate() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x7E);
        let order = rng.range_u64(1, 2) as usize;
        let blocks = 16u64;
        let reqs = request_stream(&mut rng, blocks, 20);
        let cfg = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Unlimited),
            ..PrefetchConfig::ln_agr_is_ppm(order)
        };
        assert_eq!(cfg.algorithm, AlgorithmKind::IsPpm { order });
        let mut pf = FilePrefetcher::new(cfg, blocks);
        for &r in &reqs {
            let off = r.offset.min(blocks - 1);
            let size = r.size.min(blocks - off);
            pf.on_demand(Request::new(off, size));
        }
        let mut pulled = 0u64;
        while pf.next_block(|_| false).is_some() {
            pulled += 1;
            assert!(
                pulled <= 2 * blocks + 64,
                "walk failed to terminate (case {case})"
            );
        }
    }
}

/// MRU and frequency edge choices agree when every node has a single
/// successor.
#[test]
fn edge_choices_agree_on_deterministic_patterns() {
    for stride in 1u64..10 {
        let mut mru = IsPpm::with_edge_choice(1, EdgeChoice::MostRecent);
        let mut freq = IsPpm::with_edge_choice(1, EdgeChoice::MostFrequent);
        let mut off = 0;
        for _ in 0..10 {
            let r = Request::new(off, 1);
            mru.observe(r);
            freq.observe(r);
            off += stride;
        }
        let base = Request::new(off - stride, 1);
        assert_eq!(
            mru.predict_after(base, 1 << 20),
            freq.predict_after(base, 1 << 20),
            "stride {stride}"
        );
    }
}

/// With a lead cap of k and no consuming demands, an aggressive walk
/// hands out at most k blocks, however often completions are
/// acknowledged.
#[test]
fn lead_cap_bounds_unconsumed_prefetch() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x1EAD);
        let cap = rng.range_u64(1, 31);
        let blocks = rng.range_u64(64, 255);
        let cfg = PrefetchConfig {
            lead_cap: Some(cap),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, blocks);
        pf.on_demand(Request::new(0, 1));
        let mut issued = 0u64;
        while pf.next_block(|_| false).is_some() {
            issued += 1;
            pf.on_prefetch_complete();
            assert!(issued <= cap, "issued {issued} > cap {cap} (case {case})");
        }
        assert_eq!(issued, cap.min(blocks - 1), "case {case}");
    }
}

/// Replay scores are well-formed fractions for arbitrary request
/// streams and any paper configuration.
#[test]
fn replay_scores_are_fractions() {
    use prefetch::replay;
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0x5C0);
        let cfg_idx = rng.range_u64(0, 6) as usize;
        let reqs = request_stream(&mut rng, 256, 60);
        let cfg = PrefetchConfig::paper_suite()[cfg_idx];
        let score = replay::evaluate(cfg, 256, &reqs);
        assert_eq!(score.requests, reqs.len() as u64, "case {case}");
        assert!((0.0..=1.0).contains(&score.exact_accuracy()), "case {case}");
        assert!(
            (0.0..=1.0).contains(&score.overlap_accuracy()),
            "case {case}"
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&score.block_coverage()),
            "case {case}"
        );
        assert!(score.exact <= score.overlapping, "case {case}");
        assert!(score.overlapping <= score.predicted, "case {case}");
    }
}

/// The back-off engine issues the same or fewer OBA-fallback blocks
/// than the plain engine of the same order, on any stream.
#[test]
fn backoff_never_falls_back_more_than_plain() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(case ^ 0xBAC0);
        let reqs = request_stream(&mut rng, 64, 40);
        let mut plain = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(3), 64);
        let mut backoff = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm_backoff(3), 64);
        for &r in &reqs {
            let off = r.offset.min(63);
            let size = r.size.min(64 - off);
            for pf in [&mut plain, &mut backoff] {
                pf.on_demand(Request::new(off, size));
                while pf.next_block(|_| false).is_some() {
                    pf.on_prefetch_complete();
                }
            }
        }
        // Both issued the same *number* of decisions is not guaranteed,
        // but the backoff engine's *fallback share* must not exceed the
        // plain engine's by more than rounding noise.
        assert!(
            backoff.stats().fallback_share() <= plain.stats().fallback_share() + 1e-9,
            "backoff {} vs plain {} (case {case})",
            backoff.stats().fallback_share(),
            plain.stats().fallback_share()
        );
    }
}
