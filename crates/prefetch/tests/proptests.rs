//! Property-based tests over the prefetching algorithms.

use prefetch::{
    AggressiveLimit, AlgorithmKind, EdgeChoice, FilePrefetcher, IsPpm, PrefetchConfig, Request,
};
use proptest::prelude::*;

/// An arbitrary in-bounds request stream for a file of `blocks` blocks.
fn request_stream(blocks: u64, len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (0..blocks, 1..=8u64).prop_map(move |(o, s)| {
            let size = s.min(blocks - o).max(1);
            Request::new(o, size)
        }),
        1..=len,
    )
}

proptest! {
    /// The IS_PPM graph is well-formed under arbitrary request streams:
    /// node count grows by at most one per request, contexts are unique
    /// and exactly `order` long, and edges only connect existing nodes.
    #[test]
    fn isppm_graph_well_formed(
        order in 1usize..4,
        reqs in request_stream(64, 60),
    ) {
        let mut ppm = IsPpm::new(order);
        for (i, &r) in reqs.iter().enumerate() {
            ppm.observe(r);
            prop_assert!(ppm.node_count() <= i + 1);
        }
        prop_assert!(ppm.edge_count() <= reqs.len());
        let n = ppm.node_count();
        for (from, to, _, count) in ppm.edges() {
            let _ = ppm.context(from);
            let ctx = ppm.context(to);
            prop_assert_eq!(ctx.len(), order);
            prop_assert!(count >= 1);
            let _ = (from, to);
        }
        let _ = n;
    }

    /// Whatever the history, a prediction never leaves the file.
    #[test]
    fn predictions_stay_in_bounds(
        order in 1usize..4,
        blocks in 4u64..64,
        reqs in request_stream(64, 40),
    ) {
        let mut ppm = IsPpm::new(order);
        let mut last = None;
        for &r in &reqs {
            ppm.observe(r);
            last = Some(r);
        }
        if let Some(base) = last {
            if let Some(pred) = ppm.predict_after(base, blocks) {
                prop_assert!(pred.within(blocks));
                prop_assert!(pred.size >= 1);
            }
        }
    }

    /// The engine never issues an out-of-file or cached block, never
    /// issues the same block twice within one path, and respects the
    /// in-flight cap at every instant.
    #[test]
    fn engine_invariants(
        cfg_idx in 0usize..7,
        blocks in 8u64..128,
        reqs in request_stream(8, 30),
        cached_mod in 2u64..7,
    ) {
        let cfg = PrefetchConfig::paper_suite()[cfg_idx];
        let mut pf = FilePrefetcher::new(cfg, blocks);
        let cap = cfg.aggressive.map_or(usize::MAX, |l| l.cap());
        for &r in &reqs {
            // Clamp the request into this file.
            let off = r.offset.min(blocks - 1);
            let size = r.size.min(blocks - off);
            pf.on_demand(Request::new(off, size));
            let mut seen = std::collections::HashSet::new();
            while let Some(b) = pf.next_block(|b| b % cached_mod == 0) {
                prop_assert!(b < blocks, "issued out-of-file block {b}");
                prop_assert!(b % cached_mod != 0, "issued cached block {b}");
                prop_assert!(seen.insert(b), "issued duplicate block {b}");
                prop_assert!(pf.in_flight() <= cap);
                pf.on_prefetch_complete();
            }
        }
    }

    /// Linear aggressive OBA from block 0 issues exactly the uncached
    /// tail of the file, in order.
    #[test]
    fn ln_agr_oba_covers_file(blocks in 2u64..200) {
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_oba(), blocks);
        pf.on_demand(Request::new(0, 1));
        let mut got = Vec::new();
        while let Some(b) = pf.next_block(|_| false) {
            got.push(b);
            pf.on_prefetch_complete();
        }
        let expect: Vec<u64> = (1..blocks).collect();
        prop_assert_eq!(got, expect);
    }

    /// For a perfectly regular stride the order-1 graph predictor walks
    /// the exact future of the stream (no fallback, no gaps).
    #[test]
    fn strided_pattern_predicted_exactly(
        stride in 2u64..16,
        size in 1u64..4,
        warm in 3usize..8,
    ) {
        let size = size.min(stride); // non-overlapping requests
        let blocks = 10_000u64;
        let mut pf = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(1), blocks);
        let mut off = 0;
        for _ in 0..warm {
            pf.on_demand(Request::new(off, size));
            off += stride;
        }
        // The next predicted block must be exactly `off` (the start of
        // the next strided request).
        let first = pf.next_block(|_| false);
        prop_assert_eq!(first, Some(off));
    }

    /// Aggressive engines terminate: the number of pulled blocks is
    /// bounded even for adversarial (cyclic) streams.
    #[test]
    fn aggressive_walks_terminate(
        order in 1usize..3,
        reqs in request_stream(16, 20),
    ) {
        let blocks = 16u64;
        let cfg = PrefetchConfig {
            aggressive: Some(AggressiveLimit::Unlimited),
            ..PrefetchConfig::ln_agr_is_ppm(order)
        };
        prop_assert_eq!(cfg.algorithm, AlgorithmKind::IsPpm { order });
        let mut pf = FilePrefetcher::new(cfg, blocks);
        for &r in &reqs {
            let off = r.offset.min(blocks - 1);
            let size = r.size.min(blocks - off);
            pf.on_demand(Request::new(off, size));
        }
        let mut pulled = 0u64;
        while pf.next_block(|_| false).is_some() {
            pulled += 1;
            prop_assert!(pulled <= 2 * blocks + 64, "walk failed to terminate");
        }
    }

    /// MRU and frequency edge choices agree when every node has a
    /// single successor.
    #[test]
    fn edge_choices_agree_on_deterministic_patterns(stride in 1u64..10) {
        let mut mru = IsPpm::with_edge_choice(1, EdgeChoice::MostRecent);
        let mut freq = IsPpm::with_edge_choice(1, EdgeChoice::MostFrequent);
        let mut off = 0;
        for _ in 0..10 {
            let r = Request::new(off, 1);
            mru.observe(r);
            freq.observe(r);
            off += stride;
        }
        let base = Request::new(off - stride, 1);
        prop_assert_eq!(
            mru.predict_after(base, 1 << 20),
            freq.predict_after(base, 1 << 20)
        );
    }
}

proptest! {
    /// With a lead cap of k and no consuming demands, an aggressive
    /// walk hands out at most k blocks, however often completions are
    /// acknowledged.
    #[test]
    fn lead_cap_bounds_unconsumed_prefetch(cap in 1u64..32, blocks in 64u64..256) {
        let cfg = PrefetchConfig {
            lead_cap: Some(cap),
            ..PrefetchConfig::ln_agr_oba()
        };
        let mut pf = FilePrefetcher::new(cfg, blocks);
        pf.on_demand(Request::new(0, 1));
        let mut issued = 0u64;
        while pf.next_block(|_| false).is_some() {
            issued += 1;
            pf.on_prefetch_complete();
            prop_assert!(issued <= cap, "issued {issued} > cap {cap}");
        }
        prop_assert_eq!(issued, cap.min(blocks - 1));
    }

    /// Replay scores are well-formed fractions for arbitrary request
    /// streams and any paper configuration.
    #[test]
    fn replay_scores_are_fractions(
        cfg_idx in 0usize..7,
        reqs in request_stream(256, 60),
    ) {
        use prefetch::replay;
        let cfg = PrefetchConfig::paper_suite()[cfg_idx];
        let score = replay::evaluate(cfg, 256, &reqs);
        prop_assert_eq!(score.requests, reqs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&score.exact_accuracy()));
        prop_assert!((0.0..=1.0).contains(&score.overlap_accuracy()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&score.block_coverage()));
        prop_assert!(score.exact <= score.overlapping);
        prop_assert!(score.overlapping <= score.predicted);
    }

    /// The back-off engine issues the same or fewer OBA-fallback blocks
    /// than the plain engine of the same order, on any stream.
    #[test]
    fn backoff_never_falls_back_more_than_plain(
        reqs in request_stream(64, 40),
    ) {
        let mut plain = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm(3), 64);
        let mut backoff = FilePrefetcher::new(PrefetchConfig::ln_agr_is_ppm_backoff(3), 64);
        for &r in &reqs {
            let off = r.offset.min(63);
            let size = r.size.min(64 - off);
            for pf in [&mut plain, &mut backoff] {
                pf.on_demand(Request::new(off, size));
                while pf.next_block(|_| false).is_some() {
                    pf.on_prefetch_complete();
                }
            }
        }
        // Both issued the same *number* of decisions is not guaranteed,
        // but the backoff engine's *fallback share* must not exceed the
        // plain engine's by more than rounding noise.
        prop_assert!(
            backoff.stats().fallback_share() <= plain.stats().fallback_share() + 1e-9,
            "backoff {} vs plain {}",
            backoff.stats().fallback_share(),
            plain.stats().fallback_share()
        );
    }
}
