//! # simcheck — runtime invariant oracle for the simulator
//!
//! The span model makes every read exactly decomposable, which means
//! conservation invariants are checkable per-request at near-zero
//! cost. This crate holds the bookkeeping for those checks, kept
//! deliberately *observational*: an [`Oracle`] never mutates
//! simulation state and never draws randomness, so a run produces
//! bit-identical results whether the oracle is on or off.
//!
//! What the oracle tracks (the event loop calls in at the marked
//! points; see DESIGN.md §15 for the full catalogue):
//!
//! * **Read conservation** — every issued read id completes exactly
//!   once: no loss across outage abort-and-reissue, no
//!   double-completion from stale `done_seq` events.
//! * **Span accounting** — the 10 span components of a read sum
//!   exactly to its recorded latency (the event loop computes both
//!   sides and asks [`Oracle::check_span`] to compare).
//! * **Linear limit** — a prefetch engine's in-flight units never
//!   exceed the configured aggressiveness.
//! * **Degraded safety** — a remote hit is never served from a node
//!   currently in a node-outage window.
//! * **Queue monotonicity** — event timestamps never run backwards.
//! * **Liveness** — a watchdog trips if the loop processes a large
//!   number of events without simulated time advancing or a read
//!   completing (a spin would otherwise hang forever).
//!
//! Violations surface as `Err(String)`; the simulator panics with the
//! message plus a state dump, which is what turns a silent
//! conservation bug into a one-line diagnosis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use simkit::SimTime;

/// Whether the invariant oracle runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckMode {
    /// On in debug builds (and therefore in `cargo test`), off in
    /// release builds — the default, so tests always check and
    /// benchmarks never pay.
    #[default]
    Auto,
    /// Always on (what the chaos sweep uses, release builds included).
    On,
    /// Always off.
    Off,
}

impl CheckMode {
    /// Does this mode enable the oracle in the current build?
    pub fn enabled(self) -> bool {
        match self {
            CheckMode::Auto => cfg!(debug_assertions),
            CheckMode::On => true,
            CheckMode::Off => false,
        }
    }

    /// Name used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            CheckMode::Auto => "auto",
            CheckMode::On => "on",
            CheckMode::Off => "off",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(CheckMode::Auto),
            "on" => Some(CheckMode::On),
            "off" => Some(CheckMode::Off),
            _ => None,
        }
    }
}

/// Events the loop may process without time advancing or a read
/// completing before the liveness watchdog trips. Legitimate same-time
/// bursts (every process resuming at t=0, a sweep flushing thousands
/// of blocks) stay far below this; a stuck loop crosses it in well
/// under a second of wall time.
pub const WATCHDOG_EVENTS: u64 = 5_000_000;

/// The invariant oracle. Purely observational bookkeeping: per-read
/// completion counts, the degraded-node set, the last event timestamp
/// and the watchdog counter. Allocation is amortized (one growing
/// `Vec<u8>` indexed by read id), so per-event cost is a few loads.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Completion count per read id (ids are dense, so a Vec indexes
    /// directly). 0 = issued, 1 = completed, >1 = the bug.
    completions: Vec<u8>,
    /// Nodes currently inside a node-outage window.
    degraded: Vec<bool>,
    last_time: Option<SimTime>,
    /// Events since time last advanced or a read last completed.
    stuck_events: u64,
}

impl Oracle {
    /// A fresh oracle for a machine with `nodes` cache nodes.
    pub fn new(nodes: usize) -> Self {
        Oracle {
            completions: Vec::new(),
            degraded: vec![false; nodes],
            last_time: None,
            stuck_events: 0,
        }
    }

    /// Reads issued so far.
    pub fn reads_issued(&self) -> usize {
        self.completions.len()
    }

    /// Called once per popped event with its timestamp: enforces
    /// monotonicity and advances the liveness watchdog.
    pub fn on_event(&mut self, now: SimTime) -> Result<(), String> {
        match self.last_time {
            Some(last) if now < last => {
                return Err(format!(
                    "event queue ran backwards: popped t={:?} after t={:?}",
                    now, last
                ));
            }
            Some(last) if now == last => {
                self.stuck_events += 1;
                if self.stuck_events > WATCHDOG_EVENTS {
                    return Err(format!(
                        "liveness watchdog: {} events at t={:?} with no progress",
                        self.stuck_events, now
                    ));
                }
            }
            _ => {
                self.last_time = Some(now);
                self.stuck_events = 0;
            }
        }
        Ok(())
    }

    /// A demand read was issued under id `rid`. Ids must be dense and
    /// in order — that is how the simulator allocates them, and it is
    /// what lets completions index a flat `Vec`.
    pub fn read_issued(&mut self, rid: u32) -> Result<(), String> {
        if rid as usize != self.completions.len() {
            return Err(format!(
                "read id {} issued out of order (expected {})",
                rid,
                self.completions.len()
            ));
        }
        self.completions.push(0);
        Ok(())
    }

    /// The read `rid` completed (its latency was recorded). Exactly
    /// one completion per issued id is legal.
    pub fn read_completed(&mut self, rid: u32) -> Result<(), String> {
        self.stuck_events = 0;
        match self.completions.get_mut(rid as usize) {
            None => Err(format!("completion for never-issued read id {rid}")),
            Some(c) => {
                *c += 1;
                if *c > 1 {
                    Err(format!("read id {rid} completed {c} times"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Compare a read's span-component sum against its recorded
    /// latency; they must be exactly equal (the span model is additive
    /// by construction, so any drift is a lost or double-counted
    /// component).
    pub fn check_span(
        &self,
        rid: u32,
        component_sum: simkit::SimDuration,
        latency: simkit::SimDuration,
    ) -> Result<(), String> {
        if component_sum != latency {
            return Err(format!(
                "span components of read {rid} sum to {:?} but its latency is {:?}",
                component_sum, latency
            ));
        }
        Ok(())
    }

    /// A prefetch engine's in-flight units must never exceed the
    /// configured linear limit (extent batches charge one unit).
    pub fn check_limit(&self, file: u32, in_flight: usize, cap: usize) -> Result<(), String> {
        if in_flight > cap {
            return Err(format!(
                "linear limit exceeded on file {file}: {in_flight} units in flight, cap {cap}"
            ));
        }
        Ok(())
    }

    /// Mirror a node's degraded-mode transitions.
    pub fn set_degraded(&mut self, node: u32, degraded: bool) {
        let idx = node as usize;
        if idx >= self.degraded.len() {
            self.degraded.resize(idx + 1, false);
        }
        self.degraded[idx] = degraded;
    }

    /// A remote hit was served by `holder` — illegal while that node
    /// is inside a node-outage window.
    pub fn check_remote_hit(&self, holder: u32) -> Result<(), String> {
        if self.degraded.get(holder as usize).copied().unwrap_or(false) {
            return Err(format!("remote hit served by degraded node {holder}"));
        }
        Ok(())
    }

    /// End-of-run conservation: every issued read completed exactly
    /// once, and no fetch is still pending.
    pub fn end_of_run(&self, pending_fetches: usize) -> Result<(), String> {
        if pending_fetches != 0 {
            return Err(format!(
                "{pending_fetches} fetches still pending at end of run"
            ));
        }
        let lost: Vec<usize> = self
            .completions
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 1)
            .map(|(i, _)| i)
            .take(8)
            .collect();
        if !lost.is_empty() {
            let bad = self.completions.iter().filter(|c| **c != 1).count();
            return Err(format!(
                "{bad} of {} reads did not complete exactly once (first ids: {:?})",
                self.completions.len(),
                lost
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn mode_enablement() {
        assert!(CheckMode::On.enabled());
        assert!(!CheckMode::Off.enabled());
        assert_eq!(CheckMode::Auto.enabled(), cfg!(debug_assertions));
        assert_eq!(CheckMode::parse("on"), Some(CheckMode::On));
        assert_eq!(CheckMode::parse("off"), Some(CheckMode::Off));
        assert_eq!(CheckMode::parse("auto"), Some(CheckMode::Auto));
        assert_eq!(CheckMode::parse("maybe"), None);
        assert_eq!(CheckMode::Auto.name(), "auto");
    }

    #[test]
    fn conservation_happy_path() {
        let mut o = Oracle::new(2);
        o.read_issued(0).unwrap();
        o.read_issued(1).unwrap();
        o.read_completed(0).unwrap();
        o.read_completed(1).unwrap();
        o.end_of_run(0).unwrap();
    }

    #[test]
    fn detects_lost_and_double_completion() {
        let mut o = Oracle::new(1);
        o.read_issued(0).unwrap();
        o.read_issued(1).unwrap();
        o.read_completed(0).unwrap();
        assert!(o.read_completed(0).is_err(), "double completion");
        let mut o = Oracle::new(1);
        o.read_issued(0).unwrap();
        assert!(o.end_of_run(0).is_err(), "lost read");
        assert!(o.read_completed(7).is_err(), "never-issued id");
        assert!(o.read_issued(5).is_err(), "out-of-order id");
    }

    #[test]
    fn detects_pending_fetches_at_end() {
        let o = Oracle::new(1);
        assert!(o.end_of_run(3).is_err());
    }

    #[test]
    fn monotonicity_and_watchdog() {
        let mut o = Oracle::new(1);
        o.on_event(t(1)).unwrap();
        o.on_event(t(2)).unwrap();
        assert!(o.on_event(t(1)).is_err(), "time ran backwards");

        let mut o = Oracle::new(1);
        for _ in 0..1000 {
            o.on_event(t(5)).unwrap();
        }
        o.stuck_events = WATCHDOG_EVENTS; // fast-forward the counter
        assert!(o.on_event(t(5)).is_err(), "watchdog");
        // A read completion counts as progress.
        let mut o = Oracle::new(1);
        o.read_issued(0).unwrap();
        o.on_event(t(5)).unwrap();
        o.stuck_events = WATCHDOG_EVENTS;
        o.read_completed(0).unwrap();
        o.on_event(t(5)).unwrap();
    }

    #[test]
    fn span_and_limit_checks() {
        let o = Oracle::new(1);
        let d = SimDuration::from_millis(3);
        o.check_span(0, d, d).unwrap();
        assert!(o.check_span(0, d, d + SimDuration::from_nanos(1)).is_err());
        o.check_limit(9, 3, 3).unwrap();
        assert!(o.check_limit(9, 4, 3).is_err());
    }

    #[test]
    fn degraded_holders_flagged() {
        let mut o = Oracle::new(4);
        o.check_remote_hit(2).unwrap();
        o.set_degraded(2, true);
        assert!(o.check_remote_hit(2).is_err());
        o.set_degraded(2, false);
        o.check_remote_hit(2).unwrap();
        // Out-of-range nodes are simply not degraded.
        o.check_remote_hit(99).unwrap();
    }
}
