//! # simkit — deterministic discrete-event simulation substrate
//!
//! This crate is the reproduction's stand-in for the DIMEMAS simulator
//! core used by Cortes & Labarta (IPPS'99). DIMEMAS is a closed-source,
//! trace-driven simulator of distributed-memory parallel machines; the
//! paper only relies on a small, well-documented part of it:
//!
//! * a global simulated clock and an ordered event list,
//! * service stations with queueing (disks, with *demand-before-prefetch*
//!   priority) modelled as `latency + size / bandwidth`,
//! * communication modelled as `startup + size / bandwidth`, and
//! * per-process CPU demand bursts.
//!
//! `simkit` provides the generic machinery (time, event queue, stations,
//! statistics); the concrete disk/network/CPU models live in `lap-core`.
//!
//! ## Design
//!
//! Instead of an inversion-of-control engine that owns callbacks, the
//! event queue and stations are *passive* data structures that a
//! simulation loop drives explicitly. This avoids `Rc<RefCell<…>>`
//! webs, keeps the hot loop allocation-free, and makes the whole
//! simulation deterministic and easily testable: two events scheduled
//! for the same instant are always delivered in scheduling (FIFO)
//! order.
//!
//! ```
//! use simkit::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), Ev::Pong);
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(1), Ev::Ping);
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1.as_micros(), e1), (1, Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2.as_micros(), e2), (5, Ev::Pong));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod queue;
pub mod service;
mod station;
pub mod stats;
mod time;

pub use lapobs::{StationId, StationKind};
pub use queue::{EventQueue, QueueBackend, QueueDepthStats};
pub use service::{DeviceOp, FifoSched, JobSpec, MechDetail, Scheduler, ServiceCost, ServiceModel};
pub use station::{Priority, StartedJob, Station, StationStats};
pub use time::{SimDuration, SimTime};
