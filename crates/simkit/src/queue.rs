//! The central event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: delivery time, a monotonically increasing sequence
/// number for stable FIFO ordering of simultaneous events, and the
/// payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, among
        // equals, the first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Occupancy accounting for an [`EventQueue`], collected only when
/// depth tracking is enabled.
///
/// All fields count deterministic quantities: they depend on the
/// push/pop sequence alone, never on wall time, so two same-seed runs
/// yield identical stats. The invariant `pushes - pops == len()` holds
/// at every instant (see the `depth_accounting_never_drifts` test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDepthStats {
    /// Events pushed since tracking was enabled.
    pub pushes: u64,
    /// Events popped since tracking was enabled.
    pub pops: u64,
    /// Largest pending-event count observed after any push.
    pub peak_depth: u64,
    /// Sum over all pops of the depth at the moment of the pop
    /// (counting the popped event). `depth_ticks / pops` is the mean
    /// depth seen by the consumer.
    pub depth_ticks: u64,
}

/// A deterministic pending-event set ordered by simulated time.
///
/// Events scheduled for the same instant are delivered in the order
/// they were scheduled (FIFO), which makes simulations reproducible
/// bit-for-bit regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    // `None` is the default zero-cost path: push/pop pay one branch on
    // an always-false discriminant and no accounting writes.
    depth: Option<QueueDepthStats>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            depth: None,
        }
    }

    /// Start collecting occupancy statistics. Off by default so the
    /// hot loop stays free of accounting work; profiled runs switch it
    /// on before the first event is scheduled.
    pub fn enable_depth_tracking(&mut self) {
        self.depth = Some(QueueDepthStats::default());
    }

    /// Occupancy statistics since [`enable_depth_tracking`] was
    /// called, or `None` when tracking is off.
    ///
    /// [`enable_depth_tracking`]: EventQueue::enable_depth_tracking
    pub fn depth_stats(&self) -> Option<QueueDepthStats> {
        self.depth
    }

    /// The current simulated time: the delivery time of the most
    /// recently popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the simulated past — scheduling backwards
    /// in time is always a model bug and would silently corrupt
    /// causality if allowed.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        if let Some(d) = &mut self.depth {
            d.pushes += 1;
            d.peak_depth = d.peak_depth.max(self.heap.len() as u64);
        }
    }

    /// Remove and return the next event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(d) = &mut self.depth {
            if !self.heap.is_empty() {
                d.pops += 1;
                d.depth_ticks += self.heap.len() as u64;
            }
        }
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Delivery time of the next event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events without advancing the clock.
    ///
    /// Dropped events count as pops (so `pushes - pops == len()` keeps
    /// holding) but contribute no depth ticks — they were never seen
    /// by the consumer.
    pub fn clear(&mut self) {
        if let Some(d) = &mut self.depth {
            d.pops += self.heap.len() as u64;
        }
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), "c");
        q.schedule(at(10), "a");
        q.schedule(at(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(at(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), at(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(at(10), ());
        q.pop();
        q.schedule(at(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(at(3), ());
        assert_eq!(q.peek_time(), Some(at(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(at(1), ());
        q.schedule(at(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// The depth-accounting invariant: at every instant,
    /// `pushes - pops == len()`, and `peak_depth` dominates every
    /// observed length. Exercised over an interleaved push/pop/clear
    /// sequence so no drift can hide in a particular ordering.
    #[test]
    fn depth_accounting_never_drifts() {
        let mut q = EventQueue::new();
        q.enable_depth_tracking();
        let check = |q: &EventQueue<u64>| {
            let d = q.depth_stats().unwrap();
            assert_eq!(
                d.pushes - d.pops,
                q.len() as u64,
                "depth accounting drifted from push/pop delta"
            );
            assert!(d.peak_depth >= q.len() as u64);
        };
        // Interleave: grow to i, shrink by i/2, repeatedly.
        let mut t = 0;
        for round in 1..=8u64 {
            for i in 0..round * 3 {
                t += 1 + i;
                q.schedule(at(t), i);
                check(&q);
            }
            for _ in 0..round {
                q.pop();
                check(&q);
            }
        }
        let d = q.depth_stats().unwrap();
        assert!(d.depth_ticks >= d.pops, "each pop ticks at least depth 1");
        // Drain and re-check; then clear must also keep the invariant.
        q.schedule(at(t + 1), 0);
        q.schedule(at(t + 2), 1);
        q.clear();
        check(&q);
        while q.pop().is_some() {
            check(&q);
        }
        let d = q.depth_stats().unwrap();
        assert_eq!(d.pushes, d.pops, "drained queue must balance");
    }

    #[test]
    fn depth_tracking_off_by_default() {
        let mut q = EventQueue::new();
        q.schedule(at(1), ());
        q.pop();
        assert_eq!(q.depth_stats(), None);
    }

    #[test]
    fn depth_stats_match_a_known_sequence() {
        let mut q = EventQueue::new();
        q.enable_depth_tracking();
        q.schedule(at(1), "a");
        q.schedule(at(2), "b");
        q.schedule(at(3), "c");
        q.pop(); // depth 3 at pop
        q.pop(); // depth 2 at pop
        q.schedule(at(9), "d");
        q.pop(); // depth 2 at pop
        q.pop(); // depth 1 at pop
        let d = q.depth_stats().unwrap();
        assert_eq!(
            d,
            QueueDepthStats {
                pushes: 4,
                pops: 4,
                peak_depth: 3,
                depth_ticks: 3 + 2 + 2 + 1,
            }
        );
        // Popping empty must not tick.
        assert_eq!(q.pop(), None);
        assert_eq!(q.depth_stats().unwrap(), d);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(at(10), 0);
        q.pop();
        q.schedule(at(10), 1); // same instant as `now` — legal
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (at(10), 1));
    }
}
