//! The central event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: delivery time, a monotonically increasing sequence
/// number for stable FIFO ordering of simultaneous events, and the
/// payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, among
        // equals, the first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic pending-event set ordered by simulated time.
///
/// Events scheduled for the same instant are delivered in the order
/// they were scheduled (FIFO), which makes simulations reproducible
/// bit-for-bit regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the delivery time of the most
    /// recently popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the simulated past — scheduling backwards
    /// in time is always a model bug and would silently corrupt
    /// causality if allowed.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the next event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Delivery time of the next event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), "c");
        q.schedule(at(10), "a");
        q.schedule(at(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(at(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), at(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(at(10), ());
        q.pop();
        q.schedule(at(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(at(3), ());
        assert_eq!(q.peek_time(), Some(at(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(at(1), ());
        q.schedule(at(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(at(10), 0);
        q.pop();
        q.schedule(at(10), 1); // same instant as `now` — legal
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (at(10), 1));
    }
}
