//! The central event list.
//!
//! Two interchangeable backends sit behind [`EventQueue`]:
//!
//! * [`QueueBackend::Heap`] — a `BinaryHeap`, the reference
//!   implementation: O(log n) push/pop, no tuning parameters, and the
//!   semantic oracle every other backend is tested against.
//! * [`QueueBackend::Calendar`] — a bucketed calendar queue with O(1)
//!   amortized push/pop for the near-monotone timestamps a DES
//!   produces; far-future events (write-back sweeps, fault windows)
//!   overflow into a heap and are promoted lazily as the bucket
//!   window advances (DESIGN.md §14).
//!
//! Both deliver events in exactly the same total order — ascending
//! `(time, schedule sequence)` — so simulations are bit-identical
//! regardless of backend (see the randomized equivalence test).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: delivery time, a monotonically increasing sequence
/// number for stable FIFO ordering of simultaneous events, and the
/// payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, among
        // equals, the first-scheduled) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueBackend {
    /// `std::collections::BinaryHeap` — the reference implementation.
    Heap,
    /// Bucketed calendar queue with a heap overflow for far-future
    /// events. Same pop order, O(1) amortized operations.
    Calendar,
}

impl QueueBackend {
    /// Stable lowercase name (CLI/config spelling).
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parse the CLI/config spelling produced by [`name`].
    ///
    /// [`name`]: QueueBackend::name
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }
}

/// Bucket width of the calendar backend, in nanoseconds (2^18 ns ≈
/// 262 µs — on the order of one disk transfer, so a bucket holds O(1)
/// events on the simulator's workloads).
const CAL_WIDTH_NS: u64 = 1 << 18;

/// Number of buckets in the calendar ring. The window it spans
/// (`CAL_BUCKETS × CAL_WIDTH_NS` ≈ 134 ms) covers every near-term
/// event class (disk service, network hops, process resumes); only
/// rare far-horizon events (30 s write-back sweeps, fault windows)
/// take the overflow path.
const CAL_BUCKETS: usize = 512;

/// The calendar backend: a ring of time-sliced buckets covering
/// `[window_start, window_start + CAL_BUCKETS × CAL_WIDTH_NS)`, plus
/// an overflow heap for events beyond the window.
///
/// Invariants (exercised by the equivalence tests):
/// * every ring entry's time lies inside the window, in the bucket
///   `(at / width) % CAL_BUCKETS`, and slices increase along ring
///   order starting at `cursor` — so the first non-empty bucket from
///   the cursor holds the earliest pending events;
/// * the cursor's bucket is always sorted descending by `(at, seq)`
///   (pop takes from the end; in-window pushes binary-search insert);
/// * non-cursor buckets are unsorted append-only, sorted once when
///   the cursor reaches them;
/// * every overflow entry's time is `>= window_end`; advancing the
///   window promotes newly covered overflow entries into the ring.
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Index of the bucket whose time slice starts at `window_start`.
    cursor: usize,
    /// Start of the cursor bucket's slice (nanos, multiple of
    /// `CAL_WIDTH_NS`).
    window_start: u64,
    /// Entries currently in the ring (not counting overflow).
    ring_len: usize,
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..CAL_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            window_start: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// End of the bucket window (exclusive). Saturating: a window
    /// jumped near `SimTime::MAX` simply covers less than a full ring,
    /// which keeps the slice→bucket mapping injective.
    fn window_end(&self) -> u64 {
        self.window_start
            .saturating_add(CAL_BUCKETS as u64 * CAL_WIDTH_NS)
    }

    fn bucket_of(at: u64) -> usize {
        ((at / CAL_WIDTH_NS) as usize) % CAL_BUCKETS
    }

    /// Sort `bucket` descending by `(at, seq)` so pops take from the
    /// end in ascending order.
    fn sort_bucket(&mut self, bucket: usize) {
        self.buckets[bucket].sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
    }

    fn push(&mut self, e: Entry<E>) {
        let at = e.at.as_nanos();
        if at >= self.window_end() {
            self.overflow.push(e);
            return;
        }
        let b = Self::bucket_of(at);
        if b == self.cursor {
            // The cursor bucket stays sorted; insert in place.
            let v = &mut self.buckets[b];
            let pos = v.partition_point(|x| (x.at, x.seq) > (e.at, e.seq));
            v.insert(pos, e);
        } else {
            self.buckets[b].push(e);
        }
        self.ring_len += 1;
    }

    /// Move the cursor one slice forward, promoting overflow entries
    /// the window now covers, and sort the new cursor bucket.
    fn advance(&mut self) {
        debug_assert!(self.buckets[self.cursor].is_empty());
        self.cursor = (self.cursor + 1) % CAL_BUCKETS;
        self.window_start += CAL_WIDTH_NS;
        let end = self.window_end();
        while self.overflow.peek().is_some_and(|e| e.at.as_nanos() < end) {
            let e = self.overflow.pop().expect("peeked");
            self.buckets[Self::bucket_of(e.at.as_nanos())].push(e);
            self.ring_len += 1;
        }
        self.sort_bucket(self.cursor);
    }

    /// The ring is empty: jump the window to the earliest overflow
    /// entry and refill from overflow.
    fn jump_to(&mut self, min: Entry<E>) {
        debug_assert_eq!(self.ring_len, 0);
        let at = min.at.as_nanos();
        self.window_start = (at / CAL_WIDTH_NS) * CAL_WIDTH_NS;
        self.cursor = Self::bucket_of(at);
        self.buckets[self.cursor].push(min);
        self.ring_len += 1;
        let end = self.window_end();
        while self.overflow.peek().is_some_and(|e| e.at.as_nanos() < end) {
            let e = self.overflow.pop().expect("peeked");
            self.buckets[Self::bucket_of(e.at.as_nanos())].push(e);
            self.ring_len += 1;
        }
        self.sort_bucket(self.cursor);
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.ring_len == 0 {
            let min = self.overflow.pop()?;
            self.jump_to(min);
        }
        while self.buckets[self.cursor].is_empty() {
            self.advance();
        }
        let e = self.buckets[self.cursor].pop().expect("non-empty bucket");
        self.ring_len -= 1;
        Some(e)
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len > 0 {
            for i in 0..CAL_BUCKETS {
                let b = &self.buckets[(self.cursor + i) % CAL_BUCKETS];
                if !b.is_empty() {
                    // The first non-empty bucket from the cursor holds
                    // the earliest slice; min within it is the answer.
                    return b.iter().map(|e| e.at).min();
                }
            }
            unreachable!("ring_len > 0 but all buckets empty");
        }
        self.overflow.peek().map(|e| e.at)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.ring_len = 0;
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Calendar<E>),
}

impl<E> Backend<E> {
    fn len(&self) -> usize {
        match self {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    fn push(&mut self, e: Entry<E>) {
        match self {
            Backend::Heap(h) => h.push(e),
            Backend::Calendar(c) => c.push(e),
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        match self {
            Backend::Heap(h) => h.pop(),
            Backend::Calendar(c) => c.pop(),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Backend::Heap(h) => h.peek().map(|e| e.at),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
    }
}

/// Occupancy accounting for an [`EventQueue`], collected only when
/// depth tracking is enabled.
///
/// All fields count deterministic quantities: they depend on the
/// push/pop sequence alone, never on wall time, so two same-seed runs
/// yield identical stats. The invariant `pushes - pops == len()` holds
/// at every instant (see the `depth_accounting_never_drifts` test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDepthStats {
    /// Events pushed since tracking was enabled.
    pub pushes: u64,
    /// Events popped since tracking was enabled.
    pub pops: u64,
    /// Largest pending-event count observed after any push.
    pub peak_depth: u64,
    /// Sum over all pops of the depth at the moment of the pop
    /// (counting the popped event). `depth_ticks / pops` is the mean
    /// depth seen by the consumer.
    pub depth_ticks: u64,
}

/// A deterministic pending-event set ordered by simulated time.
///
/// Events scheduled for the same instant are delivered in the order
/// they were scheduled (FIFO), which makes simulations reproducible
/// bit-for-bit regardless of backend internals.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
    // `None` is the default zero-cost path: push/pop pay one branch on
    // an always-false discriminant and no accounting writes.
    depth: Option<QueueDepthStats>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty heap-backed queue with the clock at
    /// `SimTime::ZERO` (the reference backend; simulations pick the
    /// calendar backend through their config).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Heap)
    }

    /// Create an empty queue on the given backend.
    pub fn with_backend(kind: QueueBackend) -> Self {
        EventQueue {
            backend: match kind {
                QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
                QueueBackend::Calendar => Backend::Calendar(Calendar::new()),
            },
            next_seq: 0,
            now: SimTime::ZERO,
            depth: None,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend_kind(&self) -> QueueBackend {
        match self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Start collecting occupancy statistics. Off by default so the
    /// hot loop stays free of accounting work; profiled runs switch it
    /// on before the first event is scheduled.
    pub fn enable_depth_tracking(&mut self) {
        self.depth = Some(QueueDepthStats::default());
    }

    /// Occupancy statistics since [`enable_depth_tracking`] was
    /// called, or `None` when tracking is off.
    ///
    /// [`enable_depth_tracking`]: EventQueue::enable_depth_tracking
    pub fn depth_stats(&self) -> Option<QueueDepthStats> {
        self.depth
    }

    /// The current simulated time: the delivery time of the most
    /// recently popped event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the simulated past — scheduling backwards
    /// in time is always a model bug and would silently corrupt
    /// causality if allowed.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.backend.push(Entry { at, seq, event });
        if let Some(d) = &mut self.depth {
            d.pushes += 1;
            d.peak_depth = d.peak_depth.max(self.backend.len() as u64);
        }
    }

    /// Remove and return the next event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(d) = &mut self.depth {
            let len = self.backend.len();
            if len > 0 {
                d.pops += 1;
                d.depth_ticks += len as u64;
            }
        }
        let entry = self.backend.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Delivery time of the next event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.backend.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// Drop all pending events without advancing the clock.
    ///
    /// Dropped events count as pops (so `pushes - pops == len()` keeps
    /// holding) but contribute no depth ticks — they were never seen
    /// by the consumer.
    pub fn clear(&mut self) {
        if let Some(d) = &mut self.depth {
            d.pops += self.backend.len() as u64;
        }
        self.backend.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Run a test body against both backends.
    fn on_both(f: impl Fn(EventQueue<u64>)) {
        f(EventQueue::with_backend(QueueBackend::Heap));
        f(EventQueue::with_backend(QueueBackend::Calendar));
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.schedule(at(30), 2);
            q.schedule(at(10), 0);
            q.schedule(at(20), 1);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![0, 1, 2]);
        });
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        on_both(|mut q| {
            for i in 0..100 {
                q.schedule(at(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|mut q| {
            q.schedule(at(7), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), at(7));
        });
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(at(10), ());
        q.pop();
        q.schedule(at(5), ());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn calendar_scheduling_into_the_past_panics() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.schedule(at(10), ());
        q.pop();
        q.schedule(at(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        on_both(|mut q| {
            q.schedule(at(3), 0);
            assert_eq!(q.peek_time(), Some(at(3)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn clear_empties() {
        on_both(|mut q| {
            q.schedule(at(1), 0);
            q.schedule(at(2), 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        });
    }

    /// The depth-accounting invariant: at every instant,
    /// `pushes - pops == len()`, and `peak_depth` dominates every
    /// observed length. Exercised over an interleaved push/pop/clear
    /// sequence so no drift can hide in a particular ordering.
    #[test]
    fn depth_accounting_never_drifts() {
        on_both(|mut q| {
            q.enable_depth_tracking();
            let check = |q: &EventQueue<u64>| {
                let d = q.depth_stats().unwrap();
                assert_eq!(
                    d.pushes - d.pops,
                    q.len() as u64,
                    "depth accounting drifted from push/pop delta"
                );
                assert!(d.peak_depth >= q.len() as u64);
            };
            // Interleave: grow to i, shrink by i/2, repeatedly.
            let mut t = 0;
            for round in 1..=8u64 {
                for i in 0..round * 3 {
                    t += 1 + i;
                    q.schedule(at(t), i);
                    check(&q);
                }
                for _ in 0..round {
                    q.pop();
                    check(&q);
                }
            }
            let d = q.depth_stats().unwrap();
            assert!(d.depth_ticks >= d.pops, "each pop ticks at least depth 1");
            // Drain and re-check; then clear must also keep the invariant.
            q.schedule(at(t + 1), 0);
            q.schedule(at(t + 2), 1);
            q.clear();
            check(&q);
            while q.pop().is_some() {
                check(&q);
            }
            let d = q.depth_stats().unwrap();
            assert_eq!(d.pushes, d.pops, "drained queue must balance");
        });
    }

    #[test]
    fn depth_tracking_off_by_default() {
        on_both(|mut q| {
            q.schedule(at(1), 0);
            q.pop();
            assert_eq!(q.depth_stats(), None);
        });
    }

    #[test]
    fn depth_stats_match_a_known_sequence() {
        on_both(|mut q| {
            q.enable_depth_tracking();
            q.schedule(at(1), 0);
            q.schedule(at(2), 1);
            q.schedule(at(3), 2);
            q.pop(); // depth 3 at pop
            q.pop(); // depth 2 at pop
            q.schedule(at(9), 3);
            q.pop(); // depth 2 at pop
            q.pop(); // depth 1 at pop
            let d = q.depth_stats().unwrap();
            assert_eq!(
                d,
                QueueDepthStats {
                    pushes: 4,
                    pops: 4,
                    peak_depth: 3,
                    depth_ticks: 3 + 2 + 2 + 1,
                }
            );
            // Popping empty must not tick.
            assert_eq!(q.pop(), None);
            assert_eq!(q.depth_stats().unwrap(), d);
        });
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        on_both(|mut q| {
            q.schedule(at(10), 0);
            q.pop();
            q.schedule(at(10), 1); // same instant as `now` — legal
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (at(10), 1));
        });
    }

    /// Far-future events must take the calendar's overflow path (the
    /// window spans ~134 ms) and still come back in exact order — this
    /// covers the overflow→ring promotion and the empty-ring window
    /// jump.
    #[test]
    fn calendar_far_future_overflow_round_trips() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        // A 30 s write-back sweep and a 2 min fault window, scheduled
        // before any near-term traffic.
        q.schedule(at(30_000_000), 100);
        q.schedule(at(120_000_000), 101);
        for i in 0..10 {
            q.schedule(at(10 + i), i);
        }
        let mut order = Vec::new();
        while let Some((_, e)) = q.pop() {
            order.push(e);
        }
        assert_eq!(order, (0..10).chain([100, 101]).collect::<Vec<_>>());
        // After the jump the clock sits at the far event; scheduling
        // near it must still work.
        assert_eq!(q.now(), at(120_000_000));
        q.schedule(at(120_000_001), 7);
        assert_eq!(q.pop(), Some((at(120_000_001), 7)));
    }

    /// Ties scheduled across the overflow boundary: events at the very
    /// same instant, some landing in the ring and some (scheduled
    /// while the window lay elsewhere) in overflow, must still pop in
    /// schedule order.
    #[test]
    fn calendar_ties_across_overflow_are_fifo() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let far = 500_000; // µs — beyond the initial window
        for i in 0..5 {
            q.schedule(at(far), i); // overflow (window starts at 0)
        }
        q.schedule(at(1), 99);
        q.pop(); // advance; window still far behind `far`
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    /// A minimal xorshift so the equivalence test needs no outside
    /// crates (simkit depends only on lapobs).
    struct TestRng(u64);
    impl TestRng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// The calendar backend is bit-equivalent to the heap reference:
    /// identical pop sequences (times and payloads), lengths, peeked
    /// times, and `QueueDepthStats` over randomized interleavings of
    /// push/pop/clear with ties and far-future (overflow) times.
    #[test]
    fn backends_agree_on_random_sequences() {
        for seed in 1..=8u64 {
            let mut rng = TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
            heap.enable_depth_tracking();
            cal.enable_depth_tracking();
            let mut payload = 0u64;
            for _ in 0..4000 {
                match rng.next() % 100 {
                    // Mostly pushes, with a mix of horizons:
                    0..=54 => {
                        let now = heap.now();
                        let offset = match rng.next() % 10 {
                            0 => 0, // tie with `now`
                            // near-term: within a bucket or two
                            1..=5 => rng.next() % 600,
                            // mid-term: within the window
                            6..=8 => rng.next() % 100_000,
                            // far-future: forces the overflow path
                            _ => 1_000_000 + rng.next() % 60_000_000,
                        };
                        let t = now + SimDuration::from_micros(offset);
                        heap.schedule(t, payload);
                        cal.schedule(t, payload);
                        payload += 1;
                    }
                    55..=94 => {
                        assert_eq!(heap.pop(), cal.pop());
                        assert_eq!(heap.now(), cal.now());
                    }
                    95 => {
                        heap.clear();
                        cal.clear();
                    }
                    _ => {
                        assert_eq!(heap.peek_time(), cal.peek_time());
                    }
                }
                assert_eq!(heap.len(), cal.len());
                assert_eq!(heap.depth_stats(), cal.depth_stats());
            }
            // Drain: the tails must agree too.
            loop {
                let (h, c) = (heap.pop(), cal.pop());
                assert_eq!(h, c);
                if h.is_none() {
                    break;
                }
            }
            assert_eq!(heap.depth_stats(), cal.depth_stats());
        }
    }
}
