//! Dispatch-time service models and pluggable request schedulers.
//!
//! The original [`Station`](crate::Station) API takes a
//! caller-precomputed [`SimDuration`] at arrival time, which is exact
//! for cost models of the form `constant + size/bandwidth` but cannot
//! express geometry: on a real disk the cost of a request depends on
//! where the head is *when the request starts*, i.e. on every job
//! served in between. This module adds the two traits that move the
//! cost decision to dispatch time:
//!
//! * [`ServiceModel`] — computes a [`ServiceCost`] for a [`JobSpec`]
//!   the moment the job starts service, advancing its own internal
//!   state (head position). The concrete disk and network models live
//!   in the `devmodel` crate; `simkit` only defines the contract so the
//!   station can consume it without a dependency cycle.
//! * [`Scheduler`] — picks which waiting job of the *highest-priority
//!   class* is served next. The class is always chosen first by the
//!   station (demand before write-back before prefetch, the paper's §4
//!   rule), so a scheduler can only reorder within a class.
//!
//! [`FifoSched`] is the built-in arrival-order discipline and the
//! default of every station; its `is_fifo()` fast path keeps the
//! classic FIFO dispatch allocation-free.

use crate::time::{SimDuration, SimTime};

/// What a station job asks of the device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceOp {
    /// Read `bytes` from position `pos`.
    Read,
    /// Write `bytes` to position `pos`.
    Write,
    /// Move `bytes` across a link (no position).
    Message,
}

/// Device-level description of a job, consumed by a [`ServiceModel`]
/// at dispatch time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobSpec {
    /// Operation kind.
    pub op: DeviceOp,
    /// Linear device position (e.g. the first LBA of the target
    /// block); `None` for position-independent jobs.
    pub pos: Option<u64>,
    /// Bytes moved by the job.
    pub bytes: u64,
    /// Device blocks covered by the job, laid out contiguously from
    /// `pos`. `1` for ordinary single-block jobs (and for messages);
    /// a multi-block job pays one positioning cost and then a
    /// contiguous transfer of `bytes`.
    pub blocks: u32,
    /// Demand read this job serves ([`lapobs::NO_RID`] when none —
    /// write-backs, background prefetch), threaded into the station's
    /// queue/service events so a trace can attribute device time to
    /// the request that paid for it.
    pub rid: u32,
}

/// Mechanical breakdown of a geometry-aware service, carried inside
/// [`ServiceCost`] for observability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MechDetail {
    /// Cylinders the arm travelled.
    pub seek_cylinders: u32,
    /// Rotational wait after the seek.
    pub rot_wait: SimDuration,
}

/// What serving one job costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceCost {
    /// Total service time (the station occupies the server this long).
    pub total: SimDuration,
    /// Portion of `total` spent on failed attempts and backoff injected
    /// by a fault model at dispatch time. Always zero when no fault
    /// model wraps the pricing, so fault-free runs are unchanged.
    pub retry: SimDuration,
    /// Mechanical breakdown, if the model computes one. Flat-cost
    /// models return `None`, which also suppresses the per-operation
    /// `DiskService` trace event.
    pub mech: Option<MechDetail>,
}

impl ServiceCost {
    /// A flat cost with no mechanical breakdown.
    pub fn flat(total: SimDuration) -> Self {
        ServiceCost {
            total,
            retry: SimDuration::ZERO,
            mech: None,
        }
    }
}

/// Computes service times at dispatch time, advancing internal device
/// state (e.g. head position) as jobs are served.
pub trait ServiceModel {
    /// Current device position in the same linear space as
    /// [`JobSpec::pos`], for seek-aware schedulers.
    fn position(&self) -> u64 {
        0
    }

    /// Cost of serving `job` starting at `now`. Must be deterministic
    /// in `(self, now, job)` and update the model's state.
    fn service(&mut self, now: SimTime, job: &JobSpec) -> ServiceCost;
}

/// Chooses which waiting job of the highest-priority class a station
/// serves next.
pub trait Scheduler: Send {
    /// Short name for reports (`"fifo"`, `"sstf"`, ...).
    fn name(&self) -> &'static str;

    /// Given the device's current `head` position and the queued jobs'
    /// positions in arrival order (`None` = position-independent),
    /// return the index of the job to serve next. `queue` is never
    /// empty and the result must be a valid index.
    fn pick(&mut self, head: u64, queue: &[Option<u64>]) -> usize;

    /// True if this scheduler always picks index 0. Lets the station
    /// skip building the position slice on the hot path.
    fn is_fifo(&self) -> bool {
        false
    }
}

/// Arrival-order service — the default discipline of every station and
/// the baseline the reordering schedulers must degrade to.
#[derive(Clone, Copy, Default, Debug)]
pub struct FifoSched;

impl Scheduler for FifoSched {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, _head: u64, _queue: &[Option<u64>]) -> usize {
        0
    }

    fn is_fifo(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_always_picks_the_oldest() {
        let mut s = FifoSched;
        assert!(s.is_fifo());
        assert_eq!(s.pick(100, &[Some(900), Some(100), None]), 0);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn flat_cost_has_no_breakdown() {
        let c = ServiceCost::flat(SimDuration::from_micros(10));
        assert_eq!(c.total.as_micros(), 10);
        assert_eq!(c.retry, SimDuration::ZERO);
        assert!(c.mech.is_none());
    }
}
